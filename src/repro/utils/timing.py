"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager


class Timer:
    """Accumulating wall-clock timer.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer.measure("phase1"):
    ...     pass
    >>> "phase1" in timer.laps
    True
    """

    def __init__(self) -> None:
        self.laps: dict[str, float] = {}

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the elapsed seconds of the block to ``laps``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + time.perf_counter() - start

    @property
    def total(self) -> float:
        """Sum of all recorded laps, in seconds."""
        return sum(self.laps.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        laps = ", ".join(f"{k}={v:.3f}s" for k, v in self.laps.items())
        return f"Timer({laps})"


def time_call(func, *args, **kwargs) -> tuple[float, object]:
    """Run ``func(*args, **kwargs)`` and return ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - start, result
