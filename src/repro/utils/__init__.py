"""Shared low-level utilities: RNG handling, timing, validation, sparse helpers."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_embedding_dim,
    check_probability,
    check_positive,
)

__all__ = [
    "ensure_rng",
    "Timer",
    "check_embedding_dim",
    "check_probability",
    "check_positive",
]
