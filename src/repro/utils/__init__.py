"""Shared low-level utilities: RNG handling, timing, validation, sparse helpers."""

from repro.utils.fs import atomic_write, chmod_default_dir, chmod_default_file
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_embedding_dim,
    check_probability,
    check_positive,
)

__all__ = [
    "atomic_write",
    "chmod_default_dir",
    "chmod_default_file",
    "ensure_rng",
    "Timer",
    "check_embedding_dim",
    "check_probability",
    "check_positive",
]
