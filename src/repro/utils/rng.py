"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an ``int`` or a ``numpy.random.Generator``.  ``ensure_rng``
canonicalizes all three into a ``Generator`` so internal code never touches
the legacy global numpy RNG state.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed seed,
        or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are statistically independent streams, suitable for handing to
    worker threads so parallel runs stay reproducible for a fixed seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return root.spawn(count)
