"""Sparse-matrix helpers used by the graph substrate and the core solver."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Return a copy of ``matrix`` with every non-empty row scaled to sum 1.

    Rows whose sum is zero are left as all-zero rows (the library-wide
    dangling policy; see DESIGN.md §2).
    """
    matrix = matrix.tocsr().astype(np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(row_sums)
    nonzero = row_sums != 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    return sp.diags(inv) @ matrix


def column_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Return a copy of ``matrix`` with every non-empty column scaled to sum 1."""
    matrix = matrix.tocsr().astype(np.float64)
    col_sums = np.asarray(matrix.sum(axis=0)).ravel()
    inv = np.zeros_like(col_sums)
    nonzero = col_sums != 0
    inv[nonzero] = 1.0 / col_sums[nonzero]
    return matrix @ sp.diags(inv)


def dense_row_normalize(matrix: np.ndarray) -> np.ndarray:
    """Row-normalize a dense matrix, leaving all-zero rows untouched."""
    sums = matrix.sum(axis=1, keepdims=True)
    safe = np.where(sums == 0, 1.0, sums)
    return matrix / safe


def dense_column_normalize(matrix: np.ndarray) -> np.ndarray:
    """Column-normalize a dense matrix, leaving all-zero columns untouched."""
    sums = matrix.sum(axis=0, keepdims=True)
    safe = np.where(sums == 0, 1.0, sums)
    return matrix / safe


def is_row_stochastic(matrix, atol: float = 1e-9) -> bool:
    """True if every row of ``matrix`` sums to 1 or 0 (dangling allowed)."""
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    return bool(np.all((np.abs(sums - 1.0) <= atol) | (np.abs(sums) <= atol)))


def sparse_equal(a: sp.spmatrix, b: sp.spmatrix, atol: float = 1e-12) -> bool:
    """Structural + numerical equality check for two sparse matrices."""
    if a.shape != b.shape:
        return False
    diff = (a - b).tocoo()
    if diff.nnz == 0:
        return True
    return bool(np.max(np.abs(diff.data)) <= atol)
