"""Filesystem helpers for atomic writes.

``tempfile.mkstemp``/``mkdtemp`` deliberately create private files
(mode 0600/0700).  Code that stages through a temp name and
``os.replace``s it into place wants the *destination* to carry the
ordinary creation mode instead — otherwise an atomically-written
embedding archive or store pointer silently becomes unreadable to every
other uid, a regression from plain ``open()`` semantics.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Callable, IO

# Read once at import: os.umask can only be *read* by setting it, and doing
# the set-and-restore dance per call would leave a window where concurrent
# threads (QueryService refresh + a parallel save) create world-writable
# files.  Processes that change their umask mid-run are on their own.
_UMASK = os.umask(0)
os.umask(_UMASK)


def chmod_default_file(fd: int) -> None:
    """Give an mkstemp fd the mode a plain ``open(..., 'w')`` would get."""
    if hasattr(os, "fchmod"):
        # Absent on Windows, where mkstemp files carry no POSIX 0600
        # restriction to undo in the first place.
        os.fchmod(fd, 0o666 & ~_UMASK)


def chmod_default_dir(path: str | os.PathLike) -> None:
    """Give an mkdtemp directory the mode a plain ``os.mkdir`` would get."""
    os.chmod(path, 0o777 & ~_UMASK)


def atomic_write(
    path: str | os.PathLike,
    writer: Callable[[IO], None],
    *,
    text: bool = False,
) -> None:
    """Write ``path`` via a same-directory temp file + ``os.replace``.

    ``writer`` receives the open temp file object.  Readers see either the
    old content or the complete new content — never a torn write, even if
    the process dies mid-``writer`` — and the destination ends up with the
    mode a plain ``open()`` would have given it.  The temp file is removed
    on any failure.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        chmod_default_file(fd)
        with os.fdopen(fd, "w" if text else "wb") as handle:
            writer(handle)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
