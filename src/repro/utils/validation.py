"""Input validation helpers shared across the library.

All raise ``ValueError`` with actionable messages; they exist so public
entry points fail fast on bad parameters instead of deep inside numpy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def check_probability(value: float, name: str, *, inclusive: bool = False) -> float:
    """Validate that ``value`` lies in (0, 1), or [0, 1] if ``inclusive``."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    elif not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_embedding_dim(k: int, n: int, d: int) -> int:
    """Validate the space budget ``k`` against graph dimensions.

    The paper stores two node vectors of length ``k/2`` plus one attribute
    vector of length ``k/2``, so ``k`` must be a positive even integer and
    ``k/2`` may not exceed the rank budget ``min(n, d)``.
    """
    k = int(k)
    if k <= 0 or k % 2 != 0:
        raise ValueError(f"space budget k must be a positive even integer, got {k}")
    if k // 2 > min(n, d):
        raise ValueError(
            f"k/2={k // 2} exceeds min(n, d)={min(n, d)}; "
            "reduce k or use a larger graph"
        )
    return k


def check_csr(matrix, name: str) -> sp.csr_matrix:
    """Coerce ``matrix`` to CSR with float64 data, validating shape."""
    if not sp.issparse(matrix):
        matrix = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
    matrix = matrix.tocsr()
    if matrix.dtype != np.float64:
        matrix = matrix.astype(np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional")
    if matrix.nnz and not np.all(np.isfinite(matrix.data)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return matrix
