"""Cosine k-nearest-neighbor search over embedding matrices.

The classic downstream use of node embeddings: "find nodes like this one".
This module is the *exact* search engine: brute-force dense scoring with
``np.argpartition`` selection, tiled over queries so a batch never
materializes more than ``tile × n`` scores at once.  The serving layer
(:mod:`repro.serving.index`) wraps it as the ``ExactBackend`` and adds an
IVF approximate backend behind the same interface.

All entry points accept ``assume_normalized=True`` for inputs whose rows
are already unit-length (e.g. matrices published by
:class:`repro.serving.store.EmbeddingStore`), which skips the per-call
re-normalization of the full matrix.

Returned similarities are **canonical**: candidates are *selected* with a
BLAS GEMM (fast, but its partial edge tiles make element values depend on
the matrix's row count), then the selected ``k`` rows are *rescored* with
:func:`rowwise_inner`, whose reduction depends only on the row bytes.  Two
engines scoring the same (row, query) pair therefore return the same
float64 bits regardless of how many other rows sit in their matrices —
the property the sharded scatter-gather router
(:mod:`repro.serving.sharding.router`) relies on to merge per-shard
results into a global top-k bit-identical to unsharded search.  Ties are
broken by ascending row id, which is partition-invariant too.
"""

from __future__ import annotations

import hashlib

import numpy as np

# ``pairwise_cosine`` materializes n² float64 similarities; refuse beyond
# this many elements (2**27 ≈ 134M entries ≈ 1 GiB) unless overridden.
MAX_PAIRWISE_ELEMENTS = 2**27

# Query rows per tile in batched exact search: bounds the transient
# ``tile × n`` score block (128 × 1M nodes ≈ 1 GiB) independent of batch size.
DEFAULT_TILE_SIZE = 128

# Elements gathered per canonical-rescore chunk (bounds the ``rows × dim``
# copy when k is a large fraction of n).
_RESCORE_CHUNK_ELEMENTS = 2**22

# float32 selection: shortlist size = max(oversample*k, k + slack).  The
# slack floor keeps tiny k from producing a shortlist so tight that a
# float32 rounding collision near the boundary could push a true top-k
# member out before the float64 rescore can rank it back in.
DEFAULT_SELECT_OVERSAMPLE = 4
SELECT_SLACK = 16


def select_shortlist_size(
    k: int, population: int, *, oversample: int = DEFAULT_SELECT_OVERSAMPLE
) -> int:
    """Float32-selection shortlist size: oversample, slack floor, clamp.

    The one definition of the safety-margin policy, shared by
    :func:`exact_top_k`'s float32 path and the IVF backend's float32
    candidate selector (:class:`repro.serving.index.IVFIndex`) — the two
    paths must never diverge in how much slack protects their
    bit-identity-via-rescore contract.
    """
    return min(population, max(int(oversample) * k, k + SELECT_SLACK))


def _normalize(features: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.where(norms == 0, 1.0, norms)


def normalize_rows(features: np.ndarray) -> np.ndarray:
    """Rows of ``features`` scaled to unit L2 norm (zero rows left zero)."""
    return _normalize(np.asarray(features, dtype=np.float64))


def rowwise_inner(rows: np.ndarray, others: np.ndarray) -> np.ndarray:
    """Per-row inner products whose bits depend only on each row's bytes.

    ``np.einsum('ij,ij->i')`` reduces every row independently with a fixed
    sequential kernel, so — unlike a BLAS GEMM, whose partial edge tiles
    compute the last ``n % tile`` rows with a different instruction mix —
    the result for a given (row, other) pair is identical no matter how
    the rows are batched or which sub-matrix they were sliced from.  Both
    operands are made contiguous so stride games can't change the kernel.
    """
    return np.einsum(
        "ij,ij->i", np.ascontiguousarray(rows), np.ascontiguousarray(others)
    )


def canonical_scores(
    features: np.ndarray, ids: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Canonical cosine scores of ``features[ids]`` against one ``query``.

    The single-query convenience over :func:`rowwise_inner` used by the
    IVF and PQ backends to rescore candidate sets: the returned floats are
    bit-identical to what :func:`exact_top_k` reports for the same rows.
    A fancy-index gather always yields a fresh contiguous array, so the
    einsum runs directly on it (this sits on per-query hot paths; the
    generic :func:`rowwise_inner` wrapper calls are measurable there).
    """
    rows = features[ids]
    repeated = np.empty_like(rows)
    repeated[:] = query
    return np.einsum("ij,ij->i", rows, repeated)


def top_k_sorted_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D score vector, descending.

    ``argpartition`` + a sort of only the selected ``k`` — O(n + k log k)
    instead of the O(n log n) full sort.  Fully deterministic: equal
    scores order by ascending index, *including* ties that straddle the
    selection boundary (``argpartition`` picks those arbitrarily, so they
    are repaired against the boundary value) — the property that keeps
    results identical no matter how the corpus is sliced into shards.
    """
    k = min(k, scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    top = np.argpartition(-scores, k - 1)[:k]
    boundary = scores[top].min()
    if np.count_nonzero(scores == boundary) > np.count_nonzero(
        scores[top] == boundary
    ):
        definite = np.nonzero(scores > boundary)[0]
        tied = np.nonzero(scores == boundary)[0][: k - definite.size]
        top = np.concatenate([definite, tied])
    top = np.sort(top)  # ascending index, so the stable sort breaks ties by it
    return top[np.argsort(-scores[top], kind="stable")]


# Filtered exact search switches from "score everything, mask the rest"
# to "gather the allowed rows and search the subset" once the filter keeps
# at most this fraction of the population: below it the gather+GEMM over
# the subset is cheaper than a full-matrix GEMM whose columns are mostly
# discarded.
_GATHER_SELECTIVITY = 0.125


class FilterError(ValueError):
    """A :class:`NodeFilter` that cannot be parsed or compiled.

    Subclasses ``ValueError`` so in-process callers keep catching what
    they always did, while the HTTP layer can map exactly the filter
    failures (and nothing else) onto the wire's ``invalid_filter`` code.
    """


def _validate_id_array(ids, name: str) -> np.ndarray | None:
    """Sorted unique non-negative intp ids (``None`` stays ``None``)."""
    if ids is None:
        return None
    arr = np.asarray(ids)
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.integer):
        if arr.size and not all(
            isinstance(v, (int, np.integer)) and not isinstance(v, bool)
            for v in np.ravel(ids)
        ):
            raise ValueError(f"filter {name!r} ids must be integers")
        arr = arr.astype(np.int64) if arr.size else np.empty(0, dtype=np.int64)
    arr = np.unique(arr.astype(np.intp, copy=False).ravel())
    if arr.size and arr[0] < 0:
        raise ValueError(f"filter {name!r} ids must be non-negative")
    return arr


class NodeFilter:
    """A search predicate: which rows of the corpus a query may return.

    The one filter object every layer speaks — the HTTP wire parses JSON
    into it, :class:`~repro.serving.service.QueryService` compiles it
    against the active version, and every backend honors the compiled
    form natively.  Three predicate families compose by intersection:

    - **id sets** — ``allow`` (only these ids) and ``deny`` (never these
      ids); ``deny`` wins where both name an id.
    - **attribute predicates** — ``attributes`` is a tuple of
      ``(attribute_id, min_weight)`` pairs: keep nodes whose estimated
      association with *every* listed attribute is at least the
      threshold.  Resolving the estimate needs the embedding arrays, so
      compiling requires an ``attribute_scores`` resolver.
    - **partition selector** — ``partitions`` restricts to the named
      shards/tenants of a partitioned deployment; compiling requires a
      ``partition_of`` map.

    Instances are immutable; :meth:`key` is a stable content fingerprint
    suitable for cache/coalescing keys.
    """

    __slots__ = ("allow", "deny", "attributes", "partitions", "_key")

    def __init__(
        self,
        *,
        allow=None,
        deny=None,
        attributes=(),
        partitions=None,
    ) -> None:
        self.allow = _validate_id_array(allow, "allow")
        self.deny = _validate_id_array(deny, "deny")
        pairs = []
        for entry in attributes:
            attribute, min_weight = entry
            if isinstance(attribute, bool) or not isinstance(
                attribute, (int, np.integer)
            ):
                raise ValueError("filter attribute ids must be integers")
            if int(attribute) < 0:
                raise ValueError("filter attribute ids must be non-negative")
            min_weight = float(min_weight)
            if not np.isfinite(min_weight):
                raise ValueError("filter attribute min_weight must be finite")
            pairs.append((int(attribute), min_weight))
        self.attributes = tuple(sorted(set(pairs)))
        parts = _validate_id_array(partitions, "partitions")
        self.partitions = None if parts is None else tuple(int(p) for p in parts)
        if self.allow is not None:
            self.allow.setflags(write=False)
        if self.deny is not None:
            self.deny.setflags(write=False)
        self._key: str | None = None

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True when the filter constrains nothing (treat as no filter)."""
        return (
            self.allow is None
            and (self.deny is None or self.deny.size == 0)
            and not self.attributes
            and self.partitions is None
        )

    def key(self) -> str:
        """Stable content fingerprint (hex) for cache/coalescing keys."""
        if self._key is None:
            digest = hashlib.blake2b(digest_size=16)
            for name, ids in (("allow", self.allow), ("deny", self.deny)):
                if ids is not None:
                    digest.update(name.encode())
                    digest.update(np.asarray(ids, dtype=np.int64).tobytes())
            for attribute, min_weight in self.attributes:
                digest.update(b"attr")
                digest.update(
                    np.array([attribute], dtype=np.int64).tobytes()
                    + np.array([min_weight], dtype=np.float64).tobytes()
                )
            if self.partitions is not None:
                digest.update(b"part")
                digest.update(np.asarray(self.partitions, dtype=np.int64).tobytes())
            self._key = digest.hexdigest()
        return self._key

    def __eq__(self, other) -> bool:
        return isinstance(other, NodeFilter) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = []
        if self.allow is not None:
            parts.append(f"allow[{self.allow.size}]")
        if self.deny is not None:
            parts.append(f"deny[{self.deny.size}]")
        if self.attributes:
            parts.append(f"attributes[{len(self.attributes)}]")
        if self.partitions is not None:
            parts.append(f"partitions{list(self.partitions)}")
        return f"NodeFilter({', '.join(parts) or 'noop'})"

    # -- wire form ------------------------------------------------------
    def to_json(self) -> dict:
        """The wire object (omits absent predicate families)."""
        obj: dict = {}
        if self.allow is not None:
            obj["allow"] = [int(v) for v in self.allow]
        if self.deny is not None:
            obj["deny"] = [int(v) for v in self.deny]
        if self.attributes:
            obj["attributes"] = [
                {"attribute": attribute, "min_weight": min_weight}
                for attribute, min_weight in self.attributes
            ]
        if self.partitions is not None:
            obj["partitions"] = list(self.partitions)
        return obj

    @classmethod
    def from_json(cls, obj) -> "NodeFilter":
        """Parse the wire object; raises :class:`FilterError` on any bad shape."""
        if not isinstance(obj, dict):
            raise FilterError("filter must be a JSON object")
        unknown = set(obj) - {"allow", "deny", "attributes", "partitions"}
        if unknown:
            raise FilterError(f"unknown filter fields: {sorted(unknown)}")
        attributes = []
        raw = obj.get("attributes")
        if raw is not None:
            if not isinstance(raw, list):
                raise FilterError("filter 'attributes' must be a list")
            for entry in raw:
                if not isinstance(entry, dict):
                    raise FilterError("filter attribute entries must be objects")
                extra = set(entry) - {"attribute", "min_weight"}
                if extra:
                    raise FilterError(
                        f"unknown filter attribute fields: {sorted(extra)}"
                    )
                if "attribute" not in entry:
                    raise FilterError("filter attribute entries need 'attribute'")
                attributes.append(
                    (entry["attribute"], entry.get("min_weight", 0.0))
                )
        try:
            return cls(
                allow=obj.get("allow"),
                deny=obj.get("deny"),
                attributes=attributes,
                partitions=obj.get("partitions"),
            )
        except FilterError:
            raise
        except (ValueError, TypeError) as error:
            raise FilterError(str(error)) from error

    # -- compilation ----------------------------------------------------
    def compile(
        self,
        n: int,
        *,
        attribute_scores=None,
        partition_of: np.ndarray | None = None,
    ) -> "CompiledFilter":
        """Resolve the predicate against a population of ``n`` rows.

        ``attribute_scores`` is a callable ``attribute_id -> (n,) float
        scores`` (required when the filter has attribute predicates);
        ``partition_of`` maps row id to partition id (required when the
        filter selects partitions).  Ids outside ``[0, n)`` are simply
        absent from the population: out-of-range ``allow`` entries match
        nothing, out-of-range ``deny`` entries exclude nothing.
        """
        mask = np.ones(n, dtype=bool)
        if self.allow is not None:
            allowed = np.zeros(n, dtype=bool)
            in_range = self.allow[self.allow < n]
            allowed[in_range] = True
            mask &= allowed
        if self.deny is not None and self.deny.size:
            mask[self.deny[self.deny < n]] = False
        for attribute, min_weight in self.attributes:
            if attribute_scores is None:
                raise FilterError(
                    "filter has attribute predicates but this deployment "
                    "has no attribute scorer"
                )
            try:
                scores = np.asarray(attribute_scores(attribute), dtype=np.float64)
            except FilterError:
                raise
            except ValueError as error:
                raise FilterError(str(error)) from error
            if scores.shape != (n,):
                raise ValueError(
                    f"attribute scorer returned shape {scores.shape}, "
                    f"expected ({n},)"
                )
            mask &= scores >= min_weight
        if self.partitions is not None:
            if partition_of is None:
                raise FilterError(
                    "filter selects partitions but this deployment is not "
                    "partitioned"
                )
            partition_of = np.asarray(partition_of)
            if partition_of.shape != (n,):
                raise ValueError(
                    f"partition map has shape {partition_of.shape}, "
                    f"expected ({n},)"
                )
            mask &= np.isin(partition_of, np.asarray(self.partitions))
        return CompiledFilter(mask, key=self.key())


class CompiledFilter:
    """A :class:`NodeFilter` resolved to a boolean row mask.

    The engine-facing form: one bit per corpus row, with the sorted
    allowed-id array derived lazily for backends that prefer id-set form
    (subset gathers, per-list candidate filtering).  ``key`` carries the
    source filter's fingerprint so services can key caches on it.
    """

    __slots__ = ("mask", "key", "n_allowed", "_allowed")

    def __init__(self, mask: np.ndarray, *, key: str = "") -> None:
        self.mask = np.asarray(mask, dtype=bool)
        if self.mask.ndim != 1:
            raise ValueError("filter mask must be one-dimensional")
        self.mask.setflags(write=False)
        self.key = key
        self.n_allowed = int(np.count_nonzero(self.mask))
        self._allowed: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.mask.shape[0]

    @property
    def selectivity(self) -> float:
        """Fraction of the population the filter keeps (0 = everything denied)."""
        return self.n_allowed / self.n if self.n else 0.0

    def allowed_ids(self) -> np.ndarray:
        """Sorted ids the filter keeps (computed once, then cached)."""
        if self._allowed is None:
            self._allowed = np.nonzero(self.mask)[0]
            self._allowed.setflags(write=False)
        return self._allowed

    def allows(self, ids: np.ndarray) -> np.ndarray:
        """Boolean verdict per id (ids must be in ``[0, n)``)."""
        return self.mask[ids]

    def restrict(self, member_ids: np.ndarray) -> "CompiledFilter":
        """The filter sliced to a sub-population (e.g. one shard's rows).

        ``member_ids[i]`` is the global id of local row ``i``; the result
        masks local rows, which is what a per-shard backend searches.
        """
        return CompiledFilter(self.mask[member_ids], key=self.key)


def exact_top_k(
    features: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    assume_normalized: bool = False,
    exclude: np.ndarray | None = None,
    tile_size: int = DEFAULT_TILE_SIZE,
    select_dtype: str = "float64",
    select_features: np.ndarray | None = None,
    oversample: int = DEFAULT_SELECT_OVERSAMPLE,
    node_filter: CompiledFilter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact cosine top-k of query *vectors* against every row of ``features``.

    The engine under both :func:`top_k_similar`/:func:`batch_top_k` and the
    serving layer's ``ExactBackend``.

    Parameters
    ----------
    features:
        ``n × dim`` matrix (rows may be memory-mapped).
    queries:
        ``q × dim`` query vectors (or a single ``dim`` vector).
    k:
        Neighbors per query (clamped to the population size).
    assume_normalized:
        Skip row re-normalization of both sides (inputs already unit rows).
    exclude:
        Optional length-``q`` array of row ids masked to ``-inf`` per query
        (``-1`` = no exclusion) — how self-matches are dropped.
    tile_size:
        Query rows scored per GEMM tile.
    select_dtype:
        ``"float64"`` (default, the reference path) or ``"float32"`` —
        run the *selection* GEMM in float32 over an oversampled
        shortlist, then rescore the shortlist with the canonical float64
        einsum.  The selection scan is memory-bound, so float32 moves
        half the bytes; returned scores stay canonical float64 and are
        bit-identical to the float64 engine whenever the shortlist
        covers the true top-k (the same shortlist-covers-the-answer
        rationale as the PQ ``min_rescore`` floor; asserted on the bench
        corpus by ``benchmarks/bench_serving.py`` every run).
    select_features:
        Optional precomputed float32 copy of the (normalized) matrix for
        the float32 path — callers with a long-lived matrix (the serving
        ``ExactBackend``) cast once instead of per call.  Ignored for
        float64.
    oversample:
        Shortlist factor for the float32 path: ``max(oversample × k,
        k + 16)`` candidates are selected, clamped to ``n``.
    node_filter:
        Optional :class:`CompiledFilter` restricting which rows may be
        returned.  Selective filters (≤ ~12% of rows kept) search a
        gathered subset of the matrix; broad filters mask disallowed
        columns to ``-inf`` before selection.  Both strategies rescore
        with the same canonical reduction, so they agree bit-for-bit on
        the rows they return, and ``node_filter=None`` leaves the
        unfiltered path byte-identical to an engine without this
        parameter.  Rows the filter exhausts pad with ``-1`` / ``-inf``.

    Returns
    -------
    ``(ids, scores)`` of shape ``(q, k)``, similarity-descending with ties
    broken by ascending id.  A single 1-D query returns 1-D arrays.  A row
    whose exclusion leaves fewer than ``k`` candidates pads the tail with
    id ``-1`` / similarity ``-inf`` (the same convention as the serving
    backends).  Scores are canonical (:func:`rowwise_inner` over the
    selected rows), so they are bit-identical across engines scoring the
    same rows — see the module docstring.
    """
    if select_dtype not in ("float64", "float32"):
        raise ValueError(
            f"select_dtype must be 'float64' or 'float32', got {select_dtype!r}"
        )
    single = np.ndim(queries) == 1
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if not assume_normalized:
        features = normalize_rows(features)
        queries = _normalize(queries)
    n = features.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_queries = queries.shape[0]
    if n == 0:
        # An empty population (e.g. an empty shard of a sharded store)
        # has nothing to rank: zero-width results, not an error.
        empty = (np.empty((n_queries, 0), dtype=np.intp), np.empty((n_queries, 0)))
        return (empty[0][0], empty[1][0]) if single else empty
    # Clamp to the population, not n - 1: an exclude entry of -1 means "no
    # exclusion" for that row, so it may legitimately fill all n slots.
    # Rows that do exclude an id pad their last slot instead (below).
    k = min(k, n)
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise ValueError("exclude must have one entry per query")

    disallowed = None
    if node_filter is not None:
        if node_filter.n != n:
            raise ValueError(
                f"filter covers {node_filter.n} rows, matrix has {n}"
            )
        if node_filter.n_allowed == 0:
            ids = np.full((n_queries, k), -1, dtype=np.intp)
            scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
            return (ids[0], scores[0]) if single else (ids, scores)
        if node_filter.n_allowed == n:
            node_filter = None  # nothing masked: take the unfiltered path
        elif node_filter.selectivity <= _GATHER_SELECTIVITY:
            return _exact_top_k_gather(
                features,
                queries,
                k,
                exclude=exclude,
                tile_size=tile_size,
                select_dtype=select_dtype,
                select_features=select_features,
                oversample=oversample,
                allowed=node_filter.allowed_ids(),
                single=single,
            )
        else:
            disallowed = np.nonzero(~node_filter.mask)[0]

    if select_dtype == "float32":
        if select_features is None:
            select_features = np.asarray(features, dtype=np.float32)
        elif select_features.shape != features.shape:
            raise ValueError(
                f"select_features shape {select_features.shape} != "
                f"features shape {features.shape}"
            )
        # Selection runs on the float32 pair; the shortlist m replaces k
        # in the selection so float32 rounding near the k-th rank cannot
        # evict a true top-k row before the float64 rescore ranks it.
        select_mat = select_features
        select_queries = queries.astype(np.float32)
        m = select_shortlist_size(k, n, oversample=oversample)
    else:
        select_mat = features
        select_queries = queries
        m = k

    ids = np.empty((n_queries, k), dtype=np.intp)
    scores = np.empty((n_queries, k), dtype=np.float64)
    for start in range(0, n_queries, max(1, tile_size)):
        stop = min(start + max(1, tile_size), n_queries)
        block = select_queries[start:stop] @ select_mat.T
        if disallowed is not None:
            block[:, disallowed] = -np.inf
        if exclude is not None:
            rows = np.arange(start, stop)
            masked = exclude[rows] >= 0
            block[np.nonzero(masked)[0], exclude[rows][masked]] = -np.inf
        # Whole-tile selection: one argpartition + one m-wide argsort across
        # the tile instead of a Python loop of per-row selections — the hot
        # path the serving throughput numbers are measured on.  Negate in
        # place so ascending partition order means descending similarity.
        np.negative(block, out=block)
        top = np.argpartition(block, m - 1, axis=1)[:, :m]
        part = np.take_along_axis(block, top, axis=1)
        # Boundary-tie repair: argpartition picks arbitrarily among rows
        # tied at the m-th score, and that choice differs between a full
        # matrix and a shard slice (duplicate rows are the realistic
        # case — e.g. zero-feature isolated nodes).  Detect rows whose
        # ties extend past the selection and redo them deterministically:
        # everything strictly better, then the smallest ids among ties.
        worst = part.max(axis=1, keepdims=True)
        overflow = np.nonzero(
            (block == worst).sum(axis=1) > (part == worst[:, :1]).sum(axis=1)
        )[0]
        for row in overflow:
            boundary = worst[row, 0]
            definite = np.nonzero(block[row] < boundary)[0]
            tied = np.nonzero(block[row] == boundary)[0][: m - definite.size]
            top[row] = np.concatenate([definite, tied])
            part[row] = block[row][top[row]]
        # Canonical rescore of the m selected rows: the GEMM above only
        # *selects*; the returned scores come from the partition-invariant
        # row-wise reduction.  Candidates are first ordered by ascending id
        # so the stable score sort breaks exact ties by id — both steps are
        # what makes sharded scatter-gather bit-identical to this engine.
        id_order = np.argsort(top, axis=1)
        sel = np.take_along_axis(top, id_order, axis=1)
        sel_part = np.take_along_axis(part, id_order, axis=1)
        canon = np.empty(sel.shape, dtype=np.float64)
        tile_rows = stop - start
        step = max(1, _RESCORE_CHUNK_ELEMENTS // max(1, m * features.shape[1]))
        for row0 in range(0, tile_rows, step):
            row1 = min(row0 + step, tile_rows)
            chunk_ids = sel[row0:row1].ravel()
            chunk_queries = np.repeat(queries[start + row0 : start + row1], m, axis=0)
            canon[row0:row1] = rowwise_inner(
                features[chunk_ids], chunk_queries
            ).reshape(row1 - row0, m)
        # Excluded candidates were forced in only when the row ran out of
        # real ones (k = n with an exclusion); keep them -inf, not rescored.
        canon[~np.isfinite(sel_part)] = -np.inf
        order = np.argsort(-canon, axis=1, kind="stable")[:, :k]
        ids[start:stop] = np.take_along_axis(sel, order, axis=1)
        scores[start:stop] = np.take_along_axis(canon, order, axis=1)
    if exclude is not None or disallowed is not None:
        # A masked id can only reach the result when a row had fewer than k
        # real candidates (k = n with an exclusion, or a filter keeping
        # fewer than k rows); rewrite it as padding.
        ids[scores == -np.inf] = -1
    if single:
        return ids[0], scores[0]
    return ids, scores


def _exact_top_k_gather(
    features: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    exclude: np.ndarray | None,
    tile_size: int,
    select_dtype: str,
    select_features: np.ndarray | None,
    oversample: int,
    allowed: np.ndarray,
    single: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Selective-filter strategy: search the gathered allowed-row subset.

    ``allowed`` ascending keeps subset-local ordering equal to global id
    ordering, and the canonical rescore makes subset scores bit-identical
    to full-matrix scores for the same rows — so mapping local results
    back through ``allowed`` agrees exactly with the mask strategy.
    ``queries``/``features`` arrive already normalized; ``k`` is already
    clamped to the full population (columns the subset cannot fill pad).
    """
    n_queries = queries.shape[0]
    sub = np.ascontiguousarray(features[allowed])
    sub_select = None
    if select_dtype == "float32" and select_features is not None:
        sub_select = np.ascontiguousarray(select_features[allowed])
    sub_exclude = None
    if exclude is not None:
        # Translate global exclusions to subset-local ids; an excluded id
        # the filter already removed needs no exclusion at all.
        position = np.searchsorted(allowed, np.clip(exclude, 0, None))
        position = np.clip(position, 0, allowed.size - 1)
        hit = (exclude >= 0) & (allowed[position] == exclude)
        sub_exclude = np.where(hit, position, -1)
    local_ids, local_scores = exact_top_k(
        sub,
        queries,
        min(k, allowed.size),
        assume_normalized=True,
        exclude=sub_exclude,
        tile_size=tile_size,
        select_dtype=select_dtype,
        select_features=sub_select,
        oversample=oversample,
    )
    local_ids = np.atleast_2d(local_ids)
    local_scores = np.atleast_2d(local_scores)
    ids = np.full((n_queries, k), -1, dtype=np.intp)
    scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
    width = local_ids.shape[1]
    ids[:, :width] = np.where(local_ids >= 0, allowed[np.clip(local_ids, 0, None)], -1)
    scores[:, :width] = local_scores
    if single:
        return ids[0], scores[0]
    return ids, scores


def pairwise_cosine(
    features: np.ndarray, *, max_elements: int | None = MAX_PAIRWISE_ELEMENTS
) -> np.ndarray:
    """Full ``n × n`` cosine similarity matrix (small graphs only).

    Refuses when ``n²`` would exceed ``max_elements`` (default 2**27
    entries ≈ 1 GiB of float64) — use :func:`top_k_similar` /
    :func:`batch_top_k`, which never materialize the full matrix, or pass
    ``max_elements=None`` to override the guard deliberately.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if max_elements is not None and n * n > max_elements:
        raise ValueError(
            f"pairwise_cosine would materialize {n}×{n} = {n * n} similarities "
            f"(> max_elements={max_elements}); use top_k_similar/batch_top_k "
            "or pass max_elements=None to override"
        )
    normalized = _normalize(features)
    return normalized @ normalized.T


def top_k_similar(
    features: np.ndarray,
    node: int,
    k: int = 10,
    *,
    assume_normalized: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nodes most cosine-similar to ``node`` (excluding itself).

    Returns ``(indices, similarities)`` sorted by descending similarity.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 0 <= node < n:
        raise IndexError(f"node {node} out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 1:
        # Only the query node itself exists — no neighbors to return.
        return np.empty(0, dtype=np.intp), np.empty(0)
    if not assume_normalized:
        features = _normalize(features)
    return exact_top_k(
        features,
        features[node],
        min(k, n - 1),
        assume_normalized=True,
        exclude=np.array([node]),
    )


def batch_top_k(
    features: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    *,
    assume_normalized: bool = False,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k similar nodes for several query nodes at once.

    Normalizes the matrix once and scores queries in GEMM tiles — the seed
    version re-normalized all of ``features`` for every query node.

    Returns ``(indices, similarities)`` of shape ``(len(queries), k)``.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    queries = np.asarray(queries, dtype=np.intp).ravel()
    if queries.size and (queries.min() < 0 or queries.max() >= n):
        raise IndexError(f"query node out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 1:
        return (
            np.empty((queries.shape[0], 0), dtype=np.intp),
            np.empty((queries.shape[0], 0)),
        )
    if not assume_normalized:
        features = _normalize(features)
    return exact_top_k(
        features,
        features[queries],
        min(k, n - 1),
        assume_normalized=True,
        exclude=queries,
        tile_size=tile_size,
    )
