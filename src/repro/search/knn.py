"""Cosine k-nearest-neighbor search over embedding matrices.

The classic downstream use of node embeddings: "find nodes like this one".
This module is the *exact* search engine: brute-force dense scoring with
``np.argpartition`` selection, tiled over queries so a batch never
materializes more than ``tile × n`` scores at once.  The serving layer
(:mod:`repro.serving.index`) wraps it as the ``ExactBackend`` and adds an
IVF approximate backend behind the same interface.

All entry points accept ``assume_normalized=True`` for inputs whose rows
are already unit-length (e.g. matrices published by
:class:`repro.serving.store.EmbeddingStore`), which skips the per-call
re-normalization of the full matrix.
"""

from __future__ import annotations

import numpy as np

# ``pairwise_cosine`` materializes n² float64 similarities; refuse beyond
# this many elements (2**27 ≈ 134M entries ≈ 1 GiB) unless overridden.
MAX_PAIRWISE_ELEMENTS = 2**27

# Query rows per tile in batched exact search: bounds the transient
# ``tile × n`` score block (128 × 1M nodes ≈ 1 GiB) independent of batch size.
DEFAULT_TILE_SIZE = 128


def _normalize(features: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.where(norms == 0, 1.0, norms)


def normalize_rows(features: np.ndarray) -> np.ndarray:
    """Rows of ``features`` scaled to unit L2 norm (zero rows left zero)."""
    return _normalize(np.asarray(features, dtype=np.float64))


def top_k_sorted_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D score vector, descending.

    ``argpartition`` + a sort of only the selected ``k`` — O(n + k log k)
    instead of the O(n log n) full sort.
    """
    k = min(k, scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    top = np.argpartition(-scores, k - 1)[:k]
    return top[np.argsort(-scores[top], kind="stable")]


def exact_top_k(
    features: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    assume_normalized: bool = False,
    exclude: np.ndarray | None = None,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact cosine top-k of query *vectors* against every row of ``features``.

    The engine under both :func:`top_k_similar`/:func:`batch_top_k` and the
    serving layer's ``ExactBackend``.

    Parameters
    ----------
    features:
        ``n × dim`` matrix (rows may be memory-mapped).
    queries:
        ``q × dim`` query vectors (or a single ``dim`` vector).
    k:
        Neighbors per query (clamped to the population size).
    assume_normalized:
        Skip row re-normalization of both sides (inputs already unit rows).
    exclude:
        Optional length-``q`` array of row ids masked to ``-inf`` per query
        (``-1`` = no exclusion) — how self-matches are dropped.
    tile_size:
        Query rows scored per GEMM tile.

    Returns
    -------
    ``(ids, scores)`` of shape ``(q, k)``, similarity-descending.  A single
    1-D query returns 1-D arrays.  A row whose exclusion leaves fewer than
    ``k`` candidates pads the tail with id ``-1`` / similarity ``-inf``
    (the same convention as the serving backends).
    """
    single = np.ndim(queries) == 1
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if not assume_normalized:
        features = normalize_rows(features)
        queries = _normalize(queries)
    n = features.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # Clamp to the population, not n - 1: an exclude entry of -1 means "no
    # exclusion" for that row, so it may legitimately fill all n slots.
    # Rows that do exclude an id pad their last slot instead (below).
    k = min(k, n)
    n_queries = queries.shape[0]
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise ValueError("exclude must have one entry per query")

    ids = np.empty((n_queries, k), dtype=np.intp)
    scores = np.empty((n_queries, k), dtype=np.float64)
    for start in range(0, n_queries, max(1, tile_size)):
        stop = min(start + max(1, tile_size), n_queries)
        block = queries[start:stop] @ features.T
        if exclude is not None:
            rows = np.arange(start, stop)
            masked = exclude[rows] >= 0
            block[np.nonzero(masked)[0], exclude[rows][masked]] = -np.inf
        # Whole-tile selection: one argpartition + one k-wide argsort across
        # the tile instead of a Python loop of per-row selections — the hot
        # path the serving throughput numbers are measured on.  Negate in
        # place so ascending partition order means descending similarity.
        np.negative(block, out=block)
        top = np.argpartition(block, k - 1, axis=1)[:, :k]
        part = np.take_along_axis(block, top, axis=1)
        order = np.argsort(part, axis=1, kind="stable")
        ids[start:stop] = np.take_along_axis(top, order, axis=1)
        scores[start:stop] = -np.take_along_axis(part, order, axis=1)
    if exclude is not None:
        # A masked id can only reach the result when a row had fewer than k
        # real candidates (k = n with an exclusion); rewrite it as padding.
        ids[scores == -np.inf] = -1
    if single:
        return ids[0], scores[0]
    return ids, scores


def pairwise_cosine(
    features: np.ndarray, *, max_elements: int | None = MAX_PAIRWISE_ELEMENTS
) -> np.ndarray:
    """Full ``n × n`` cosine similarity matrix (small graphs only).

    Refuses when ``n²`` would exceed ``max_elements`` (default 2**27
    entries ≈ 1 GiB of float64) — use :func:`top_k_similar` /
    :func:`batch_top_k`, which never materialize the full matrix, or pass
    ``max_elements=None`` to override the guard deliberately.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if max_elements is not None and n * n > max_elements:
        raise ValueError(
            f"pairwise_cosine would materialize {n}×{n} = {n * n} similarities "
            f"(> max_elements={max_elements}); use top_k_similar/batch_top_k "
            "or pass max_elements=None to override"
        )
    normalized = _normalize(features)
    return normalized @ normalized.T


def top_k_similar(
    features: np.ndarray,
    node: int,
    k: int = 10,
    *,
    assume_normalized: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nodes most cosine-similar to ``node`` (excluding itself).

    Returns ``(indices, similarities)`` sorted by descending similarity.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 0 <= node < n:
        raise IndexError(f"node {node} out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 1:
        # Only the query node itself exists — no neighbors to return.
        return np.empty(0, dtype=np.intp), np.empty(0)
    if not assume_normalized:
        features = _normalize(features)
    return exact_top_k(
        features,
        features[node],
        min(k, n - 1),
        assume_normalized=True,
        exclude=np.array([node]),
    )


def batch_top_k(
    features: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    *,
    assume_normalized: bool = False,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k similar nodes for several query nodes at once.

    Normalizes the matrix once and scores queries in GEMM tiles — the seed
    version re-normalized all of ``features`` for every query node.

    Returns ``(indices, similarities)`` of shape ``(len(queries), k)``.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    queries = np.asarray(queries, dtype=np.intp).ravel()
    if queries.size and (queries.min() < 0 or queries.max() >= n):
        raise IndexError(f"query node out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 1:
        return (
            np.empty((queries.shape[0], 0), dtype=np.intp),
            np.empty((queries.shape[0], 0)),
        )
    if not assume_normalized:
        features = _normalize(features)
    return exact_top_k(
        features,
        features[queries],
        min(k, n - 1),
        assume_normalized=True,
        exclude=queries,
        tile_size=tile_size,
    )
