"""Cosine k-nearest-neighbor search over embedding matrices.

The classic downstream use of node embeddings: "find nodes like this one".
This module is the *exact* search engine: brute-force dense scoring with
``np.argpartition`` selection, tiled over queries so a batch never
materializes more than ``tile × n`` scores at once.  The serving layer
(:mod:`repro.serving.index`) wraps it as the ``ExactBackend`` and adds an
IVF approximate backend behind the same interface.

All entry points accept ``assume_normalized=True`` for inputs whose rows
are already unit-length (e.g. matrices published by
:class:`repro.serving.store.EmbeddingStore`), which skips the per-call
re-normalization of the full matrix.

Returned similarities are **canonical**: candidates are *selected* with a
BLAS GEMM (fast, but its partial edge tiles make element values depend on
the matrix's row count), then the selected ``k`` rows are *rescored* with
:func:`rowwise_inner`, whose reduction depends only on the row bytes.  Two
engines scoring the same (row, query) pair therefore return the same
float64 bits regardless of how many other rows sit in their matrices —
the property the sharded scatter-gather router
(:mod:`repro.serving.sharding.router`) relies on to merge per-shard
results into a global top-k bit-identical to unsharded search.  Ties are
broken by ascending row id, which is partition-invariant too.
"""

from __future__ import annotations

import numpy as np

# ``pairwise_cosine`` materializes n² float64 similarities; refuse beyond
# this many elements (2**27 ≈ 134M entries ≈ 1 GiB) unless overridden.
MAX_PAIRWISE_ELEMENTS = 2**27

# Query rows per tile in batched exact search: bounds the transient
# ``tile × n`` score block (128 × 1M nodes ≈ 1 GiB) independent of batch size.
DEFAULT_TILE_SIZE = 128

# Elements gathered per canonical-rescore chunk (bounds the ``rows × dim``
# copy when k is a large fraction of n).
_RESCORE_CHUNK_ELEMENTS = 2**22

# float32 selection: shortlist size = max(oversample*k, k + slack).  The
# slack floor keeps tiny k from producing a shortlist so tight that a
# float32 rounding collision near the boundary could push a true top-k
# member out before the float64 rescore can rank it back in.
DEFAULT_SELECT_OVERSAMPLE = 4
SELECT_SLACK = 16


def select_shortlist_size(
    k: int, population: int, *, oversample: int = DEFAULT_SELECT_OVERSAMPLE
) -> int:
    """Float32-selection shortlist size: oversample, slack floor, clamp.

    The one definition of the safety-margin policy, shared by
    :func:`exact_top_k`'s float32 path and the IVF backend's float32
    candidate selector (:class:`repro.serving.index.IVFIndex`) — the two
    paths must never diverge in how much slack protects their
    bit-identity-via-rescore contract.
    """
    return min(population, max(int(oversample) * k, k + SELECT_SLACK))


def _normalize(features: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.where(norms == 0, 1.0, norms)


def normalize_rows(features: np.ndarray) -> np.ndarray:
    """Rows of ``features`` scaled to unit L2 norm (zero rows left zero)."""
    return _normalize(np.asarray(features, dtype=np.float64))


def rowwise_inner(rows: np.ndarray, others: np.ndarray) -> np.ndarray:
    """Per-row inner products whose bits depend only on each row's bytes.

    ``np.einsum('ij,ij->i')`` reduces every row independently with a fixed
    sequential kernel, so — unlike a BLAS GEMM, whose partial edge tiles
    compute the last ``n % tile`` rows with a different instruction mix —
    the result for a given (row, other) pair is identical no matter how
    the rows are batched or which sub-matrix they were sliced from.  Both
    operands are made contiguous so stride games can't change the kernel.
    """
    return np.einsum(
        "ij,ij->i", np.ascontiguousarray(rows), np.ascontiguousarray(others)
    )


def canonical_scores(
    features: np.ndarray, ids: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Canonical cosine scores of ``features[ids]`` against one ``query``.

    The single-query convenience over :func:`rowwise_inner` used by the
    IVF and PQ backends to rescore candidate sets: the returned floats are
    bit-identical to what :func:`exact_top_k` reports for the same rows.
    A fancy-index gather always yields a fresh contiguous array, so the
    einsum runs directly on it (this sits on per-query hot paths; the
    generic :func:`rowwise_inner` wrapper calls are measurable there).
    """
    rows = features[ids]
    repeated = np.empty_like(rows)
    repeated[:] = query
    return np.einsum("ij,ij->i", rows, repeated)


def top_k_sorted_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D score vector, descending.

    ``argpartition`` + a sort of only the selected ``k`` — O(n + k log k)
    instead of the O(n log n) full sort.  Fully deterministic: equal
    scores order by ascending index, *including* ties that straddle the
    selection boundary (``argpartition`` picks those arbitrarily, so they
    are repaired against the boundary value) — the property that keeps
    results identical no matter how the corpus is sliced into shards.
    """
    k = min(k, scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    top = np.argpartition(-scores, k - 1)[:k]
    boundary = scores[top].min()
    if np.count_nonzero(scores == boundary) > np.count_nonzero(
        scores[top] == boundary
    ):
        definite = np.nonzero(scores > boundary)[0]
        tied = np.nonzero(scores == boundary)[0][: k - definite.size]
        top = np.concatenate([definite, tied])
    top = np.sort(top)  # ascending index, so the stable sort breaks ties by it
    return top[np.argsort(-scores[top], kind="stable")]


def exact_top_k(
    features: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    assume_normalized: bool = False,
    exclude: np.ndarray | None = None,
    tile_size: int = DEFAULT_TILE_SIZE,
    select_dtype: str = "float64",
    select_features: np.ndarray | None = None,
    oversample: int = DEFAULT_SELECT_OVERSAMPLE,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact cosine top-k of query *vectors* against every row of ``features``.

    The engine under both :func:`top_k_similar`/:func:`batch_top_k` and the
    serving layer's ``ExactBackend``.

    Parameters
    ----------
    features:
        ``n × dim`` matrix (rows may be memory-mapped).
    queries:
        ``q × dim`` query vectors (or a single ``dim`` vector).
    k:
        Neighbors per query (clamped to the population size).
    assume_normalized:
        Skip row re-normalization of both sides (inputs already unit rows).
    exclude:
        Optional length-``q`` array of row ids masked to ``-inf`` per query
        (``-1`` = no exclusion) — how self-matches are dropped.
    tile_size:
        Query rows scored per GEMM tile.
    select_dtype:
        ``"float64"`` (default, the reference path) or ``"float32"`` —
        run the *selection* GEMM in float32 over an oversampled
        shortlist, then rescore the shortlist with the canonical float64
        einsum.  The selection scan is memory-bound, so float32 moves
        half the bytes; returned scores stay canonical float64 and are
        bit-identical to the float64 engine whenever the shortlist
        covers the true top-k (the same shortlist-covers-the-answer
        rationale as the PQ ``min_rescore`` floor; asserted on the bench
        corpus by ``benchmarks/bench_serving.py`` every run).
    select_features:
        Optional precomputed float32 copy of the (normalized) matrix for
        the float32 path — callers with a long-lived matrix (the serving
        ``ExactBackend``) cast once instead of per call.  Ignored for
        float64.
    oversample:
        Shortlist factor for the float32 path: ``max(oversample × k,
        k + 16)`` candidates are selected, clamped to ``n``.

    Returns
    -------
    ``(ids, scores)`` of shape ``(q, k)``, similarity-descending with ties
    broken by ascending id.  A single 1-D query returns 1-D arrays.  A row
    whose exclusion leaves fewer than ``k`` candidates pads the tail with
    id ``-1`` / similarity ``-inf`` (the same convention as the serving
    backends).  Scores are canonical (:func:`rowwise_inner` over the
    selected rows), so they are bit-identical across engines scoring the
    same rows — see the module docstring.
    """
    if select_dtype not in ("float64", "float32"):
        raise ValueError(
            f"select_dtype must be 'float64' or 'float32', got {select_dtype!r}"
        )
    single = np.ndim(queries) == 1
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if not assume_normalized:
        features = normalize_rows(features)
        queries = _normalize(queries)
    n = features.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_queries = queries.shape[0]
    if n == 0:
        # An empty population (e.g. an empty shard of a sharded store)
        # has nothing to rank: zero-width results, not an error.
        empty = (np.empty((n_queries, 0), dtype=np.intp), np.empty((n_queries, 0)))
        return (empty[0][0], empty[1][0]) if single else empty
    # Clamp to the population, not n - 1: an exclude entry of -1 means "no
    # exclusion" for that row, so it may legitimately fill all n slots.
    # Rows that do exclude an id pad their last slot instead (below).
    k = min(k, n)
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise ValueError("exclude must have one entry per query")

    if select_dtype == "float32":
        if select_features is None:
            select_features = np.asarray(features, dtype=np.float32)
        elif select_features.shape != features.shape:
            raise ValueError(
                f"select_features shape {select_features.shape} != "
                f"features shape {features.shape}"
            )
        # Selection runs on the float32 pair; the shortlist m replaces k
        # in the selection so float32 rounding near the k-th rank cannot
        # evict a true top-k row before the float64 rescore ranks it.
        select_mat = select_features
        select_queries = queries.astype(np.float32)
        m = select_shortlist_size(k, n, oversample=oversample)
    else:
        select_mat = features
        select_queries = queries
        m = k

    ids = np.empty((n_queries, k), dtype=np.intp)
    scores = np.empty((n_queries, k), dtype=np.float64)
    for start in range(0, n_queries, max(1, tile_size)):
        stop = min(start + max(1, tile_size), n_queries)
        block = select_queries[start:stop] @ select_mat.T
        if exclude is not None:
            rows = np.arange(start, stop)
            masked = exclude[rows] >= 0
            block[np.nonzero(masked)[0], exclude[rows][masked]] = -np.inf
        # Whole-tile selection: one argpartition + one m-wide argsort across
        # the tile instead of a Python loop of per-row selections — the hot
        # path the serving throughput numbers are measured on.  Negate in
        # place so ascending partition order means descending similarity.
        np.negative(block, out=block)
        top = np.argpartition(block, m - 1, axis=1)[:, :m]
        part = np.take_along_axis(block, top, axis=1)
        # Boundary-tie repair: argpartition picks arbitrarily among rows
        # tied at the m-th score, and that choice differs between a full
        # matrix and a shard slice (duplicate rows are the realistic
        # case — e.g. zero-feature isolated nodes).  Detect rows whose
        # ties extend past the selection and redo them deterministically:
        # everything strictly better, then the smallest ids among ties.
        worst = part.max(axis=1, keepdims=True)
        overflow = np.nonzero(
            (block == worst).sum(axis=1) > (part == worst[:, :1]).sum(axis=1)
        )[0]
        for row in overflow:
            boundary = worst[row, 0]
            definite = np.nonzero(block[row] < boundary)[0]
            tied = np.nonzero(block[row] == boundary)[0][: m - definite.size]
            top[row] = np.concatenate([definite, tied])
            part[row] = block[row][top[row]]
        # Canonical rescore of the m selected rows: the GEMM above only
        # *selects*; the returned scores come from the partition-invariant
        # row-wise reduction.  Candidates are first ordered by ascending id
        # so the stable score sort breaks exact ties by id — both steps are
        # what makes sharded scatter-gather bit-identical to this engine.
        id_order = np.argsort(top, axis=1)
        sel = np.take_along_axis(top, id_order, axis=1)
        sel_part = np.take_along_axis(part, id_order, axis=1)
        canon = np.empty(sel.shape, dtype=np.float64)
        tile_rows = stop - start
        step = max(1, _RESCORE_CHUNK_ELEMENTS // max(1, m * features.shape[1]))
        for row0 in range(0, tile_rows, step):
            row1 = min(row0 + step, tile_rows)
            chunk_ids = sel[row0:row1].ravel()
            chunk_queries = np.repeat(queries[start + row0 : start + row1], m, axis=0)
            canon[row0:row1] = rowwise_inner(
                features[chunk_ids], chunk_queries
            ).reshape(row1 - row0, m)
        # Excluded candidates were forced in only when the row ran out of
        # real ones (k = n with an exclusion); keep them -inf, not rescored.
        canon[~np.isfinite(sel_part)] = -np.inf
        order = np.argsort(-canon, axis=1, kind="stable")[:, :k]
        ids[start:stop] = np.take_along_axis(sel, order, axis=1)
        scores[start:stop] = np.take_along_axis(canon, order, axis=1)
    if exclude is not None:
        # A masked id can only reach the result when a row had fewer than k
        # real candidates (k = n with an exclusion); rewrite it as padding.
        ids[scores == -np.inf] = -1
    if single:
        return ids[0], scores[0]
    return ids, scores


def pairwise_cosine(
    features: np.ndarray, *, max_elements: int | None = MAX_PAIRWISE_ELEMENTS
) -> np.ndarray:
    """Full ``n × n`` cosine similarity matrix (small graphs only).

    Refuses when ``n²`` would exceed ``max_elements`` (default 2**27
    entries ≈ 1 GiB of float64) — use :func:`top_k_similar` /
    :func:`batch_top_k`, which never materialize the full matrix, or pass
    ``max_elements=None`` to override the guard deliberately.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if max_elements is not None and n * n > max_elements:
        raise ValueError(
            f"pairwise_cosine would materialize {n}×{n} = {n * n} similarities "
            f"(> max_elements={max_elements}); use top_k_similar/batch_top_k "
            "or pass max_elements=None to override"
        )
    normalized = _normalize(features)
    return normalized @ normalized.T


def top_k_similar(
    features: np.ndarray,
    node: int,
    k: int = 10,
    *,
    assume_normalized: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nodes most cosine-similar to ``node`` (excluding itself).

    Returns ``(indices, similarities)`` sorted by descending similarity.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 0 <= node < n:
        raise IndexError(f"node {node} out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 1:
        # Only the query node itself exists — no neighbors to return.
        return np.empty(0, dtype=np.intp), np.empty(0)
    if not assume_normalized:
        features = _normalize(features)
    return exact_top_k(
        features,
        features[node],
        min(k, n - 1),
        assume_normalized=True,
        exclude=np.array([node]),
    )


def batch_top_k(
    features: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    *,
    assume_normalized: bool = False,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k similar nodes for several query nodes at once.

    Normalizes the matrix once and scores queries in GEMM tiles — the seed
    version re-normalized all of ``features`` for every query node.

    Returns ``(indices, similarities)`` of shape ``(len(queries), k)``.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    queries = np.asarray(queries, dtype=np.intp).ravel()
    if queries.size and (queries.min() < 0 or queries.max() >= n):
        raise IndexError(f"query node out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 1:
        return (
            np.empty((queries.shape[0], 0), dtype=np.intp),
            np.empty((queries.shape[0], 0)),
        )
    if not assume_normalized:
        features = _normalize(features)
    return exact_top_k(
        features,
        features[queries],
        min(k, n - 1),
        assume_normalized=True,
        exclude=queries,
        tile_size=tile_size,
    )
