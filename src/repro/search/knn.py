"""Cosine k-nearest-neighbor search over embedding matrices.

The classic downstream use of node embeddings: "find nodes like this one".
Brute-force dense search — exact, and fast enough for the graph sizes this
reproduction targets.
"""

from __future__ import annotations

import numpy as np


def _normalize(features: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.where(norms == 0, 1.0, norms)


def pairwise_cosine(features: np.ndarray) -> np.ndarray:
    """Full ``n × n`` cosine similarity matrix (small graphs only)."""
    normalized = _normalize(np.asarray(features, dtype=np.float64))
    return normalized @ normalized.T


def top_k_similar(
    features: np.ndarray, node: int, k: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nodes most cosine-similar to ``node`` (excluding itself).

    Returns ``(indices, similarities)`` sorted by descending similarity.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 0 <= node < n:
        raise IndexError(f"node {node} out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n - 1)
    normalized = _normalize(features)
    similarities = normalized @ normalized[node]
    similarities[node] = -np.inf  # exclude self
    top = np.argpartition(-similarities, k - 1)[:k]
    order = np.argsort(-similarities[top])
    top = top[order]
    return top, similarities[top]


def batch_top_k(
    features: np.ndarray, queries: np.ndarray, k: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k similar nodes for several query nodes at once.

    Returns ``(indices, similarities)`` of shape ``(len(queries), k)``.
    """
    queries = np.asarray(queries)
    results = [top_k_similar(features, int(q), k) for q in queries]
    indices = np.stack([r[0] for r in results])
    similarities = np.stack([r[1] for r in results])
    return indices, similarities
