"""Similarity search over trained embeddings."""

from repro.search.knn import top_k_similar, pairwise_cosine, batch_top_k

__all__ = ["top_k_similar", "pairwise_cosine", "batch_top_k"]
