"""Similarity search over trained embeddings."""

from repro.search.knn import (
    batch_top_k,
    exact_top_k,
    normalize_rows,
    pairwise_cosine,
    top_k_similar,
    top_k_sorted_indices,
)

__all__ = [
    "top_k_similar",
    "pairwise_cosine",
    "batch_top_k",
    "exact_top_k",
    "normalize_rows",
    "top_k_sorted_indices",
]
