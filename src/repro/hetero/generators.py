"""Synthetic multiplex attributed graphs."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.generators import _sample_block_attributes
from repro.hetero.multiplex import MultiplexAttributedGraph
from repro.utils.rng import ensure_rng


def multiplex_sbm(
    n_nodes: int = 300,
    n_communities: int = 4,
    n_attributes: int = 64,
    *,
    edge_types: tuple[str, ...] = ("follows", "mentions"),
    p_in: float = 0.06,
    p_out: float = 0.005,
    attrs_per_node: float = 4.0,
    attribute_focus: float = 0.75,
    seed: int | np.random.Generator | None = None,
) -> MultiplexAttributedGraph:
    """A multiplex SBM: every layer has its own community partition.

    Each edge type draws an independent community assignment, so no single
    layer explains all types — the property that makes per-layer
    embeddings (GATNE/MultiplexPANE) outperform a collapsed union graph.
    Attributes and labels follow the *first* layer's communities.
    """
    rng = ensure_rng(seed)
    layers: dict[str, sp.csr_matrix] = {}
    first_communities: np.ndarray | None = None
    for edge_type in edge_types:
        communities = rng.integers(0, n_communities, size=n_nodes)
        if first_communities is None:
            first_communities = communities
        same = communities[:, None] == communities[None, :]
        probs = np.where(same, p_in, p_out)
        mask = rng.random((n_nodes, n_nodes)) < probs
        np.fill_diagonal(mask, False)
        layers[edge_type] = sp.csr_matrix(mask.astype(np.float64))

    attributes = _sample_block_attributes(
        rng, first_communities, n_attributes, attrs_per_node, attribute_focus
    )
    return MultiplexAttributedGraph(
        layers=layers,
        attributes=attributes,
        directed=True,
        labels=first_communities.astype(np.int64),
    )
