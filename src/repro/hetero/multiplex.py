"""PANE on multiplex attributed networks.

The paper names "heterogeneous graphs" as future work and cites GATNE's
approach: learn one embedding per edge type, concatenate for the overall
node representation.  We apply the same reduction with PANE as the
per-layer learner: each edge type forms a layer sharing the node set and
attribute matrix; PANE embeds every layer independently; the multiplex
node embedding is the concatenation across layers, and per-layer scores
serve typed link prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.pane import PANE, PANEEmbedding
from repro.graph.attributed_graph import AttributedGraph


@dataclass
class MultiplexAttributedGraph:
    """A node set with typed edge layers and shared attributes.

    Attributes
    ----------
    layers:
        ``{edge_type: adjacency}`` — one sparse ``n × n`` matrix per type.
    attributes:
        Shared ``n × d`` attribute matrix.
    directed:
        Whether layers are directed (applied uniformly).
    labels:
        Optional node labels, as in :class:`AttributedGraph`.
    """

    layers: dict[str, sp.csr_matrix]
    attributes: sp.csr_matrix
    directed: bool = True
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a multiplex graph needs at least one layer")
        shapes = {adj.shape for adj in self.layers.values()}
        if len(shapes) != 1:
            raise ValueError(f"layer adjacency shapes differ: {shapes}")
        (shape,) = shapes
        if shape[0] != shape[1]:
            raise ValueError("layer adjacencies must be square")
        if self.attributes.shape[0] != shape[0]:
            raise ValueError("attributes row count must match the node count")

    @property
    def n_nodes(self) -> int:
        return self.attributes.shape[0]

    @property
    def n_attributes(self) -> int:
        return self.attributes.shape[1]

    @property
    def edge_types(self) -> list[str]:
        return list(self.layers)

    def layer_graph(self, edge_type: str) -> AttributedGraph:
        """The single-layer attributed graph for ``edge_type``."""
        if edge_type not in self.layers:
            raise KeyError(
                f"unknown edge type {edge_type!r}; have {self.edge_types}"
            )
        return AttributedGraph(
            adjacency=self.layers[edge_type],
            attributes=self.attributes,
            directed=self.directed,
            labels=self.labels,
        )


@dataclass
class MultiplexEmbedding:
    """Per-layer PANE embeddings plus the concatenated node features."""

    per_layer: dict[str, PANEEmbedding]

    def node_features(self) -> np.ndarray:
        """Concatenated ``[Xf ‖ Xb]`` across layers (GATNE-style)."""
        return np.hstack(
            [emb.node_embeddings() for emb in self.per_layer.values()]
        )

    def score_links(
        self, edge_type: str, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Typed link prediction: the named layer's Eq. 22 score."""
        if edge_type not in self.per_layer:
            raise KeyError(f"unknown edge type {edge_type!r}")
        return self.per_layer[edge_type].score_links(sources, targets)

    def score_attributes(
        self, nodes: np.ndarray, attributes: np.ndarray
    ) -> np.ndarray:
        """Attribute inference: average Eq. 21 score across layers."""
        scores = [
            emb.score_attributes(nodes, attributes)
            for emb in self.per_layer.values()
        ]
        return np.mean(scores, axis=0)


class MultiplexPANE:
    """One PANE per edge type; embeddings concatenated across types.

    ``k`` is the *per-layer* budget, so the concatenated node feature has
    ``k × n_layers`` dimensions.
    """

    def __init__(
        self,
        k: int = 64,
        alpha: float = 0.5,
        epsilon: float = 0.015,
        *,
        n_threads: int = 1,
        seed: int | None = 0,
    ) -> None:
        self.k = k
        self.alpha = alpha
        self.epsilon = epsilon
        self.n_threads = n_threads
        self.seed = seed

    def fit(self, graph: MultiplexAttributedGraph) -> MultiplexEmbedding:
        """Embed every layer and bundle the results."""
        per_layer: dict[str, PANEEmbedding] = {}
        for edge_type in graph.edge_types:
            model = PANE(
                k=self.k,
                alpha=self.alpha,
                epsilon=self.epsilon,
                n_threads=self.n_threads,
                seed=self.seed,
            )
            per_layer[edge_type] = model.fit(graph.layer_graph(edge_type))
        return MultiplexEmbedding(per_layer=per_layer)
