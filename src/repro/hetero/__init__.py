"""Heterogeneous (multiplex) attributed networks (paper Sec. 7 future work)."""

from repro.hetero.multiplex import MultiplexAttributedGraph, MultiplexPANE
from repro.hetero.generators import multiplex_sbm

__all__ = ["MultiplexAttributedGraph", "MultiplexPANE", "multiplex_sbm"]
