"""Randomized truncated SVD (the RandSVD primitive of Alg. 3/7).

The paper cites Musco & Musco's randomized block Krylov method; we implement
the closely related randomized subspace (power) iteration of Halko et al.,
which has the same role in GreedyInit: a fast rank-``k/2`` factorization
``M ≈ U Σ Vᵀ`` with orthonormal ``V``.  An ``exact=True`` escape hatch runs
a full dense SVD, used by the Lemma 4.2 tests that reason about the
``t = ∞`` limit.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import ensure_rng


def _matmul(matrix, other: np.ndarray) -> np.ndarray:
    """``matrix @ other`` returning a dense ndarray for sparse or dense input."""
    result = matrix @ other
    return np.asarray(result)


def randsvd(
    matrix,
    rank: int,
    n_iter: int = 5,
    *,
    oversample: int = 8,
    seed: int | np.random.Generator | None = None,
    exact: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD ``matrix ≈ U @ diag(s) @ V.T``.

    Parameters
    ----------
    matrix:
        ``n × d`` dense array or scipy sparse matrix.
    rank:
        Number of singular triplets to return (``k/2`` in PANE).
    n_iter:
        Power-iteration count; more iterations sharpen the spectrum
        separation at linear extra cost.
    oversample:
        Extra random directions kept during iteration for stability.
    seed:
        RNG for the Gaussian test matrix — fixing it makes the whole PANE
        pipeline deterministic.
    exact:
        Use a full dense SVD (exact optimum; O(nd·min(n,d))) instead.

    Returns
    -------
    U : ``n × rank`` — left singular vectors.
    s : ``rank`` — singular values, descending.
    V : ``d × rank`` — right singular vectors (orthonormal columns).
    """
    n, d = matrix.shape
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if rank > min(n, d):
        raise ValueError(f"rank {rank} exceeds min(n, d) = {min(n, d)}")

    if exact:
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
        u_full, s_full, vt_full = np.linalg.svd(dense, full_matrices=False)
        return u_full[:, :rank], s_full[:rank], vt_full[:rank].T

    rng = ensure_rng(seed)
    width = min(rank + oversample, min(n, d))
    test = rng.standard_normal((d, width))
    sketch = _matmul(matrix, test)
    q, _ = np.linalg.qr(sketch)
    for _ in range(n_iter):
        q, _ = np.linalg.qr(_matmul(matrix.T, q))
        q, _ = np.linalg.qr(_matmul(matrix, q))
    small = _matmul(matrix.T, q).T  # q.T @ matrix, shape (width, d)
    u_small, s, vt = np.linalg.svd(small, full_matrices=False)
    u = q @ u_small
    return u[:, :rank], s[:rank], vt[:rank].T
