"""Allocation-free blocked compute kernels for the PANE pipeline.

The hot loops of PANE — CCD residual updates (Alg. 4/8) and the Eq. (6)
affinity recurrence (Alg. 2/6) — are memory-bandwidth bound, so the seed
implementation's habit of materializing a fresh ``n × d`` temporary per
rank-1 update (``np.outer``) or per propagation hop dominated their run
time.  This module provides the cache-aware replacements that everything
in :mod:`repro.core` is wired through:

- :class:`CCDScratch` — one preallocated buffer set reused across sweeps,
  eliminating every ``O(n·d)`` and ``O(n·B)`` temporary (``out=``
  everywhere).
- :func:`ccd_sweep_exact` / :func:`ccd_sweep_exact_parallel` — the
  ``B = 1`` path, bit-identical to the per-coordinate Alg. 4 updates.
- :func:`ccd_sweep_blocked` / :func:`ccd_sweep_blocked_parallel` — the
  ``B > 1`` path, replacing ``2·k`` rank-1 updates per sweep with
  ``2·k/B`` rank-``B`` GEMM updates.  Coordinates are grouped into blocks
  and each block is minimized *exactly* (block Gauss–Seidel): the block
  step ``M = S·Y_B·(Y_Bᵀ Y_B)⁺`` is the least-squares minimizer of the
  Eq. (4) objective over the block, so the objective is monotonically
  non-increasing for every ``B``; the pseudo-inverse makes dead or
  collinear coordinates a silent no-op, matching the ``B = 1`` skip rule.
  For ``B = 1`` the formula degenerates to the paper's coordinate update,
  which is why the two paths agree in exact arithmetic.
- :func:`propagate_recurrence` — the shared Eq. (6) ping-pong evaluator
  used by APMI, PAPMI, and (in sparse form,
  :func:`propagate_recurrence_sparse`) the pruned sparse variant; two
  preallocated buffers per direction replace one allocation per hop.
- :func:`spmm_into` — sparse·dense product into a caller-owned output
  buffer (CSR fast path via ``scipy.sparse._sparsetools.csr_matvecs``,
  transparent fallback when unavailable).

See ``docs/PERFORMANCE.md`` for measured speedups and the
``benchmarks/bench_kernels.py`` record format.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.parallel.executor import run_blocks
from repro.parallel.partitioning import partition_spans

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.greedy_init import InitState
    from repro.parallel.pool import WorkerPool

#: Denominators below this are treated as a dead coordinate and skipped.
_EPS_DENOM = 1e-300

try:  # CSR kernels shipped with scipy; private but stable since 2008.
    from scipy.sparse import _sparsetools

    _HAVE_CSR_MATVECS = hasattr(_sparsetools, "csr_matvecs")
except ImportError:  # pragma: no cover - depends on scipy build
    _sparsetools = None
    _HAVE_CSR_MATVECS = False


# ---------------------------------------------------------------------------
# Sparse propagation kernels (Eq. 6)
# ---------------------------------------------------------------------------


def spmm_into(matrix, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out ← matrix @ dense`` without allocating the product.

    The CSR fast path writes straight into ``out`` (bit-identical to
    ``matrix @ dense``, which calls the same scipy kernel); any other
    matrix type or memory layout falls back to an allocating product
    copied into ``out``.
    """
    if matrix.shape[1] != dense.shape[0] or out.shape != (
        matrix.shape[0],
        dense.shape[1],
    ):
        raise ValueError(
            f"shape mismatch: {matrix.shape} @ {dense.shape} -> {out.shape}"
        )
    if (
        _HAVE_CSR_MATVECS
        and sp.issparse(matrix)
        and matrix.format == "csr"
        and matrix.dtype == np.float64
        and dense.dtype == np.float64
        and out.dtype == np.float64
        and dense.flags.c_contiguous
        and out.flags.c_contiguous
    ):
        out.fill(0.0)
        _sparsetools.csr_matvecs(
            matrix.shape[0],
            matrix.shape[1],
            dense.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            dense.ravel(),
            out.ravel(),
        )
        return out
    np.copyto(out, np.asarray(matrix @ dense))
    return out


def propagate_recurrence(
    transition,
    p0: np.ndarray,
    alpha: float,
    t: int,
    *,
    buffers: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Evaluate the Alg. 2 recurrence ``p ← (1−α)·T·p + α·p0`` for ``t`` hops.

    Starting from ``p = α·p0``, this computes Eq. (6)'s truncated series
    exactly (seeding with ``α·Rr`` rather than the printed ``Rr`` — see
    :func:`repro.core.affinity.apmi`).  Instead of allocating a fresh
    ``n × c`` matrix per hop, the recurrence ping-pongs between two
    preallocated buffers.

    ``p0`` is scaled by ``alpha`` **in place** and serves as the constant
    restart term, so the caller must own it (both call sites densify a
    sparse seed immediately before calling).  Returns one of the two
    propagation buffers; ``p0`` holds ``α·p0`` afterwards.
    """
    p0 *= alpha
    if buffers is None:
        current, scratch = np.empty_like(p0), np.empty_like(p0)
    else:
        current, scratch = buffers
    np.copyto(current, p0)
    decay = 1.0 - alpha
    for _ in range(t):
        spmm_into(transition, current, scratch)
        scratch *= decay
        scratch += p0
        current, scratch = scratch, current
    return current


def prune_sparse(matrix: sp.csr_matrix, threshold: float) -> sp.csr_matrix:
    """Drop entries with magnitude below ``threshold``."""
    if threshold <= 0:
        return matrix
    matrix = matrix.tocsr()
    matrix.data[np.abs(matrix.data) < threshold] = 0.0
    matrix.eliminate_zeros()
    return matrix


def propagate_recurrence_sparse(
    transition,
    restart: sp.csr_matrix,
    alpha: float,
    t: int,
    *,
    prune_threshold: float = 0.0,
) -> sp.csr_matrix:
    """Sparse form of :func:`propagate_recurrence` with per-hop pruning.

    ``restart`` is the already ``α``-scaled seed (``α·Rr`` as CSR); each
    hop computes ``(1−α)·T·p + restart`` and prunes entries below
    ``prune_threshold``, so memory tracks the support of the affinity
    rather than ``n·d``.  With ``prune_threshold=0`` the result equals
    the dense recurrence on the same inputs.
    """
    current = restart.copy()
    decay = 1.0 - alpha
    for _ in range(t):
        current = prune_sparse(
            (decay * (transition @ current) + restart).tocsr(), prune_threshold
        )
    return current


# ---------------------------------------------------------------------------
# CCD sweep kernels (Alg. 4 / Alg. 8)
# ---------------------------------------------------------------------------


class CCDScratch:
    """Preallocated buffers for allocation-free CCD sweeps.

    One instance is sized to a factorization problem (``n`` nodes, ``d``
    attributes, ``k/2`` coordinates, block size ``B``) and reused across
    every sweep of a :func:`repro.core.svd_ccd.refine` call, so the hot
    loop performs no ``O(n·d)`` or ``O(n·B)`` allocations at all.  The
    parallel sweeps share the same buffers: workers operate on disjoint
    row/column spans, so each slices its own region out of ``update`` and
    the coefficient buffers.
    """

    def __init__(self, n: int, d: int, half: int, block_size: int = 1) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        b = max(1, min(block_size, half))
        self.n, self.d, self.half = n, d, half
        self.block_size = b
        # Staging area for rank-B updates Mu @ Ybᵀ (and outer products).
        self.update = np.empty((n, d))
        # X phase: C = S @ Yb and Mu = C @ G⁺ (n × B each).
        self.coef_n = np.empty((n, b))
        self.mu_n = np.empty((n, b))
        # Y phase: C = Xᵀ S per direction and Mu (B × d each).
        self.coef_d = np.empty((b, d))
        self.coef_d2 = np.empty((b, d))
        self.mu_d = np.empty((b, d))
        # B = 1 exact path: contiguous 1-D μ vectors.
        self.vec_n = np.empty(n)
        self.vec_n2 = np.empty(n)
        self.vec_d = np.empty(d)
        self.vec_d2 = np.empty(d)
        # Column-norm caches for the parallel exact sweep.
        self.denoms = np.empty(half)
        self.denoms2 = np.empty(half)
        # Block Gram matrices (B × B).
        self.gram = np.empty((b, b))
        self.gram2 = np.empty((b, b))

    @classmethod
    def for_state(cls, state: "InitState", block_size: int = 1) -> "CCDScratch":
        """Size a scratch set for ``state``'s factorization problem."""
        n, half = state.x_forward.shape
        d = state.y.shape[0]
        return cls(n, d, half, block_size)

    def fits(self, state: "InitState") -> bool:
        """Whether this scratch matches ``state``'s dimensions."""
        n, half = state.x_forward.shape
        return self.n == n and self.half == half and self.d == state.y.shape[0]


def ccd_sweep_exact(state: "InitState", scratch: CCDScratch) -> None:
    """Serial allocation-free CCD sweep, bit-identical to the seed Alg. 4 path.

    Performs exactly the per-coordinate updates of Eqs. (13)–(20) in the
    seed's operation order — dot, scalar divide, outer product, subtract —
    but stages every intermediate in ``scratch`` instead of allocating.
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    half = y.shape[1]
    mu_f, mu_b = scratch.vec_n, scratch.vec_n2
    update = scratch.update

    for l in range(half):
        y_col = y[:, l]
        denom = float(y_col @ y_col)
        if denom <= _EPS_DENOM:
            continue
        np.dot(s_forward, y_col, out=mu_f)  # Eq. 16, all rows at once
        mu_f /= denom
        np.dot(s_backward, y_col, out=mu_b)
        mu_b /= denom
        x_forward[:, l] -= mu_f  # Eq. 13
        x_backward[:, l] -= mu_b  # Eq. 14
        np.multiply(mu_f[:, None], y_col[None, :], out=update)  # Eq. 18
        np.subtract(s_forward, update, out=s_forward)
        np.multiply(mu_b[:, None], y_col[None, :], out=update)  # Eq. 19
        np.subtract(s_backward, update, out=s_backward)

    mu_y, tmp_d = scratch.vec_d, scratch.vec_d2
    for l in range(half):
        xf_col = x_forward[:, l]
        xb_col = x_backward[:, l]
        denom = float(xf_col @ xf_col + xb_col @ xb_col)
        if denom <= _EPS_DENOM:
            continue
        np.dot(xf_col, s_forward, out=mu_y)  # Eq. 17
        np.dot(xb_col, s_backward, out=tmp_d)
        mu_y += tmp_d
        mu_y /= denom
        y[:, l] -= mu_y  # Eq. 15
        np.multiply(xf_col[:, None], mu_y[None, :], out=update)  # Eq. 20
        np.subtract(s_forward, update, out=s_forward)
        np.multiply(xb_col[:, None], mu_y[None, :], out=update)
        np.subtract(s_backward, update, out=s_backward)


def _block_ranges(half: int, block_size: int) -> list[tuple[int, int]]:
    """Coordinate blocks ``[start, stop)`` covering ``range(half)``."""
    return [
        (start, min(start + block_size, half))
        for start in range(0, half, block_size)
    ]


def _gram_pinv(gram: np.ndarray) -> np.ndarray:
    """Pseudo-inverse of a block Gram matrix.

    ``pinv`` zeroes singular values below the relative cutoff, so dead or
    collinear coordinates inside a block contribute a zero update — the
    rank-``B`` generalization of the ``denom <= _EPS_DENOM`` skip.
    """
    return np.linalg.pinv(gram, hermitian=True)


def ccd_sweep_blocked(state: "InitState", scratch: CCDScratch) -> None:
    """Serial blocked CCD sweep: ``2·k/B`` rank-``B`` GEMM updates (Eq. 18–20).

    Each coordinate block is minimized exactly via its Gram pseudo-inverse
    (block Gauss–Seidel), so the Eq. (4) objective is monotonically
    non-increasing; for ``B = 1`` the math reduces to the exact path.
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    half = y.shape[1]
    b = scratch.block_size
    update = scratch.update

    for start, stop in _block_ranges(half, b):
        bb = stop - start
        yb = y[:, start:stop]
        gram = scratch.gram[:bb, :bb]
        np.matmul(yb.T, yb, out=gram)
        ginv = _gram_pinv(gram)
        coef = scratch.coef_n[:, :bb]
        mu = scratch.mu_n[:, :bb]
        for x_half, s_half in ((x_forward, s_forward), (x_backward, s_backward)):
            np.matmul(s_half, yb, out=coef)
            np.matmul(coef, ginv, out=mu)
            x_half[:, start:stop] -= mu
            np.matmul(mu, yb.T, out=update)
            np.subtract(s_half, update, out=s_half)

    for start, stop in _block_ranges(half, b):
        bb = stop - start
        xfb = x_forward[:, start:stop]
        xbb = x_backward[:, start:stop]
        gram = scratch.gram[:bb, :bb]
        gram2 = scratch.gram2[:bb, :bb]
        np.matmul(xfb.T, xfb, out=gram)
        np.matmul(xbb.T, xbb, out=gram2)
        gram += gram2
        ginv = _gram_pinv(gram)
        coef = scratch.coef_d[:bb]
        coef2 = scratch.coef_d2[:bb]
        mu = scratch.mu_d[:bb]
        np.matmul(xfb.T, s_forward, out=coef)
        np.matmul(xbb.T, s_backward, out=coef2)
        coef += coef2
        np.matmul(ginv, coef, out=mu)
        y[:, start:stop] -= mu.T
        np.matmul(xfb, mu, out=update)
        np.subtract(s_forward, update, out=s_forward)
        np.matmul(xbb, mu, out=update)
        np.subtract(s_backward, update, out=s_backward)


def ccd_sweep_exact_parallel(
    state: "InitState",
    scratch: CCDScratch,
    *,
    n_threads: int,
    pool: "WorkerPool | None" = None,
) -> None:
    """Parallel exact (``B = 1``) CCD sweep over disjoint row/column spans.

    Workers slice their own region out of the shared scratch buffers, so
    the parallel sweep is allocation-free as well.  Spans are disjoint
    and the updates row/column-local, so the result equals the serial
    sweep (Alg. 8).
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    n = x_forward.shape[0]
    d = y.shape[0]
    half = y.shape[1]

    # Y is fixed during the X phase: cache the column norms once.
    y_denoms = np.einsum("ij,ij->j", y, y, out=scratch.denoms)

    def update_rows(_: int, span: slice) -> None:
        sf = s_forward[span]
        sb = s_backward[span]
        mu_f = scratch.vec_n[span]
        mu_b = scratch.vec_n2[span]
        update = scratch.update[span]
        for l in range(half):
            denom = y_denoms[l]
            if denom <= _EPS_DENOM:
                continue
            y_col = y[:, l]
            np.dot(sf, y_col, out=mu_f)
            mu_f /= denom
            np.dot(sb, y_col, out=mu_b)
            mu_b /= denom
            x_forward[span, l] -= mu_f
            x_backward[span, l] -= mu_b
            np.multiply(mu_f[:, None], y_col[None, :], out=update)
            np.subtract(sf, update, out=sf)
            np.multiply(mu_b[:, None], y_col[None, :], out=update)
            np.subtract(sb, update, out=sb)

    run_blocks(
        update_rows, partition_spans(n, n_threads), n_threads=n_threads, pool=pool
    )

    # X is fixed during the Y phase.
    x_denoms = np.einsum("ij,ij->j", x_forward, x_forward, out=scratch.denoms)
    x_denoms += np.einsum("ij,ij->j", x_backward, x_backward, out=scratch.denoms2)

    def update_columns(_: int, span: slice) -> None:
        sf = s_forward[:, span]
        sb = s_backward[:, span]
        mu_y = scratch.vec_d[span]
        tmp = scratch.vec_d2[span]
        update = scratch.update[:, span]
        for l in range(half):
            denom = x_denoms[l]
            if denom <= _EPS_DENOM:
                continue
            xf_col = x_forward[:, l]
            xb_col = x_backward[:, l]
            np.dot(xf_col, sf, out=mu_y)
            np.dot(xb_col, sb, out=tmp)
            mu_y += tmp
            mu_y /= denom
            y[span, l] -= mu_y
            np.multiply(xf_col[:, None], mu_y[None, :], out=update)
            np.subtract(sf, update, out=sf)
            np.multiply(xb_col[:, None], mu_y[None, :], out=update)
            np.subtract(sb, update, out=sb)

    run_blocks(
        update_columns, partition_spans(d, n_threads), n_threads=n_threads, pool=pool
    )


def ccd_sweep_blocked_parallel(
    state: "InitState",
    scratch: CCDScratch,
    *,
    n_threads: int,
    pool: "WorkerPool | None" = None,
) -> None:
    """Parallel blocked CCD sweep: rank-``B`` GEMMs on disjoint spans.

    The block Gram pseudo-inverses depend only on the factor held fixed
    during each phase, so they are computed once up front and shared by
    all workers; each worker then runs pure GEMM + subtract on its span's
    slice of the scratch buffers.
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    n = x_forward.shape[0]
    d = y.shape[0]
    half = y.shape[1]
    blocks = _block_ranges(half, scratch.block_size)

    ginvs = [
        _gram_pinv(y[:, start:stop].T @ y[:, start:stop]) for start, stop in blocks
    ]

    def update_rows(_: int, span: slice) -> None:
        sf = s_forward[span]
        sb = s_backward[span]
        update = scratch.update[span]
        for (start, stop), ginv in zip(blocks, ginvs):
            bb = stop - start
            yb = y[:, start:stop]
            coef = scratch.coef_n[span, :bb]
            mu = scratch.mu_n[span, :bb]
            for x_half, s_half in ((x_forward, sf), (x_backward, sb)):
                np.matmul(s_half, yb, out=coef)
                np.matmul(coef, ginv, out=mu)
                x_half[span, start:stop] -= mu
                np.matmul(mu, yb.T, out=update)
                np.subtract(s_half, update, out=s_half)

    run_blocks(
        update_rows, partition_spans(n, n_threads), n_threads=n_threads, pool=pool
    )

    ginvs = [
        _gram_pinv(
            x_forward[:, start:stop].T @ x_forward[:, start:stop]
            + x_backward[:, start:stop].T @ x_backward[:, start:stop]
        )
        for start, stop in blocks
    ]

    def update_columns(_: int, span: slice) -> None:
        sf = s_forward[:, span]
        sb = s_backward[:, span]
        update = scratch.update[:, span]
        for (start, stop), ginv in zip(blocks, ginvs):
            bb = stop - start
            xfb = x_forward[:, start:stop]
            xbb = x_backward[:, start:stop]
            coef = scratch.coef_d[:bb, span]
            coef2 = scratch.coef_d2[:bb, span]
            mu = scratch.mu_d[:bb, span]
            np.matmul(xfb.T, sf, out=coef)
            np.matmul(xbb.T, sb, out=coef2)
            coef += coef2
            np.matmul(ginv, coef, out=mu)
            y[span, start:stop] -= mu.T
            np.matmul(xfb, mu, out=update)
            np.subtract(sf, update, out=sf)
            np.matmul(xbb, mu, out=update)
            np.subtract(sb, update, out=sb)

    run_blocks(
        update_columns, partition_spans(d, n_threads), n_threads=n_threads, pool=pool
    )
