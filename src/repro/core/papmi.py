"""PAPMI — parallel forward/backward affinity approximation (Algorithm 6).

The attribute set R is partitioned into ``nb`` blocks; thread ``i`` runs the
APMI recurrence on its column block of ``Rr`` / ``Rc``.  Because the blocks
are disjoint column slices, concatenating the per-thread results reproduces
the serial matrices exactly (Lemma 4.1) — verified in tests.

Each block runs the shared ping-pong propagation kernel
(:func:`repro.core.kernels.propagate_recurrence`), so a block's hop loop
reuses two preallocated buffers instead of allocating per hop.  Pass a
persistent :class:`repro.parallel.pool.WorkerPool` via ``pool=`` to avoid
spinning up a fresh thread pool for the call (``PANE.fit`` does).
"""

from __future__ import annotations

import numpy as np

from repro.core.affinity import (
    AffinityPair,
    _affinity_from_probabilities,
    iterations_for_epsilon,
)
from repro.core.kernels import propagate_recurrence
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import normalized_attribute_matrices, random_walk_matrix
from repro.parallel.executor import run_blocks
from repro.parallel.partitioning import partition_indices
from repro.parallel.pool import WorkerPool
from repro.utils.validation import check_probability


def papmi(
    graph: AttributedGraph,
    alpha: float = 0.5,
    epsilon: float = 0.015,
    *,
    n_threads: int = 2,
    n_iterations: int | None = None,
    dangling: str = "zero",
    pool: WorkerPool | None = None,
) -> AffinityPair:
    """Parallel APMI over ``n_threads`` attribute blocks (Algorithm 6).

    Returns the same :class:`AffinityPair` as :func:`repro.core.affinity.apmi`
    run with identical parameters (Lemma 4.1).
    """
    alpha = check_probability(alpha, "alpha")
    t = n_iterations if n_iterations is not None else iterations_for_epsilon(epsilon, alpha)
    transition = random_walk_matrix(graph, dangling=dangling)
    transition_t = transition.T.tocsr()
    rr, rc = normalized_attribute_matrices(graph)
    rr_dense = rr.toarray()
    rc_dense = rc.toarray()

    attr_blocks = partition_indices(graph.n_attributes, n_threads)

    def propagate(_: int, columns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Fancy indexing copies the column block, so the propagation
        # kernel may scale it in place as its α·Rr restart term.
        pf = propagate_recurrence(transition, rr_dense[:, columns], alpha, t)
        pb = propagate_recurrence(transition_t, rc_dense[:, columns], alpha, t)
        return pf, pb

    results = run_blocks(propagate, attr_blocks, n_threads=n_threads, pool=pool)
    pf = np.concatenate([r[0] for r in results], axis=1)
    pb = np.concatenate([r[1] for r in results], axis=1)

    # The SPMI normalization (Alg. 6 lines 9-13) is applied blockwise over
    # node partitions in the paper; the operation is row/column-local, so a
    # single vectorized call is bit-identical.
    forward, backward = _affinity_from_probabilities(pf, pb)
    return AffinityPair(
        forward=forward,
        backward=backward,
        forward_probabilities=pf,
        backward_probabilities=pb,
    )
