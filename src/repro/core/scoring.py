"""Prediction scores derived from PANE embeddings (Eqs. 21 and 22).

- Attribute inference: ``p(v, r) = Xf[v]·Y[r] + Xb[v]·Y[r] ≈ F[v,r] + B[v,r]``.
- Link prediction:   ``p(u, v) = Σ_r (Xf[u]·Y[r])(Xb[v]·Y[r])
                               = Xf[u] (YᵀY) Xb[v]ᵀ ≈ Σ_r F[u,r]·B[v,r]``,
  evaluated through the small ``k/2 × k/2`` Gram matrix ``YᵀY`` so scoring a
  batch of candidate edges never materializes an ``n × d`` matrix.

For undirected graphs use ``p(u, v) + p(v, u)`` (handled by the
link-prediction task).
"""

from __future__ import annotations

import numpy as np


def attribute_scores(
    x_forward: np.ndarray,
    x_backward: np.ndarray,
    y: np.ndarray,
    nodes: np.ndarray,
    attributes: np.ndarray,
) -> np.ndarray:
    """Eq. (21) scores for the node/attribute index pairs given.

    ``nodes`` and ``attributes`` are equal-length integer arrays; returns
    one score per pair.
    """
    nodes = np.asarray(nodes)
    attributes = np.asarray(attributes)
    if nodes.shape != attributes.shape:
        raise ValueError("nodes and attributes must have equal shapes")
    y_rows = y[attributes]
    forward = np.einsum("ij,ij->i", x_forward[nodes], y_rows)
    backward = np.einsum("ij,ij->i", x_backward[nodes], y_rows)
    return forward + backward


def node_attribute_score_matrix(
    x_forward: np.ndarray,
    x_backward: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Dense ``n × d`` matrix of Eq. (21) scores (small graphs only)."""
    return (x_forward + x_backward) @ y.T


def link_scores(
    x_forward: np.ndarray,
    x_backward: np.ndarray,
    y: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Eq. (22) scores for directed candidate edges ``sources → targets``."""
    sources = np.asarray(sources)
    targets = np.asarray(targets)
    if sources.shape != targets.shape:
        raise ValueError("sources and targets must have equal shapes")
    gram = y.T @ y  # k/2 × k/2
    left = x_forward[sources] @ gram
    return np.einsum("ij,ij->i", left, x_backward[targets])


def link_score_matrix(
    x_forward: np.ndarray,
    x_backward: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Dense ``n × n`` matrix of Eq. (22) scores (small graphs only)."""
    gram = y.T @ y
    return x_forward @ gram @ x_backward.T
