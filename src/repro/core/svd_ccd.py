"""SVDCCD — joint factorization by cyclic coordinate descent (Algorithm 4).

One CCD sweep fixes ``Y`` and updates every entry of ``Xf`` and ``Xb``
(Eqs. 13–14, 16), then fixes ``Xf, Xb`` and updates every entry of ``Y``
(Eqs. 15, 17), maintaining the residuals ``Sf = Xf Yᵀ − F′`` and
``Sb = Xb Yᵀ − B′`` incrementally (Eqs. 18–20).

Vectorization note (exactness, not approximation): updating ``Xf[v, l]``
touches only ``Sf[v]``, so distinct rows never interact — performing
coordinate ``l`` for *all* rows at once, then ``l+1``, yields bit-identical
results to the paper's row-by-row order.  The same holds for ``Y`` columns.
``ccd_sweep_reference`` below is the literal per-entry transcription used
by tests to verify this equivalence.

``PSVDCCD`` (Algorithm 8) runs the same sweeps with rows/columns split
into blocks handled by a thread pool; since blocks are disjoint the result
matches the serial sweep exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy_init import InitState
from repro.parallel.executor import run_blocks
from repro.parallel.partitioning import partition_indices

#: Denominators below this are treated as a dead coordinate and skipped.
_EPS_DENOM = 1e-300


def ccd_sweep(state: InitState) -> None:
    """One full in-place CCD sweep (lines 3–14 of Alg. 4), vectorized."""
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    half = y.shape[1]

    for l in range(half):
        y_col = y[:, l]
        denom = float(y_col @ y_col)
        if denom <= _EPS_DENOM:
            continue
        mu_f = (s_forward @ y_col) / denom  # Eq. 16, all rows at once
        mu_b = (s_backward @ y_col) / denom
        x_forward[:, l] -= mu_f  # Eq. 13
        x_backward[:, l] -= mu_b  # Eq. 14
        s_forward -= np.outer(mu_f, y_col)  # Eq. 18
        s_backward -= np.outer(mu_b, y_col)  # Eq. 19

    for l in range(half):
        xf_col = x_forward[:, l]
        xb_col = x_backward[:, l]
        denom = float(xf_col @ xf_col + xb_col @ xb_col)
        if denom <= _EPS_DENOM:
            continue
        mu_y = (xf_col @ s_forward + xb_col @ s_backward) / denom  # Eq. 17
        y[:, l] -= mu_y  # Eq. 15
        s_forward -= np.outer(xf_col, mu_y)  # Eq. 20
        s_backward -= np.outer(xb_col, mu_y)


def ccd_sweep_reference(state: InitState) -> None:
    """Literal per-entry CCD sweep, exactly as printed in Algorithm 4.

    O(n·d·k) Python-loop implementation kept as the ground truth for the
    vectorization-equivalence test; never used in production paths.
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    n, half = x_forward.shape
    d = y.shape[0]

    for vi in range(n):
        for l in range(half):
            y_col = y[:, l]
            denom = float(y_col @ y_col)
            if denom <= _EPS_DENOM:
                continue
            mu_f = float(s_forward[vi] @ y_col) / denom
            mu_b = float(s_backward[vi] @ y_col) / denom
            x_forward[vi, l] -= mu_f
            x_backward[vi, l] -= mu_b
            s_forward[vi] -= mu_f * y_col
            s_backward[vi] -= mu_b * y_col

    for rj in range(d):
        for l in range(half):
            xf_col = x_forward[:, l]
            xb_col = x_backward[:, l]
            denom = float(xf_col @ xf_col + xb_col @ xb_col)
            if denom <= _EPS_DENOM:
                continue
            mu_y = (
                float(xf_col @ s_forward[:, rj]) + float(xb_col @ s_backward[:, rj])
            ) / denom
            y[rj, l] -= mu_y
            s_forward[:, rj] -= mu_y * xf_col
            s_backward[:, rj] -= mu_y * xb_col


def ccd_sweep_parallel(state: InitState, *, n_threads: int = 2) -> None:
    """One CCD sweep with blockwise parallel X and Y phases (Alg. 8 body).

    Row blocks of ``Xf/Xb`` (and their ``Sf/Sb`` rows) are updated by
    separate threads while ``Y`` is fixed, then column blocks of ``Y``
    while ``Xf/Xb`` are fixed.  Blocks are disjoint, so the result equals
    the serial sweep.
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    n = x_forward.shape[0]
    d = y.shape[0]
    half = y.shape[1]

    # Pre-compute the column norms once; Y is fixed during the X phase.
    y_denoms = np.einsum("ij,ij->j", y, y)

    def update_rows(_: int, rows: np.ndarray) -> None:
        sf = s_forward[rows]
        sb = s_backward[rows]
        for l in range(half):
            denom = y_denoms[l]
            if denom <= _EPS_DENOM:
                continue
            y_col = y[:, l]
            mu_f = (sf @ y_col) / denom
            mu_b = (sb @ y_col) / denom
            x_forward[rows, l] -= mu_f
            x_backward[rows, l] -= mu_b
            sf -= np.outer(mu_f, y_col)
            sb -= np.outer(mu_b, y_col)
        s_forward[rows] = sf
        s_backward[rows] = sb

    run_blocks(update_rows, partition_indices(n, n_threads), n_threads=n_threads)

    # X is fixed during the Y phase.
    x_denoms = (
        np.einsum("ij,ij->j", x_forward, x_forward)
        + np.einsum("ij,ij->j", x_backward, x_backward)
    )

    def update_columns(_: int, columns: np.ndarray) -> None:
        sf = s_forward[:, columns]
        sb = s_backward[:, columns]
        for l in range(half):
            denom = x_denoms[l]
            if denom <= _EPS_DENOM:
                continue
            xf_col = x_forward[:, l]
            xb_col = x_backward[:, l]
            mu_y = (xf_col @ sf + xb_col @ sb) / denom
            y[columns, l] -= mu_y
            sf -= np.outer(xf_col, mu_y)
            sb -= np.outer(xb_col, mu_y)
        s_forward[:, columns] = sf
        s_backward[:, columns] = sb

    run_blocks(update_columns, partition_indices(d, n_threads), n_threads=n_threads)


def objective_value(
    forward: np.ndarray,
    backward: np.ndarray,
    state: InitState,
) -> float:
    """The joint objective O of Eq. (4) at the current embeddings."""
    residual_f = state.x_forward @ state.y.T - forward
    residual_b = state.x_backward @ state.y.T - backward
    return float(np.sum(residual_f**2) + np.sum(residual_b**2))


def cached_objective(state: InitState) -> float:
    """Objective O of Eq. (4) read off the maintained residual caches.

    Equals :func:`objective_value` (up to incremental-update drift) at
    O(n·d) cost with no matrix product.
    """
    return float(np.sum(state.s_forward**2) + np.sum(state.s_backward**2))


def refine(
    state: InitState,
    n_sweeps: int,
    *,
    n_threads: int = 1,
    tolerance: float | None = None,
) -> InitState:
    """Run up to ``n_sweeps`` CCD sweeps in place and return the state.

    ``n_threads > 1`` selects the parallel sweep (PSVDCCD); both variants
    compute identical updates.  With ``tolerance`` set, sweeps stop early
    once the relative objective improvement of a sweep falls below it.
    """
    previous = cached_objective(state) if tolerance is not None else None
    for _ in range(n_sweeps):
        if n_threads > 1:
            ccd_sweep_parallel(state, n_threads=n_threads)
        else:
            ccd_sweep(state)
        if tolerance is not None:
            current = cached_objective(state)
            if previous > 0 and (previous - current) / previous < tolerance:
                break
            previous = current
    return state


def refine_tracked(
    state: InitState,
    n_sweeps: int,
    *,
    n_threads: int = 1,
) -> tuple[InitState, list[float]]:
    """Like :func:`refine`, also returning the objective after every sweep.

    The first history entry is the pre-refinement objective, so the list
    has ``n_sweeps + 1`` entries.
    """
    history = [cached_objective(state)]
    for _ in range(n_sweeps):
        if n_threads > 1:
            ccd_sweep_parallel(state, n_threads=n_threads)
        else:
            ccd_sweep(state)
        history.append(cached_objective(state))
    return state, history
