"""SVDCCD — joint factorization by cyclic coordinate descent (Algorithm 4).

One CCD sweep fixes ``Y`` and updates every entry of ``Xf`` and ``Xb``
(Eqs. 13–14, 16), then fixes ``Xf, Xb`` and updates every entry of ``Y``
(Eqs. 15, 17), maintaining the residuals ``Sf = Xf Yᵀ − F′`` and
``Sb = Xb Yᵀ − B′`` incrementally (Eqs. 18–20).

Vectorization note (exactness, not approximation): updating ``Xf[v, l]``
touches only ``Sf[v]``, so distinct rows never interact — performing
coordinate ``l`` for *all* rows at once, then ``l+1``, yields bit-identical
results to the paper's row-by-row order.  The same holds for ``Y`` columns.
``ccd_sweep_reference`` below is the literal per-entry transcription used
by tests to verify this equivalence.

Kernel layer: the sweeps execute through the allocation-free blocked
kernels in :mod:`repro.core.kernels`.  ``block_size=1`` (the default) is
the exact path, bit-identical to the seed per-coordinate updates;
``block_size=B>1`` groups coordinates into blocks and replaces ``2·k``
rank-1 residual updates per sweep with ``2·k/B`` rank-``B`` GEMMs.  Each
block is minimized exactly (block Gauss–Seidel via the block Gram
pseudo-inverse), so the objective stays monotonically non-increasing for
every ``B`` — the variants differ only in update order, trading the exact
coordinate sequence for cache-resident GEMM throughput.

``PSVDCCD`` (Algorithm 8) runs the same sweeps with rows/columns split
into blocks handled by a thread pool; since blocks are disjoint the result
matches the serial sweep exactly.  Pass a persistent
:class:`repro.parallel.pool.WorkerPool` to amortize thread start-up
across sweeps (``PANE.fit`` does).
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy_init import InitState
from repro.core.kernels import (
    _EPS_DENOM,
    CCDScratch,
    ccd_sweep_blocked,
    ccd_sweep_blocked_parallel,
    ccd_sweep_exact,
    ccd_sweep_exact_parallel,
)
from repro.parallel.pool import WorkerPool


def _scratch_for(
    state: InitState, block_size: int, scratch: CCDScratch | None
) -> CCDScratch:
    """Reuse ``scratch`` when compatible, else size a fresh one."""
    if (
        scratch is not None
        and scratch.fits(state)
        and scratch.block_size == max(1, min(block_size, state.y.shape[1]))
    ):
        return scratch
    return CCDScratch.for_state(state, block_size)


def ccd_sweep(
    state: InitState,
    *,
    block_size: int = 1,
    scratch: CCDScratch | None = None,
) -> None:
    """One full in-place CCD sweep (lines 3–14 of Alg. 4), vectorized.

    ``block_size=1`` is bit-identical to the seed implementation;
    ``block_size>1`` selects the rank-``B`` GEMM variant.  Pass a
    :class:`CCDScratch` to reuse buffers across sweeps (``refine`` does).
    """
    scratch = _scratch_for(state, block_size, scratch)
    if scratch.block_size == 1:
        ccd_sweep_exact(state, scratch)
    else:
        ccd_sweep_blocked(state, scratch)


def ccd_sweep_reference(state: InitState) -> None:
    """Literal per-entry CCD sweep, exactly as printed in Algorithm 4.

    O(n·d·k) Python-loop implementation kept as the ground truth for the
    vectorization-equivalence test; never used in production paths.
    """
    x_forward, x_backward, y = state.x_forward, state.x_backward, state.y
    s_forward, s_backward = state.s_forward, state.s_backward
    n, half = x_forward.shape
    d = y.shape[0]

    for vi in range(n):
        for l in range(half):
            y_col = y[:, l]
            denom = float(y_col @ y_col)
            if denom <= _EPS_DENOM:
                continue
            mu_f = float(s_forward[vi] @ y_col) / denom
            mu_b = float(s_backward[vi] @ y_col) / denom
            x_forward[vi, l] -= mu_f
            x_backward[vi, l] -= mu_b
            s_forward[vi] -= mu_f * y_col
            s_backward[vi] -= mu_b * y_col

    for rj in range(d):
        for l in range(half):
            xf_col = x_forward[:, l]
            xb_col = x_backward[:, l]
            denom = float(xf_col @ xf_col + xb_col @ xb_col)
            if denom <= _EPS_DENOM:
                continue
            mu_y = (
                float(xf_col @ s_forward[:, rj]) + float(xb_col @ s_backward[:, rj])
            ) / denom
            y[rj, l] -= mu_y
            s_forward[:, rj] -= mu_y * xf_col
            s_backward[:, rj] -= mu_y * xb_col


def ccd_sweep_parallel(
    state: InitState,
    *,
    n_threads: int = 2,
    block_size: int = 1,
    scratch: CCDScratch | None = None,
    pool: WorkerPool | None = None,
) -> None:
    """One CCD sweep with blockwise parallel X and Y phases (Alg. 8 body).

    Row blocks of ``Xf/Xb`` (and their ``Sf/Sb`` rows) are updated by
    separate threads while ``Y`` is fixed, then column blocks of ``Y``
    while ``Xf/Xb`` are fixed.  Blocks are disjoint, so the result equals
    the serial sweep.  ``pool`` reuses a persistent
    :class:`~repro.parallel.pool.WorkerPool` instead of spinning up two
    ephemeral pools per sweep.
    """
    scratch = _scratch_for(state, block_size, scratch)
    if scratch.block_size == 1:
        ccd_sweep_exact_parallel(state, scratch, n_threads=n_threads, pool=pool)
    else:
        ccd_sweep_blocked_parallel(state, scratch, n_threads=n_threads, pool=pool)


def objective_value(
    forward: np.ndarray,
    backward: np.ndarray,
    state: InitState,
) -> float:
    """The joint objective O of Eq. (4) at the current embeddings."""
    residual_f = state.x_forward @ state.y.T - forward
    residual_b = state.x_backward @ state.y.T - backward
    return float(np.sum(residual_f**2) + np.sum(residual_b**2))


def cached_objective(state: InitState) -> float:
    """Objective O of Eq. (4) read off the maintained residual caches.

    Equals :func:`objective_value` (up to incremental-update drift) at
    O(n·d) cost with no matrix product.
    """
    return float(np.sum(state.s_forward**2) + np.sum(state.s_backward**2))


def refine(
    state: InitState,
    n_sweeps: int,
    *,
    n_threads: int = 1,
    tolerance: float | None = None,
    block_size: int = 1,
    pool: WorkerPool | None = None,
) -> InitState:
    """Run up to ``n_sweeps`` CCD sweeps in place and return the state.

    ``n_threads > 1`` selects the parallel sweep (PSVDCCD); both variants
    compute identical updates.  ``block_size > 1`` selects the rank-``B``
    GEMM kernel (see the module docstring).  With ``tolerance`` set,
    sweeps stop early once the relative objective improvement of a sweep
    falls below it.  Scratch buffers are allocated once and reused by
    every sweep; ``pool`` threads a persistent worker pool through the
    parallel sweeps.
    """
    if n_sweeps <= 0:
        return state
    scratch = CCDScratch.for_state(state, block_size)
    previous = cached_objective(state) if tolerance is not None else None
    for _ in range(n_sweeps):
        if n_threads > 1:
            ccd_sweep_parallel(
                state,
                n_threads=n_threads,
                block_size=block_size,
                scratch=scratch,
                pool=pool,
            )
        else:
            ccd_sweep(state, block_size=block_size, scratch=scratch)
        if tolerance is not None:
            current = cached_objective(state)
            if previous > 0 and (previous - current) / previous < tolerance:
                break
            previous = current
    return state


def refine_tracked(
    state: InitState,
    n_sweeps: int,
    *,
    n_threads: int = 1,
    block_size: int = 1,
    pool: WorkerPool | None = None,
) -> tuple[InitState, list[float]]:
    """Like :func:`refine`, also returning the objective after every sweep.

    The first history entry is the pre-refinement objective, so the list
    has ``n_sweeps + 1`` entries.
    """
    history = [cached_objective(state)]
    scratch = CCDScratch.for_state(state, block_size) if n_sweeps > 0 else None
    for _ in range(n_sweeps):
        if n_threads > 1:
            ccd_sweep_parallel(
                state,
                n_threads=n_threads,
                block_size=block_size,
                scratch=scratch,
                pool=pool,
            )
        else:
            ccd_sweep(state, block_size=block_size, scratch=scratch)
        history.append(cached_objective(state))
    return state, history
