"""Memory-lean sparse PANE variant.

The reference pipeline stores the affinity matrices densely — O(n·d)
memory, which is exactly why the paper's MAG run needs a 1TB-RAM server
(59M × 2000 doubles ≈ 0.9TB).  This module provides the natural
memory-constrained alternative:

- ``apmi_sparse`` runs the Eq. (6) propagation on scipy sparse matrices
  (through the shared kernel
  :func:`repro.core.kernels.propagate_recurrence_sparse`), pruning
  entries below ``prune_threshold`` after every hop, so memory tracks
  the *support* of the affinity rather than ``n·d``;
- ``SparsePANE`` embeds from the pruned matrices with GreedyInit only
  (rank-``k/2`` SVD of sparse ``F′`` + ``Xb = B′Y``), skipping the CCD
  refinement whose residual caches are inherently dense.

Figures 7/8 of the paper show the greedy seed alone already lands close
to the converged quality, which is what makes this trade-off usable; the
accompanying tests quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.affinity import iterations_for_epsilon
from repro.core.config import PANEConfig
from repro.core.kernels import propagate_recurrence_sparse, prune_sparse
from repro.core.pane import PANEEmbedding
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import normalized_attribute_matrices, random_walk_matrix
from repro.utils.sparse import column_normalize, row_normalize
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class SparseAffinityPair:
    """Pruned sparse affinity matrices and their nonzero budgets."""

    forward: sp.csr_matrix
    backward: sp.csr_matrix
    prune_threshold: float

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the dense n×d layout."""
        n, d = self.forward.shape
        return (self.forward.nnz + self.backward.nnz) / (2.0 * n * d)


# Pruning lives in the shared kernel layer; re-exported for back-compat.
_prune = prune_sparse


def apmi_sparse(
    graph: AttributedGraph,
    alpha: float = 0.5,
    epsilon: float = 0.015,
    *,
    prune_threshold: float = 1e-4,
    n_iterations: int | None = None,
    dangling: str = "zero",
) -> SparseAffinityPair:
    """APMI with per-hop pruning, fully sparse (Alg. 2 on CSR matrices).

    ``prune_threshold`` bounds the extra entrywise error added on top of
    Lemma 3.1's ϵ bound by roughly ``t · threshold`` (each hop drops at
    most ``threshold`` of probability mass per entry).
    """
    alpha = check_probability(alpha, "alpha")
    if prune_threshold < 0:
        raise ValueError("prune_threshold must be non-negative")
    t = (
        n_iterations
        if n_iterations is not None
        else iterations_for_epsilon(epsilon, alpha)
    )
    transition = random_walk_matrix(graph, dangling=dangling)
    transition_t = transition.T.tocsr()
    rr, rc = normalized_attribute_matrices(graph)

    # Same Eq. (6) recurrence as APMI/PAPMI, via the shared sparse kernel.
    pf = propagate_recurrence_sparse(
        transition, (alpha * rr).tocsr(), alpha, t, prune_threshold=prune_threshold
    )
    pb = propagate_recurrence_sparse(
        transition_t, (alpha * rc).tocsr(), alpha, t, prune_threshold=prune_threshold
    )

    n, d = graph.n_nodes, graph.n_attributes
    pf_hat = column_normalize(pf)
    pb_hat = row_normalize(pb)
    # log2(1 + n·p) applied to nonzeros only: zero entries map to zero,
    # so the SPMI transform preserves sparsity exactly.
    forward = pf_hat.tocsr()
    forward.data = np.log2(1.0 + n * forward.data)
    backward = pb_hat.tocsr()
    backward.data = np.log2(1.0 + d * backward.data)
    return SparseAffinityPair(
        forward=forward, backward=backward, prune_threshold=prune_threshold
    )


class SparsePANE:
    """Init-only PANE on pruned sparse affinities (no dense intermediates).

    Produces the same embedding family as ``PANE(ccd_iterations=0)`` but
    never materializes an ``n × d`` dense matrix.  Quality sits at the
    GreedyInit point of the Figs. 7/8 frontier.
    """

    def __init__(
        self,
        k: int = 128,
        alpha: float = 0.5,
        epsilon: float = 0.015,
        *,
        prune_threshold: float = 1e-4,
        svd_power_iterations: int = 5,
        seed: int | None = 0,
    ) -> None:
        self.config = PANEConfig(
            k=k,
            alpha=alpha,
            epsilon=epsilon,
            svd_power_iterations=svd_power_iterations,
            seed=seed,
        )
        self.prune_threshold = prune_threshold

    def fit(self, graph: AttributedGraph) -> PANEEmbedding:
        """Embed ``graph`` sparsely; returns a standard PANEEmbedding."""
        cfg = self.config
        pair = apmi_sparse(
            graph,
            cfg.alpha,
            cfg.epsilon,
            prune_threshold=self.prune_threshold,
            dangling=cfg.dangling,
        )
        half = cfg.half_dim
        u, sigma, v = randsvd(
            pair.forward, half, cfg.svd_power_iterations, seed=cfg.seed
        )
        x_forward = u * sigma
        y = v
        x_backward = np.asarray(pair.backward @ y)
        return PANEEmbedding(
            x_forward=x_forward, x_backward=x_backward, y=y, config=cfg
        )
