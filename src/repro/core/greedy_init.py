"""Greedy seeding of the CCD optimizer (Algorithms 3 and 7).

``GreedyInit`` decomposes ``F′ ≈ U Σ Vᵀ`` with RandSVD and seeds

- ``Xf = U Σ`` and ``Y = V``   (so ``Xf Yᵀ ≈ F′`` immediately), and
- ``Xb = B′ Y``                (because ``V`` is near-unitary,
  ``Xb Yᵀ ≈ B′ Y Yᵀ ≈ B′``),

plus the residual caches ``Sf = Xf Yᵀ − F′`` and ``Sb = Xb Yᵀ − B′``
maintained incrementally by the CCD sweeps.

``SMGreedyInit`` is the split-merge parallel variant: each thread SVDs a
row block of ``F′``; the per-block right factors are stacked and SVD'd
again to produce a single shared ``Y`` (Lemma 4.2 shows the limit with
exact SVDs reproduces ``Xf Yᵀ = F′`` and unitary ``Y``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.randsvd import randsvd
from repro.parallel.executor import run_blocks
from repro.parallel.partitioning import partition_indices
from repro.parallel.pool import WorkerPool


@dataclass
class InitState:
    """Embeddings plus residual caches handed from init to the CCD sweeps."""

    x_forward: np.ndarray  # Xf, n × k/2
    x_backward: np.ndarray  # Xb, n × k/2
    y: np.ndarray  # Y, d × k/2
    s_forward: np.ndarray  # Sf = Xf Yᵀ − F′, n × d
    s_backward: np.ndarray  # Sb = Xb Yᵀ − B′, n × d


def greedy_init(
    forward: np.ndarray,
    backward: np.ndarray,
    k: int,
    *,
    svd_iterations: int = 5,
    seed: int | np.random.Generator | None = None,
    exact: bool = False,
) -> InitState:
    """GreedyInit (Algorithm 3).

    Parameters
    ----------
    forward, backward:
        The approximate affinity matrices ``F′``, ``B′`` (dense ``n × d``).
    k:
        Space budget; embeddings have ``k/2`` columns.
    svd_iterations:
        Power iterations for RandSVD.
    seed:
        RNG for RandSVD.
    exact:
        Use a full SVD (for the Lemma 4.2 limit tests).
    """
    half = k // 2
    u, sigma, v = randsvd(
        forward, half, svd_iterations, seed=seed, exact=exact
    )
    x_forward = u * sigma  # UΣ without materializing the diagonal
    y = v
    x_backward = backward @ y
    s_forward = x_forward @ y.T - forward
    s_backward = x_backward @ y.T - backward
    return InitState(x_forward, x_backward, y, s_forward, s_backward)


def sm_greedy_init(
    forward: np.ndarray,
    backward: np.ndarray,
    k: int,
    *,
    n_threads: int = 2,
    svd_iterations: int = 5,
    seed: int | np.random.Generator | None = None,
    exact: bool = False,
    pool: WorkerPool | None = None,
) -> InitState:
    """SMGreedyInit — split-merge parallel initialization (Algorithm 7).

    Row blocks of ``F′`` are factorized independently (lines 1–3); the
    stacked right factors are re-factorized to merge them into one shared
    attribute basis ``Y`` (lines 4–6); finally per-block embeddings and
    residuals are assembled (lines 7–11).  ``pool`` reuses a persistent
    :class:`~repro.parallel.pool.WorkerPool` for both parallel stages.
    """
    n, _ = forward.shape
    half = k // 2
    # Every row block must have at least k/2 rows for its rank-k/2 SVD to
    # exist; clip the block count on small graphs rather than failing.
    n_threads = max(1, min(n_threads, n // half if n >= half else 1))
    node_blocks = partition_indices(n, n_threads)

    def factor_block(i: int, rows: np.ndarray):
        u_block, sigma, v_block = randsvd(
            forward[rows], half, svd_iterations,
            seed=None if seed is None else seed + i,
            exact=exact,
        )
        return u_block * sigma, v_block

    factored = run_blocks(factor_block, node_blocks, n_threads=n_threads, pool=pool)
    u_blocks = [u for u, _ in factored]
    # V ← [V1 · · · Vnb]ᵀ  ∈ R^{(nb·k/2) × d}
    stacked = np.vstack([v.T for _, v in factored])
    phi, sigma, y = randsvd(
        stacked, half, svd_iterations,
        seed=None if seed is None else seed + len(factored),
        exact=exact,
    )
    w = phi * sigma  # (nb·k/2) × k/2

    x_forward = np.empty((n, half))
    x_backward = np.empty((n, half))
    s_forward = np.empty_like(forward)
    s_backward = np.empty_like(backward)

    def assemble(i: int, rows: np.ndarray) -> None:
        w_block = w[i * half : (i + 1) * half]
        x_forward[rows] = u_blocks[i] @ w_block
        x_backward[rows] = backward[rows] @ y
        s_forward[rows] = x_forward[rows] @ y.T - forward[rows]
        s_backward[rows] = x_backward[rows] @ y.T - backward[rows]

    run_blocks(assemble, node_blocks, n_threads=n_threads, pool=pool)
    return InitState(x_forward, x_backward, y, s_forward, s_backward)


def random_init(
    forward: np.ndarray,
    backward: np.ndarray,
    k: int,
    *,
    seed: int | np.random.Generator | None = None,
    scale: float = 0.1,
) -> InitState:
    """Random Gaussian initialization — the PANE-R ablation (Sec. 5.7)."""
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(seed)
    n, d = forward.shape
    half = k // 2
    x_forward = rng.normal(scale=scale, size=(n, half))
    x_backward = rng.normal(scale=scale, size=(n, half))
    y = rng.normal(scale=scale, size=(d, half))
    s_forward = x_forward @ y.T - forward
    s_backward = x_backward @ y.T - backward
    return InitState(x_forward, x_backward, y, s_forward, s_backward)
