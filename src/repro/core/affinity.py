"""Forward/backward affinity matrices: exact definition and APMI (Alg. 2).

The forward affinity ``F[v, r]`` is the shifted PMI of the probability that
a forward walk from ``v`` yields attribute ``r`` (Eq. 2); backward affinity
``B[v, r]`` is the SPMI of a backward walk from ``r`` ending at ``v``
(Eq. 3).  APMI computes ϵ-accurate approximations ``F′, B′`` without
sampling walks, via the truncated power series of Eq. (6) evaluated with
the recurrence of Alg. 2 lines 3–5 in O(m·d·t) time.

``log`` is base 2 throughout: Lemma 3.1 inverts the affinities as
``2^F′ − 1``, and base-2 reproduces the paper's Table 2 running-example
values (e.g. the v6/r3 entry 2.05).

The Eq. (6) recurrence itself runs through the shared ping-pong kernel
:func:`repro.core.kernels.propagate_recurrence`, which reuses two
preallocated ``n × d`` buffers per direction instead of allocating a
fresh matrix every hop (APMI, PAPMI, and the sparse variant all share
this one propagation helper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.kernels import propagate_recurrence
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import normalized_attribute_matrices, random_walk_matrix
from repro.utils.sparse import dense_column_normalize, dense_row_normalize
from repro.utils.validation import check_probability


def iterations_for_epsilon(epsilon: float, alpha: float) -> int:
    """The truncation length ``t = ⌈log ϵ / log(1 − α)⌉ − 1`` (Alg. 1 line 1).

    Guaranteed at least 1 so a single propagation step always happens;
    matches the paper's statement that (α = 0.5) ϵ ∈ [0.001, 0.25] maps to
    t ∈ [9, 1].
    """
    epsilon = check_probability(epsilon, "epsilon")
    alpha = check_probability(alpha, "alpha")
    t = math.ceil(math.log(epsilon) / math.log(1.0 - alpha)) - 1
    return max(1, t)


@dataclass(frozen=True)
class AffinityPair:
    """The pair of affinity matrices produced by APMI.

    Attributes
    ----------
    forward:
        ``F′`` — dense ``n × d`` approximate forward affinity.
    backward:
        ``B′`` — dense ``n × d`` approximate backward affinity.
    forward_probabilities / backward_probabilities:
        The un-normalized truncated walk probabilities ``P_f^(t)`` /
        ``P_b^(t)`` (kept for the Lemma 3.1 accuracy checks).
    """

    forward: np.ndarray
    backward: np.ndarray
    forward_probabilities: np.ndarray
    backward_probabilities: np.ndarray


def _affinity_from_probabilities(
    pf: np.ndarray, pb: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the SPMI normalization of Eq. (7) to walk-probability matrices."""
    n, d = pf.shape
    pf_hat = dense_column_normalize(pf)
    pb_hat = dense_row_normalize(pb)
    forward = np.log2(1.0 + n * pf_hat)
    backward = np.log2(1.0 + d * pb_hat)
    return forward, backward


def apmi(
    graph: AttributedGraph,
    alpha: float = 0.5,
    epsilon: float = 0.015,
    *,
    n_iterations: int | None = None,
    dangling: str = "zero",
) -> AffinityPair:
    """Approximate forward/backward affinity matrices (Algorithm 2).

    Parameters
    ----------
    graph:
        The attributed network.
    alpha:
        Random-walk stopping probability.
    epsilon:
        Truncation error threshold; ignored if ``n_iterations`` is given.
    n_iterations:
        Explicit iteration count ``t`` (overrides ``epsilon``).
    dangling:
        Dangling-node policy for the random-walk matrix.

    Returns
    -------
    AffinityPair with ``F′``, ``B′`` and the underlying probabilities.
    """
    alpha = check_probability(alpha, "alpha")
    t = n_iterations if n_iterations is not None else iterations_for_epsilon(epsilon, alpha)
    transition = random_walk_matrix(graph, dangling=dangling)
    rr, rc = normalized_attribute_matrices(graph)

    # Initializing with α·Rr makes the recurrence compute Eq. (6)'s
    # truncated series exactly (the printed Alg. 2 seeds with Rr, which
    # overweights the final hop and would break Lemma 3.1's lower bound).
    pf = propagate_recurrence(transition, rr.toarray(), alpha, t)
    pb = propagate_recurrence(transition.T.tocsr(), rc.toarray(), alpha, t)

    forward, backward = _affinity_from_probabilities(pf, pb)
    return AffinityPair(
        forward=forward,
        backward=backward,
        forward_probabilities=pf,
        backward_probabilities=pb,
    )


def exact_affinity(
    graph: AttributedGraph,
    alpha: float = 0.5,
    *,
    tolerance: float = 1e-12,
    max_terms: int = 10_000,
    dangling: str = "zero",
) -> AffinityPair:
    """Exact affinity matrices via the full power series of Eq. (5).

    Sums ``α Σ (1−α)^ℓ Pℓ Rr`` until the scalar tail drops below
    ``tolerance``.  O(m·d) per term — use on small graphs (tests, Table 2).
    """
    alpha = check_probability(alpha, "alpha")
    transition = random_walk_matrix(graph, dangling=dangling)
    rr, rc = normalized_attribute_matrices(graph)
    term_f = rr.toarray()
    term_b = rc.toarray()
    pf = alpha * term_f
    pb = alpha * term_b
    transition_t = transition.T.tocsr()
    weight = alpha
    for _ in range(max_terms):
        weight *= 1.0 - alpha
        if weight < tolerance:
            break
        term_f = np.asarray(transition @ term_f)
        term_b = np.asarray(transition_t @ term_b)
        pf += weight * term_f
        pb += weight * term_b

    forward, backward = _affinity_from_probabilities(pf, pb)
    return AffinityPair(
        forward=forward,
        backward=backward,
        forward_probabilities=pf,
        backward_probabilities=pb,
    )
