"""PANE core: affinity approximation, joint factorization, and the facade."""

from repro.core.affinity import apmi, exact_affinity, iterations_for_epsilon
from repro.core.config import PANEConfig
from repro.core.pane import PANE, PANEEmbedding
from repro.core.randsvd import randsvd
from repro.core.scoring import (
    attribute_scores,
    link_scores,
    node_attribute_score_matrix,
)

__all__ = [
    "PANE",
    "PANEConfig",
    "PANEEmbedding",
    "apmi",
    "exact_affinity",
    "iterations_for_epsilon",
    "randsvd",
    "attribute_scores",
    "link_scores",
    "node_attribute_score_matrix",
]
