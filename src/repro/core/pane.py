"""The PANE estimator (Algorithms 1 and 5) and its embedding result object.

Usage::

    from repro import PANE, attributed_sbm

    graph = attributed_sbm(seed=0)
    embedding = PANE(k=64, n_threads=4).fit(graph)
    X = embedding.node_embeddings()          # n × k feature matrix
    embedding.attribute_embeddings           # d × k/2

``n_threads=1`` runs the single-thread pipeline (APMI → GreedyInit →
SVDCCD); ``n_threads>1`` the parallel one (PAPMI → SMGreedyInit →
PSVDCCD).  The two differ only through the split-merge SVD, whose small
accuracy cost the paper quantifies in Sec. 5.5–5.6.

Performance notes: ``fit`` acquires one persistent
:class:`~repro.parallel.pool.WorkerPool` and threads it through every
parallel phase (the seed tore down two thread pools per CCD sweep), and
``ccd_block_size`` selects the CCD kernel — ``1`` for the exact
bit-identical path, ``B > 1`` for rank-``B`` GEMM sweeps (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path

import numpy as np

from repro.core.affinity import AffinityPair, apmi, iterations_for_epsilon
from repro.core.config import PANEConfig
from repro.core.greedy_init import greedy_init, random_init, sm_greedy_init
from repro.core.papmi import papmi
from repro.core.scoring import attribute_scores, link_scores
from repro.core.svd_ccd import objective_value, refine
from repro.graph.attributed_graph import AttributedGraph
from repro.parallel.pool import WorkerPool
from repro.utils.fs import atomic_write
from repro.utils.timing import Timer
from repro.utils.validation import check_embedding_dim


@dataclass
class PANEEmbedding:
    """Trained PANE embeddings.

    Attributes
    ----------
    x_forward / x_backward:
        ``n × k/2`` forward / backward node embeddings.
    y:
        ``d × k/2`` attribute embeddings.
    config:
        The configuration that produced this embedding.
    timings:
        Per-phase wall-clock seconds (``affinity``, ``init``, ``ccd``).
    objective:
        Final value of the Eq. (4) objective, if it was computed.
    """

    x_forward: np.ndarray
    x_backward: np.ndarray
    y: np.ndarray
    config: PANEConfig
    timings: dict[str, float] = field(default_factory=dict)
    objective: float | None = None

    @property
    def n_nodes(self) -> int:
        return self.x_forward.shape[0]

    @property
    def n_attributes(self) -> int:
        return self.y.shape[0]

    @property
    def attribute_embeddings(self) -> np.ndarray:
        """Alias for ``y`` matching the paper's terminology."""
        return self.y

    def node_embeddings(self, *, normalize: bool = True) -> np.ndarray:
        """Concatenated ``[Xf ‖ Xb]`` feature matrix for downstream tasks.

        With ``normalize=True`` each half is L2-normalized row-wise first,
        the preprocessing the paper uses for node classification (Sec. 5.4).
        """
        forward, backward = self.x_forward, self.x_backward
        if normalize:
            forward = _l2_normalize_rows(forward)
            backward = _l2_normalize_rows(backward)
        return np.hstack([forward, backward])

    def score_attributes(self, nodes: np.ndarray, attributes: np.ndarray) -> np.ndarray:
        """Eq. (21) attribute-inference scores for index pairs."""
        return attribute_scores(
            self.x_forward, self.x_backward, self.y, nodes, attributes
        )

    def score_links(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Eq. (22) directed link-prediction scores for index pairs."""
        return link_scores(self.x_forward, self.x_backward, self.y, sources, targets)

    def save(self, path: str | Path) -> None:
        """Persist the embedding to ``.npz``.

        The full :class:`PANEConfig` is serialized (as JSON) so the
        round trip preserves every hyper-parameter — including
        ``n_threads``, ``ccd_iterations``, ``svd_power_iterations``,
        ``dangling``, and ``ccd_block_size``.  The legacy scalar keys
        are written too so older readers keep working.

        The archive is written to a temporary file in the destination
        directory and moved into place with ``os.replace``, so a crash
        mid-save can never leave a truncated archive at ``path`` (the
        same atomic-publish semantics as
        :meth:`repro.serving.store.EmbeddingStore.publish`).
        """
        path = Path(path)
        if path.suffix != ".npz":
            # np.savez appends ".npz" when missing; do the same up front so
            # the atomic rename targets the file a reader will load.
            path = Path(str(path) + ".npz")
        atomic_write(
            path,
            lambda handle: np.savez_compressed(
                handle,
                x_forward=self.x_forward,
                x_backward=self.x_backward,
                y=self.y,
                config_json=np.array(json.dumps(asdict(self.config))),
                k=np.array(self.config.k),
                alpha=np.array(self.config.alpha),
                epsilon=np.array(self.config.epsilon),
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "PANEEmbedding":
        """Load an embedding previously written by :meth:`save`.

        Archives written before the full-config format (no
        ``config_json`` key) fall back to the legacy scalar fields with
        defaults for the rest.
        """
        with np.load(Path(path)) as archive:
            if "config_json" in archive.files:
                stored = json.loads(str(archive["config_json"]))
                # Ignore fields added by newer versions so their archives
                # still load (mirrors the legacy keys kept for old readers).
                known = {f.name for f in dataclass_fields(PANEConfig)}
                config = PANEConfig(
                    **{key: value for key, value in stored.items() if key in known}
                )
            else:
                config = PANEConfig(
                    k=int(archive["k"]),
                    alpha=float(archive["alpha"]),
                    epsilon=float(archive["epsilon"]),
                )
            return cls(
                x_forward=archive["x_forward"],
                x_backward=archive["x_backward"],
                y=archive["y"],
                config=config,
            )


def _l2_normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.where(norms == 0, 1.0, norms)


class PANE:
    """Scalable attributed network embedding (Yang et al., VLDB 2020).

    Parameters mirror :class:`PANEConfig`; pass either a config object or
    keyword overrides.

    Examples
    --------
    >>> from repro.graph import attributed_sbm
    >>> graph = attributed_sbm(n_nodes=120, n_attributes=32, seed=1)
    >>> emb = PANE(k=16, seed=0).fit(graph)
    >>> emb.node_embeddings().shape
    (120, 16)
    """

    def __init__(
        self,
        k: int = 128,
        alpha: float = 0.5,
        epsilon: float = 0.015,
        *,
        n_threads: int = 1,
        ccd_iterations: int | None = None,
        svd_power_iterations: int = 5,
        dangling: str = "zero",
        seed: int | None = 0,
        ccd_block_size: int = 1,
        init: str = "greedy",
        config: PANEConfig | None = None,
    ) -> None:
        if config is None:
            config = PANEConfig(
                k=k,
                alpha=alpha,
                epsilon=epsilon,
                n_threads=n_threads,
                ccd_iterations=ccd_iterations,
                svd_power_iterations=svd_power_iterations,
                dangling=dangling,
                seed=seed,
                ccd_block_size=ccd_block_size,
            )
        if init not in ("greedy", "random"):
            raise ValueError(f"init must be 'greedy' or 'random', got {init!r}")
        self.config = config
        self.init = init

    # ------------------------------------------------------------------
    def compute_affinity(
        self, graph: AttributedGraph, *, pool: WorkerPool | None = None
    ) -> AffinityPair:
        """Phase 1: approximate affinity matrices (APMI or PAPMI)."""
        cfg = self.config
        if cfg.n_threads > 1:
            return papmi(
                graph,
                cfg.alpha,
                cfg.epsilon,
                n_threads=cfg.n_threads,
                dangling=cfg.dangling,
                pool=pool,
            )
        return apmi(graph, cfg.alpha, cfg.epsilon, dangling=cfg.dangling)

    def fit(self, graph: AttributedGraph, *, compute_objective: bool = False) -> PANEEmbedding:
        """Train embeddings for ``graph`` (Algorithm 1 / Algorithm 5).

        Parameters
        ----------
        graph:
            The attributed network.
        compute_objective:
            Also evaluate the final Eq. (4) objective (one extra ``n × d``
            product; off by default).
        """
        cfg = self.config
        check_embedding_dim(cfg.k, graph.n_nodes, graph.n_attributes)
        t = iterations_for_epsilon(cfg.epsilon, cfg.alpha)
        n_sweeps = cfg.ccd_iterations if cfg.ccd_iterations is not None else t
        timer = Timer()

        # One persistent pool for every parallel phase: PAPMI, the two
        # SMGreedyInit stages, and all PSVDCCD sweeps share its threads
        # instead of each creating (and tearing down) their own pools.
        pool = WorkerPool(cfg.n_threads) if cfg.n_threads > 1 else None
        try:
            with timer.measure("affinity"):
                affinity = self.compute_affinity(graph, pool=pool)

            with timer.measure("init"):
                if self.init == "random":
                    state = random_init(
                        affinity.forward, affinity.backward, cfg.k, seed=cfg.seed
                    )
                elif cfg.n_threads > 1:
                    state = sm_greedy_init(
                        affinity.forward,
                        affinity.backward,
                        cfg.k,
                        n_threads=cfg.n_threads,
                        svd_iterations=cfg.svd_power_iterations,
                        seed=cfg.seed,
                        pool=pool,
                    )
                else:
                    state = greedy_init(
                        affinity.forward,
                        affinity.backward,
                        cfg.k,
                        svd_iterations=cfg.svd_power_iterations,
                        seed=cfg.seed,
                    )

            with timer.measure("ccd"):
                refine(
                    state,
                    n_sweeps,
                    n_threads=cfg.n_threads,
                    block_size=cfg.ccd_block_size,
                    pool=pool,
                )
        finally:
            if pool is not None:
                pool.close()

        objective = None
        if compute_objective:
            objective = objective_value(affinity.forward, affinity.backward, state)

        return PANEEmbedding(
            x_forward=state.x_forward,
            x_backward=state.x_backward,
            y=state.y,
            config=cfg,
            timings=dict(timer.laps),
            objective=objective,
        )
