"""Configuration object for PANE (all paper hyper-parameters in one place)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_probability


@dataclass(frozen=True)
class PANEConfig:
    """Hyper-parameters of the PANE algorithm (defaults from Sec. 5.1).

    Attributes
    ----------
    k:
        Space budget: each node gets two ``k/2`` vectors, each attribute one.
    alpha:
        Random-walk stopping probability α ∈ (0, 1).
    epsilon:
        Truncation error threshold ϵ; sets the iteration count
        ``t = ⌈log ϵ / log(1 − α)⌉ − 1`` used by both APMI and CCD.
    n_threads:
        ``nb`` — 1 selects the single-thread algorithms (Alg. 1–4),
        larger values the parallel ones (Alg. 5–8).
    ccd_iterations:
        Override for the number of CCD refinement sweeps (``None`` = use
        the same ``t`` as APMI, as in Alg. 1/4).
    svd_power_iterations:
        Power-iteration count for the randomized SVD.
    dangling:
        Dangling-node policy for ``P`` (see ``random_walk_matrix``).
    seed:
        Seed for the randomized SVD test matrices.
    ccd_block_size:
        Coordinate block size ``B`` for the CCD kernel.  ``1`` (default)
        runs the exact per-coordinate updates of Alg. 4, bit-identical to
        the reference implementation; ``B > 1`` selects the blocked
        rank-``B`` GEMM kernel (block Gauss–Seidel — same monotone
        objective, different update order; see ``repro.core.kernels``).
    """

    k: int = 128
    alpha: float = 0.5
    epsilon: float = 0.015
    n_threads: int = 1
    ccd_iterations: int | None = None
    svd_power_iterations: int = 5
    dangling: str = "zero"
    seed: int | None = 0
    ccd_block_size: int = 1

    def __post_init__(self) -> None:
        if self.k <= 0 or self.k % 2 != 0:
            raise ValueError(f"k must be a positive even integer, got {self.k}")
        check_probability(self.alpha, "alpha")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        if self.ccd_iterations is not None and self.ccd_iterations < 0:
            raise ValueError("ccd_iterations must be non-negative")
        if self.svd_power_iterations < 0:
            raise ValueError("svd_power_iterations must be non-negative")
        if self.ccd_block_size < 1:
            raise ValueError(
                f"ccd_block_size must be >= 1, got {self.ccd_block_size}"
            )

    @property
    def half_dim(self) -> int:
        """The per-vector dimensionality ``k/2``."""
        return self.k // 2
