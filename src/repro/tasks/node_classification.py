"""Node classification (paper Sec. 5.4).

Protocol: embed the full graph once, then for each training percentage in
{0.1 … 0.9} train a one-vs-rest linear classifier (the paper uses a linear
SVM) on the concatenated, per-half L2-normalized ``[Xf ‖ Xb]`` features and
report micro-/macro-F1 on the held-out nodes, averaged over repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.tasks.linear_model import OneVsRestClassifier
from repro.tasks.metrics import macro_f1, micro_f1
from repro.tasks.splits import split_nodes
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class NodeClassificationResult:
    """Mean micro/macro F1 per training fraction."""

    train_fractions: tuple[float, ...]
    micro: tuple[float, ...]
    macro: tuple[float, ...]

    def as_series(self) -> dict[float, float]:
        """``{train_fraction: micro_f1}`` — the series plotted in Fig. 2."""
        return dict(zip(self.train_fractions, self.micro))


@dataclass
class NodeClassificationTask:
    """Reusable node-classification evaluation.

    Parameters
    ----------
    graph:
        A labeled attributed network.
    train_fractions:
        Training percentages to sweep (paper: 0.1 … 0.9).
    n_repeats:
        Resampling repeats averaged per fraction (paper: 5).
    classifier:
        ``"svm"`` (paper) or ``"logistic"``.
    seed:
        Split RNG seed.
    """

    graph: AttributedGraph
    train_fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    n_repeats: int = 3
    classifier: str = "svm"
    regularization: float = 1.0
    seed: int | None = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.graph.labels is None:
            raise ValueError("node classification requires a labeled graph")
        self._rng = ensure_rng(self.seed)

    def evaluate(self, model) -> NodeClassificationResult:
        """Fit ``model`` on the full graph and sweep training fractions."""
        embedding = model.fit(self.graph)
        return self.evaluate_features(self._features_of(embedding))

    def evaluate_features(self, features: np.ndarray) -> NodeClassificationResult:
        """Run the classification sweep on a precomputed feature matrix."""
        labels = self.graph.labels
        micro_means: list[float] = []
        macro_means: list[float] = []
        for fraction in self.train_fractions:
            micros: list[float] = []
            macros: list[float] = []
            for _ in range(self.n_repeats):
                train_idx, test_idx = split_nodes(
                    self.graph.n_nodes, fraction, seed=self._rng
                )
                clf = OneVsRestClassifier(
                    self.classifier, regularization=self.regularization
                )
                clf.fit(features[train_idx], labels[train_idx])
                if self.graph.is_multilabel:
                    cardinality = labels[test_idx].sum(axis=1).astype(np.int64)
                    predicted = clf.predict(
                        features[test_idx], cardinality=cardinality
                    )
                else:
                    predicted = clf.predict(features[test_idx])
                micros.append(micro_f1(labels[test_idx], predicted))
                macros.append(
                    macro_f1(labels[test_idx], predicted, self.graph.n_labels)
                )
            micro_means.append(float(np.mean(micros)))
            macro_means.append(float(np.mean(macros)))
        return NodeClassificationResult(
            train_fractions=tuple(self.train_fractions),
            micro=tuple(micro_means),
            macro=tuple(macro_means),
        )

    @staticmethod
    def _features_of(embedding) -> np.ndarray:
        if hasattr(embedding, "node_embeddings"):
            return embedding.node_embeddings()
        if hasattr(embedding, "node_features"):
            return embedding.node_features()
        raise TypeError(
            f"{type(embedding).__name__} exposes neither node_embeddings() "
            "nor node_features()"
        )
