"""Linear classifiers trained from scratch (the paper uses a linear SVM).

No sklearn is available in this environment, so we provide:

- :class:`LogisticRegression` — binary logistic regression with L2
  regularization, optimized with scipy's L-BFGS on the exact gradient;
- :class:`LinearSVM` — L2-regularized squared-hinge SVM, same optimizer;
- :class:`OneVsRestClassifier` — multi-class / multi-label wrapper that
  trains one binary model per label and predicts by argmax (single-label)
  or by top-``cardinality`` scores per node (multi-label, the standard
  protocol for multi-label node classification benchmarks).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize


class _BinaryLinearModel:
    """Shared machinery: weights, bias, L-BFGS fit over a loss closure."""

    def __init__(self, regularization: float = 1.0, max_iter: int = 200) -> None:
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.regularization = float(regularization)
        self.max_iter = int(max_iter)
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def _loss_grad(self, params, features, targets):  # pragma: no cover - abstract
        raise NotImplementedError

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "_BinaryLinearModel":
        """Fit on ``features`` (n × p) and binary ``labels`` (0/1)."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.where(np.asarray(labels).ravel() > 0, 1.0, -1.0)
        if features.shape[0] != targets.size:
            raise ValueError("features and labels disagree on sample count")
        p = features.shape[1]
        x0 = np.zeros(p + 1)
        result = minimize(
            self._loss_grad,
            x0,
            args=(features, targets),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights = result.x[:p]
        self.bias = float(result.x[p])
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the separating hyperplane."""
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary 0/1 predictions."""
        return (self.decision_function(features) > 0).astype(np.int64)


class LogisticRegression(_BinaryLinearModel):
    """L2-regularized binary logistic regression."""

    def _loss_grad(self, params, features, targets):
        p = features.shape[1]
        w, b = params[:p], params[p]
        margins = targets * (features @ w + b)
        # log(1 + exp(-m)) computed stably
        loss = np.logaddexp(0.0, -margins).sum()
        loss += 0.5 * self.regularization * (w @ w)
        sigma = 1.0 / (1.0 + np.exp(np.clip(margins, -500, 500)))
        coef = -targets * sigma
        grad_w = features.T @ coef + self.regularization * w
        grad_b = coef.sum()
        return loss, np.concatenate([grad_w, [grad_b]])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) per sample."""
        scores = self.decision_function(features)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))


class LinearSVM(_BinaryLinearModel):
    """L2-regularized squared-hinge linear SVM (smooth, L-BFGS-friendly)."""

    def _loss_grad(self, params, features, targets):
        p = features.shape[1]
        w, b = params[:p], params[p]
        margins = targets * (features @ w + b)
        slack = np.maximum(0.0, 1.0 - margins)
        loss = (slack**2).sum() + 0.5 * self.regularization * (w @ w)
        coef = -2.0 * slack * targets
        grad_w = features.T @ coef + self.regularization * w
        grad_b = coef.sum()
        return loss, np.concatenate([grad_w, [grad_b]])


class OneVsRestClassifier:
    """One-vs-rest reduction for multi-class and multi-label problems.

    Parameters
    ----------
    base:
        ``"svm"`` or ``"logistic"``.
    regularization, max_iter:
        Forwarded to the binary models.
    """

    def __init__(
        self,
        base: str = "svm",
        *,
        regularization: float = 1.0,
        max_iter: int = 200,
    ) -> None:
        if base not in ("svm", "logistic"):
            raise ValueError(f"base must be 'svm' or 'logistic', got {base!r}")
        self.base = base
        self.regularization = regularization
        self.max_iter = max_iter
        self.models: list[_BinaryLinearModel] = []
        self.multilabel = False
        self.n_labels = 0

    def _make_model(self) -> _BinaryLinearModel:
        cls = LinearSVM if self.base == "svm" else LogisticRegression
        return cls(regularization=self.regularization, max_iter=self.max_iter)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsRestClassifier":
        """Fit per-label binary models.

        ``labels`` is a 1-D class-id vector or a 2-D binary indicator
        matrix; the shape is remembered so ``predict`` matches it.
        """
        labels = np.asarray(labels)
        self.multilabel = labels.ndim == 2
        self.n_labels = labels.shape[1] if self.multilabel else int(labels.max()) + 1
        self.models = []
        for label in range(self.n_labels):
            binary = labels[:, label] if self.multilabel else (labels == label)
            model = self._make_model()
            if binary.sum() == 0 or binary.sum() == binary.size:
                # degenerate label: constant decision at the majority value
                model.weights = np.zeros(features.shape[1])
                model.bias = 1.0 if binary.sum() == binary.size else -1.0
            else:
                model.fit(features, binary.astype(np.int64))
            self.models.append(model)
        return self

    def decision_matrix(self, features: np.ndarray) -> np.ndarray:
        """``n × n_labels`` matrix of per-label scores."""
        if not self.models:
            raise RuntimeError("classifier is not fitted")
        return np.column_stack(
            [model.decision_function(features) for model in self.models]
        )

    def predict(self, features: np.ndarray, *, cardinality: np.ndarray | None = None):
        """Predict labels.

        Single-label: argmax over per-label scores.  Multi-label: mark the
        top-``cardinality[i]`` scoring labels of sample ``i`` (defaults to
        1), the usual protocol when the true label count is known.
        """
        scores = self.decision_matrix(features)
        if not self.multilabel:
            return scores.argmax(axis=1)
        n = scores.shape[0]
        if cardinality is None:
            cardinality = np.ones(n, dtype=np.int64)
        cardinality = np.minimum(np.maximum(cardinality, 1), self.n_labels)
        predictions = np.zeros_like(scores, dtype=np.int64)
        order = np.argsort(-scores, axis=1)
        for i in range(n):
            predictions[i, order[i, : cardinality[i]]] = 1
        return predictions
