"""Evaluation tasks: attribute inference, link prediction, node classification."""

from repro.tasks.attribute_inference import AttributeInferenceTask
from repro.tasks.clustering import (
    NodeClusteringTask,
    kmeans,
    normalized_mutual_information,
)
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.metrics import (
    area_under_roc,
    average_precision,
    f1_scores,
    macro_f1,
    micro_f1,
)
from repro.tasks.node_classification import NodeClassificationTask

__all__ = [
    "AttributeInferenceTask",
    "LinkPredictionTask",
    "NodeClassificationTask",
    "NodeClusteringTask",
    "kmeans",
    "normalized_mutual_information",
    "area_under_roc",
    "average_precision",
    "f1_scores",
    "macro_f1",
    "micro_f1",
]
