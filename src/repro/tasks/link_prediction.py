"""Link prediction (paper Sec. 5.3).

Protocol: remove 30% of edges, embed the residual graph, then rank removed
edges against an equal number of sampled non-edges.  PANE scores a directed
candidate ``(u, v)`` with Eq. (22); on undirected graphs the score is
``p(u, v) + p(v, u)``.  Baselines without directed embeddings fall back to
their own ``score_links``; the harness follows the paper in letting each
competitor use its best scoring function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.tasks.metrics import area_under_roc, average_precision
from repro.tasks.splits import EdgeSplit, split_edges


@dataclass(frozen=True)
class LinkPredictionResult:
    """AUC / AP of one method on one split."""

    auc: float
    ap: float

    def as_row(self) -> dict[str, float]:
        return {"AUC": self.auc, "AP": self.ap}


class LinkPredictionTask:
    """Reusable link-prediction evaluation on a fixed edge split."""

    def __init__(
        self,
        graph: AttributedGraph,
        *,
        test_fraction: float = 0.3,
        seed: int | None = 0,
    ) -> None:
        self.graph = graph
        self.split: EdgeSplit = split_edges(graph, test_fraction, seed=seed)

    def evaluate(self, model) -> LinkPredictionResult:
        """Fit ``model`` on the residual graph and score test pairs."""
        embedding = model.fit(self.split.residual_graph)
        return self.evaluate_embedding(embedding)

    def evaluate_embedding(self, embedding) -> LinkPredictionResult:
        """Score an already-fitted embedding against this task's test pairs."""
        sources, targets = self.split.test_sources, self.split.test_targets
        scores = embedding.score_links(sources, targets)
        if not self.graph.directed:
            scores = scores + embedding.score_links(targets, sources)
        return LinkPredictionResult(
            auc=area_under_roc(self.split.test_labels, scores),
            ap=average_precision(self.split.test_labels, scores),
        )
