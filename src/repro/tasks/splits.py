"""Train/test split utilities for the three evaluation protocols (Sec. 5).

- :func:`split_attribute_entries` — 80/20 split of the nonzero entries of
  the attribute matrix R, plus sampled negative pairs (attribute inference).
- :func:`split_edges` — remove a fraction of edges to form a residual
  graph, plus an equal number of non-edges as negatives (link prediction).
- :func:`split_nodes` — a stratified-free random node split for
  classification at a given training percentage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class AttributeSplit:
    """Output of :func:`split_attribute_entries`.

    ``train_graph`` has the test associations removed from R; the test set
    pairs positives (held-out entries) with uniformly sampled negative
    (node, attribute) pairs that are nonzero nowhere in R.
    """

    train_graph: AttributedGraph
    test_nodes: np.ndarray
    test_attributes: np.ndarray
    test_labels: np.ndarray  # 1 for held-out true entries, 0 for negatives


@dataclass(frozen=True)
class EdgeSplit:
    """Output of :func:`split_edges` (residual graph + labeled edge pairs)."""

    residual_graph: AttributedGraph
    test_sources: np.ndarray
    test_targets: np.ndarray
    test_labels: np.ndarray


def _sample_negative_pairs(
    rng: np.random.Generator,
    occupied: sp.csr_matrix,
    count: int,
    *,
    forbid_diagonal: bool = False,
    max_tries: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` (row, col) pairs that are zero in ``occupied``."""
    n_rows, n_cols = occupied.shape
    occupied = occupied.tocsr()
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    needed = count
    for _ in range(max_tries):
        if needed <= 0:
            break
        cand_rows = rng.integers(0, n_rows, size=2 * needed + 8)
        cand_cols = rng.integers(0, n_cols, size=cand_rows.size)
        values = np.asarray(
            occupied[cand_rows, cand_cols]
        ).ravel()
        keep = values == 0
        if forbid_diagonal:
            keep &= cand_rows != cand_cols
        cand_rows, cand_cols = cand_rows[keep], cand_cols[keep]
        take = min(needed, cand_rows.size)
        rows_out.append(cand_rows[:take])
        cols_out.append(cand_cols[:take])
        needed -= take
    if needed > 0:
        raise RuntimeError(
            "could not sample enough negative pairs; matrix too dense"
        )
    return np.concatenate(rows_out), np.concatenate(cols_out)


def split_attribute_entries(
    graph: AttributedGraph,
    test_fraction: float = 0.2,
    *,
    seed: int | np.random.Generator | None = None,
) -> AttributeSplit:
    """Hold out ``test_fraction`` of R's nonzeros (the paper's 20%).

    Negative pairs are sampled uniformly from the zero entries of the
    *full* attribute matrix, one per positive.
    """
    test_fraction = check_probability(test_fraction, "test_fraction")
    rng = ensure_rng(seed)
    coo = graph.attributes.tocoo()
    n_entries = coo.nnz
    if n_entries < 5:
        raise ValueError("attribute matrix too sparse to split")
    n_test = max(1, int(round(test_fraction * n_entries)))
    perm = rng.permutation(n_entries)
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]

    train_matrix = sp.csr_matrix(
        (coo.data[train_idx], (coo.row[train_idx], coo.col[train_idx])),
        shape=graph.attributes.shape,
    )
    pos_rows, pos_cols = coo.row[test_idx], coo.col[test_idx]
    neg_rows, neg_cols = _sample_negative_pairs(rng, graph.attributes, n_test)

    return AttributeSplit(
        train_graph=graph.with_attributes(train_matrix),
        test_nodes=np.concatenate([pos_rows, neg_rows]),
        test_attributes=np.concatenate([pos_cols, neg_cols]),
        test_labels=np.concatenate(
            [np.ones(n_test, dtype=np.int64), np.zeros(n_test, dtype=np.int64)]
        ),
    )


def split_edges(
    graph: AttributedGraph,
    test_fraction: float = 0.3,
    *,
    seed: int | np.random.Generator | None = None,
) -> EdgeSplit:
    """Remove ``test_fraction`` of edges (the paper's 30%) for link prediction.

    For undirected graphs the split operates on the upper-triangle edge set
    so both directions of an undirected edge leave the residual graph
    together.  Negatives are non-edges sampled uniformly, one per positive.
    """
    test_fraction = check_probability(test_fraction, "test_fraction")
    rng = ensure_rng(seed)
    adjacency = graph.adjacency.tocoo()
    if graph.directed:
        rows, cols, data = adjacency.row, adjacency.col, adjacency.data
    else:
        upper = adjacency.row < adjacency.col
        rows, cols, data = (
            adjacency.row[upper],
            adjacency.col[upper],
            adjacency.data[upper],
        )
    n_edges = rows.size
    if n_edges < 5:
        raise ValueError("graph too small to split edges")
    n_test = max(1, int(round(test_fraction * n_edges)))
    perm = rng.permutation(n_edges)
    test_idx, train_idx = perm[:n_test], perm[n_test:]

    residual = sp.csr_matrix(
        (data[train_idx], (rows[train_idx], cols[train_idx])),
        shape=graph.adjacency.shape,
    )
    if not graph.directed:
        residual = residual.maximum(residual.T)

    pos_src, pos_dst = rows[test_idx], cols[test_idx]
    neg_src, neg_dst = _sample_negative_pairs(
        rng, graph.adjacency, n_test, forbid_diagonal=True
    )
    return EdgeSplit(
        residual_graph=graph.with_adjacency(residual),
        test_sources=np.concatenate([pos_src, neg_src]),
        test_targets=np.concatenate([pos_dst, neg_dst]),
        test_labels=np.concatenate(
            [np.ones(n_test, dtype=np.int64), np.zeros(n_test, dtype=np.int64)]
        ),
    )


def split_nodes(
    n_nodes: int,
    train_fraction: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random (train_indices, test_indices) split of ``range(n_nodes)``."""
    train_fraction = check_probability(train_fraction, "train_fraction")
    rng = ensure_rng(seed)
    perm = rng.permutation(n_nodes)
    n_train = max(1, int(round(train_fraction * n_nodes)))
    n_train = min(n_train, n_nodes - 1)
    return perm[:n_train], perm[n_train:]
