"""Attribute inference (paper Sec. 5.2).

Protocol: hold out 20% of the nonzero attribute entries, train the
embedding on the remaining 80%, then rank held-out (node, attribute)
positives against an equal number of sampled negatives with the
Eq. (21) score.  Reported metrics: AUC and Average Precision.

Only models producing *attribute* embeddings can run this task (PANE and
CAN in the paper); the task checks for a ``score_attributes`` method on
the fitted embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.tasks.metrics import area_under_roc, average_precision
from repro.tasks.splits import AttributeSplit, split_attribute_entries


@dataclass(frozen=True)
class AttributeInferenceResult:
    """AUC / AP of one method on one split."""

    auc: float
    ap: float

    def as_row(self) -> dict[str, float]:
        return {"AUC": self.auc, "AP": self.ap}


class AttributeInferenceTask:
    """Reusable attribute-inference evaluation on a fixed split.

    Instantiating the task fixes the split (so all methods compare on
    identical data); ``evaluate`` runs one model.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        *,
        test_fraction: float = 0.2,
        seed: int | None = 0,
    ) -> None:
        self.graph = graph
        self.split: AttributeSplit = split_attribute_entries(
            graph, test_fraction, seed=seed
        )

    def evaluate(self, model) -> AttributeInferenceResult:
        """Fit ``model`` on the training graph and score the held-out pairs.

        ``model`` must expose ``fit(graph)`` returning an embedding with
        ``score_attributes(nodes, attributes)``.
        """
        embedding = model.fit(self.split.train_graph)
        if not hasattr(embedding, "score_attributes"):
            raise TypeError(
                f"{type(model).__name__} does not produce attribute embeddings; "
                "attribute inference is undefined for it"
            )
        scores = embedding.score_attributes(
            self.split.test_nodes, self.split.test_attributes
        )
        return self._score(scores)

    def evaluate_embedding(self, embedding) -> AttributeInferenceResult:
        """Score an already-fitted embedding (must match the training split)."""
        scores = embedding.score_attributes(
            self.split.test_nodes, self.split.test_attributes
        )
        return self._score(scores)

    def _score(self, scores: np.ndarray) -> AttributeInferenceResult:
        labels = self.split.test_labels
        return AttributeInferenceResult(
            auc=area_under_roc(labels, scores),
            ap=average_precision(labels, scores),
        )
