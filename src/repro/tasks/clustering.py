"""Node clustering on embeddings: k-means and NMI, from scratch.

Not one of the paper's three headline tasks, but a standard fourth use of
node embeddings and a useful extra quality probe for the ablation benches:
good PANE embeddings should recover the generator's communities without
any supervision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


def kmeans(
    features: np.ndarray,
    n_clusters: int,
    *,
    n_iterations: int = 50,
    n_restarts: int = 4,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, float]:
    """Lloyd's k-means with k-means++ seeding and restarts.

    Returns ``(assignments, inertia)`` of the best restart.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    rng = ensure_rng(seed)

    best_assignments: np.ndarray | None = None
    best_inertia = np.inf
    for _ in range(n_restarts):
        centers = _kmeans_pp_init(features, n_clusters, rng)
        assignments = np.zeros(n, dtype=np.int64)
        for _ in range(n_iterations):
            distances = _squared_distances(features, centers)
            new_assignments = distances.argmin(axis=1)
            if np.array_equal(new_assignments, assignments):
                assignments = new_assignments
                break
            assignments = new_assignments
            for cluster in range(n_clusters):
                members = features[assignments == cluster]
                if members.size:
                    centers[cluster] = members.mean(axis=0)
        inertia = float(
            _squared_distances(features, centers)[np.arange(n), assignments].sum()
        )
        if inertia < best_inertia:
            best_inertia = inertia
            best_assignments = assignments
    return best_assignments, best_inertia


def _kmeans_pp_init(
    features: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = features.shape[0]
    centers = np.empty((n_clusters, features.shape[1]))
    centers[0] = features[rng.integers(0, n)]
    closest = _squared_distances(features, centers[:1]).ravel()
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:
            centers[i] = features[rng.integers(0, n)]
            continue
        chosen = rng.choice(n, p=closest / total)
        centers[i] = features[chosen]
        closest = np.minimum(
            closest, _squared_distances(features, centers[i : i + 1]).ravel()
        )
    return centers


def _squared_distances(features: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """``n × k`` squared Euclidean distances."""
    cross = features @ centers.T
    f_norms = (features**2).sum(axis=1, keepdims=True)
    c_norms = (centers**2).sum(axis=1)
    return np.maximum(f_norms - 2 * cross + c_norms, 0.0)


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI between two integer labelings (arithmetic-mean normalization)."""
    labels_a = np.asarray(labels_a).ravel()
    labels_b = np.asarray(labels_b).ravel()
    if labels_a.shape != labels_b.shape:
        raise ValueError("labelings must have the same length")
    n = labels_a.size
    if n == 0:
        raise ValueError("empty labelings")

    _, a_idx = np.unique(labels_a, return_inverse=True)
    _, b_idx = np.unique(labels_b, return_inverse=True)
    contingency = np.zeros((a_idx.max() + 1, b_idx.max() + 1))
    np.add.at(contingency, (a_idx, b_idx), 1.0)

    joint = contingency / n
    marginal_a = joint.sum(axis=1)
    marginal_b = joint.sum(axis=0)
    outer = np.outer(marginal_a, marginal_b)
    nonzero = joint > 0
    mutual_info = float(
        (joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])).sum()
    )

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    h_a, h_b = entropy(marginal_a), entropy(marginal_b)
    if h_a == 0 and h_b == 0:
        return 1.0  # both labelings constant: identical partitions
    denominator = 0.5 * (h_a + h_b)
    if denominator == 0:
        return 0.0
    return mutual_info / denominator


@dataclass(frozen=True)
class ClusteringResult:
    """NMI and inertia of one clustering run."""

    nmi: float
    inertia: float


class NodeClusteringTask:
    """Cluster embeddings with k-means and score NMI against true labels."""

    def __init__(self, graph, *, seed: int | None = 0) -> None:
        if graph.labels is None or graph.is_multilabel:
            raise ValueError(
                "clustering evaluation needs single-label ground truth"
            )
        self.graph = graph
        self.seed = seed

    def evaluate(self, model) -> ClusteringResult:
        """Fit ``model`` on the graph and cluster its node features."""
        embedding = model.fit(self.graph)
        features = (
            embedding.node_embeddings()
            if hasattr(embedding, "node_embeddings")
            else embedding.node_features()
        )
        return self.evaluate_features(features)

    def evaluate_features(self, features: np.ndarray) -> ClusteringResult:
        assignments, inertia = kmeans(
            features, self.graph.n_labels, seed=self.seed
        )
        nmi = normalized_mutual_information(assignments, self.graph.labels)
        return ClusteringResult(nmi=nmi, inertia=inertia)
