"""Evaluation metrics implemented from first principles (no sklearn).

- :func:`area_under_roc` — rank-based AUC (probability a random positive
  outranks a random negative), with the standard tie correction.
- :func:`average_precision` — area under the precision-recall curve using
  the step-wise "AP" estimator the paper's tooling reports.
- :func:`micro_f1` / :func:`macro_f1` — multi-class and multi-label F1.
"""

from __future__ import annotations

import numpy as np


def _validate_binary(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same length")
    if y_true.size == 0:
        raise ValueError("empty input")
    unique = np.unique(y_true)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError("y_true must be binary (0/1)")
    return y_true.astype(np.int64), scores


def area_under_roc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """AUC via the rank statistic ``(Σ ranks⁺ − n⁺(n⁺+1)/2) / (n⁺ n⁻)``.

    Ties receive average ranks, matching the trapezoidal ROC definition.
    Raises ``ValueError`` when only one class is present.
    """
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both positive and negative examples")
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    ranks = np.empty(scores.size, dtype=np.float64)
    # average ranks over tied groups
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = float(ranks[y_true == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """AP = Σ_k (R_k − R_{k−1}) · P_k over the score-sorted ranking.

    Equivalent to sklearn's ``average_precision_score`` (step-wise PR
    integral, no interpolation).
    """
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        raise ValueError("AP requires at least one positive example")
    order = np.argsort(-scores, kind="mergesort")
    hits = y_true[order]
    cum_hits = np.cumsum(hits)
    precision = cum_hits / np.arange(1, hits.size + 1)
    return float((precision * hits).sum() / n_pos)


def f1_scores(
    y_true: np.ndarray, y_pred: np.ndarray, n_labels: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-label (precision, recall, f1) arrays.

    Accepts either 1-D integer class vectors or 2-D binary indicator
    matrices (multi-label).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.ndim == 1:
        if n_labels is None:
            n_labels = int(max(y_true.max(), y_pred.max())) + 1
        true_ind = np.zeros((y_true.size, n_labels), dtype=bool)
        pred_ind = np.zeros_like(true_ind)
        true_ind[np.arange(y_true.size), y_true] = True
        pred_ind[np.arange(y_pred.size), y_pred] = True
    else:
        true_ind = y_true.astype(bool)
        pred_ind = y_pred.astype(bool)
    tp = (true_ind & pred_ind).sum(axis=0).astype(np.float64)
    fp = (~true_ind & pred_ind).sum(axis=0).astype(np.float64)
    fn = (true_ind & ~pred_ind).sum(axis=0).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
        recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        f1 = np.where(
            precision + recall > 0,
            2 * precision * recall / (precision + recall),
            0.0,
        )
    return precision, recall, f1


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Micro-averaged F1: pooled TP/FP/FN across labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.ndim == 1:
        # single-label multi-class: micro-F1 equals plain accuracy
        return float(np.mean(y_true == y_pred))
    true_ind = y_true.astype(bool)
    pred_ind = y_pred.astype(bool)
    tp = float((true_ind & pred_ind).sum())
    fp = float((~true_ind & pred_ind).sum())
    fn = float((true_ind & ~pred_ind).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_labels: int | None = None) -> float:
    """Macro-averaged F1: unweighted mean of per-label F1."""
    _, _, f1 = f1_scores(y_true, y_pred, n_labels)
    return float(f1.mean())
