"""The 6-node running example of the paper (Fig. 1 / Table 2).

The figure shows nodes v1–v6 and attributes r1–r3.  The exact edge set is
not printed in the text, so we encode the topology that reproduces the
qualitative statements made about Table 2:

- v1 reaches r1 "via many different intermediate nodes v3, v4, v5";
- v1 and v2 carry no attributes (footnote 1 uses them as the degenerate
  case);
- v6 is strongly tied to r3;
- v5 owns r1 but not r3, yet its *forward* affinity to r3 exceeds that to
  r1 (because its out-edges lead toward r3's owners), which the paper uses
  to motivate keeping both forward and backward affinity.

All attribute weights are 1 and the default stopping probability is the
paper's α = 0.15.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph

#: Directed edges of the running example, 0-indexed (v1 → index 0).
RUNNING_EXAMPLE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 2),  # v1 -> v3
    (0, 3),  # v1 -> v4
    (0, 4),  # v1 -> v5
    (1, 2),  # v2 -> v3
    (2, 0),  # v3 -> v1
    (2, 1),  # v3 -> v2
    (2, 3),  # v3 -> v4
    (3, 2),  # v4 -> v3
    (3, 4),  # v4 -> v5
    (4, 3),  # v5 -> v4
    (4, 5),  # v5 -> v6
    (5, 2),  # v6 -> v3
    (5, 4),  # v6 -> v5
)

#: Node-attribute associations (node, attribute), all with weight 1.
RUNNING_EXAMPLE_ASSOCIATIONS: tuple[tuple[int, int], ...] = (
    (2, 0),  # v3 - r1
    (3, 0),  # v4 - r1
    (4, 0),  # v5 - r1
    (2, 1),  # v3 - r2
    (3, 1),  # v4 - r2
    (5, 2),  # v6 - r3
)


def running_example_graph() -> AttributedGraph:
    """Build the Fig. 1 running-example attributed graph (n=6, d=3)."""
    n, d = 6, 3
    edges = np.array(RUNNING_EXAMPLE_EDGES, dtype=np.int64)
    adjacency = sp.csr_matrix(
        (np.ones(len(edges)), (edges[:, 0], edges[:, 1])), shape=(n, n)
    )
    assoc = np.array(RUNNING_EXAMPLE_ASSOCIATIONS, dtype=np.int64)
    attributes = sp.csr_matrix(
        (np.ones(len(assoc)), (assoc[:, 0], assoc[:, 1])), shape=(n, d)
    )
    return AttributedGraph(
        adjacency=adjacency,
        attributes=attributes,
        directed=True,
        node_names=[f"v{i + 1}" for i in range(n)],
        attribute_names=[f"r{j + 1}" for j in range(d)],
    )
