"""Matrix views of an attributed graph (paper Table 1 and Eq. 1).

Provides the random-walk matrix ``P = D⁻¹A`` and the two normalized
attribute matrices:

- ``Rr`` — *row-stochastic*: ``Rr[v, r] = R[v, r] / Σ_{r'} R[v, r']`` is the
  probability that a forward walk terminating at ``v`` picks attribute ``r``;
- ``Rc`` — *column-stochastic*: ``Rc[v, r] = R[v, r] / Σ_{v'} R[v', r]`` is
  the probability that a backward walk from attribute ``r`` starts at ``v``.

Note: Eq. (1) in the paper as printed swaps the two denominators relative to
its own walk semantics in Sec. 2.2; we implement the semantics (see
DESIGN.md, "Paper typo handled").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.sparse import column_normalize, row_normalize


def random_walk_matrix(
    graph: AttributedGraph, *, dangling: str = "zero"
) -> sp.csr_matrix:
    """Return ``P = D⁻¹A``, the out-degree-normalized transition matrix.

    Parameters
    ----------
    graph:
        The attributed network.
    dangling:
        Policy for zero-out-degree nodes: ``"zero"`` keeps an all-zero row
        (walk mass stops, matching the truncated power series of Eq. 5);
        ``"self"`` adds a self-loop so the row is stochastic.
    """
    if dangling not in ("zero", "self"):
        raise ValueError(f"unknown dangling policy {dangling!r}")
    adjacency = graph.adjacency
    if dangling == "self":
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        dangling_nodes = np.flatnonzero(degrees == 0)
        if dangling_nodes.size:
            loops = sp.csr_matrix(
                (
                    np.ones(dangling_nodes.size),
                    (dangling_nodes, dangling_nodes),
                ),
                shape=adjacency.shape,
            )
            adjacency = adjacency + loops
    return row_normalize(adjacency)


def normalized_attribute_matrices(
    graph: AttributedGraph,
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Return ``(Rr, Rc)``: row- and column-stochastic attribute matrices."""
    attributes = graph.attributes
    return row_normalize(attributes), column_normalize(attributes)


def extended_adjacency(graph: AttributedGraph) -> sp.csr_matrix:
    """Adjacency of the *extended graph* 𝔾 of Sec. 2.1 / Fig. 1.

    The extended graph has ``n + d`` vertices: the original nodes followed by
    one vertex per attribute.  Every association ``(v, r, w)`` becomes a pair
    of opposing edges ``v ↔ r`` with weight ``w``; original edges are kept.
    Used by the walk simulator and by examples that want a single homogeneous
    view of the data.
    """
    n, d = graph.n_nodes, graph.n_attributes
    upper = sp.hstack([graph.adjacency, graph.attributes])
    lower = sp.hstack([graph.attributes.T, sp.csr_matrix((d, d))])
    return sp.vstack([upper, lower]).tocsr()
