"""Descriptive statistics of attributed graphs (Table 3-style profiling).

Used by the dataset registry tests and handy when validating that a
synthetic analogue matches its target profile (density, degree skew,
homophily, attribute concentration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.attributed_graph import AttributedGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics for one attributed graph."""

    n_nodes: int
    n_edges: int
    n_attributes: int
    n_associations: int
    density: float
    mean_out_degree: float
    max_in_degree: int
    degree_gini: float
    edge_homophily: float | None
    mean_attributes_per_node: float
    attribute_gini: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n_nodes,
            "m": self.n_edges,
            "d": self.n_attributes,
            "|E_R|": self.n_associations,
            "density": self.density,
            "mean out-deg": self.mean_out_degree,
            "max in-deg": self.max_in_degree,
            "degree gini": self.degree_gini,
            "homophily": self.edge_homophily if self.edge_homophily is not None else float("nan"),
            "attrs/node": self.mean_attributes_per_node,
            "attr gini": self.attribute_gini,
        }


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ValueError("empty sample")
    if values.min() < 0:
        raise ValueError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def edge_homophily(graph: AttributedGraph) -> float | None:
    """Fraction of edges joining same-label endpoints (None if unlabeled).

    Multi-label graphs count an edge as homophilous when the endpoint
    label sets intersect.
    """
    if graph.labels is None:
        return None
    edges = graph.edge_list()
    if edges.size == 0:
        return None
    if graph.is_multilabel:
        overlap = (graph.labels[edges[:, 0]] & graph.labels[edges[:, 1]]).sum(axis=1)
        return float(np.mean(overlap > 0))
    return float(np.mean(graph.labels[edges[:, 0]] == graph.labels[edges[:, 1]]))


def compute_statistics(graph: AttributedGraph) -> GraphStatistics:
    """Profile ``graph`` into a :class:`GraphStatistics` record."""
    n = graph.n_nodes
    in_degrees = np.asarray(graph.adjacency.sum(axis=0)).ravel()
    attrs_per_node = np.asarray(
        (graph.attributes != 0).sum(axis=1)
    ).ravel().astype(np.float64)
    attr_popularity = np.asarray(
        (graph.attributes != 0).sum(axis=0)
    ).ravel().astype(np.float64)
    return GraphStatistics(
        n_nodes=n,
        n_edges=graph.n_edges,
        n_attributes=graph.n_attributes,
        n_associations=graph.n_associations,
        density=graph.n_edges / max(n * (n - 1), 1),
        mean_out_degree=float(graph.out_degrees.mean()),
        max_in_degree=int(in_degrees.max()) if n else 0,
        degree_gini=gini_coefficient(in_degrees),
        edge_homophily=edge_homophily(graph),
        mean_attributes_per_node=float(attrs_per_node.mean()),
        attribute_gini=gini_coefficient(attr_popularity),
    )
