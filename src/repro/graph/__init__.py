"""Attributed-graph substrate: storage, matrices, generators, IO and walks."""

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.generators import (
    attributed_sbm,
    citation_graph,
    power_law_attributed,
    random_attributed_graph,
)
from repro.graph.toy import running_example_graph

__all__ = [
    "AttributedGraph",
    "attributed_sbm",
    "citation_graph",
    "power_law_attributed",
    "random_attributed_graph",
    "running_example_graph",
]
