"""Serialization of attributed graphs.

Two formats:

- **npz** (binary, lossless): a single ``.npz`` bundling the adjacency,
  attribute matrix and labels — the format the benchmark harness caches.
- **text** (interchange): an edge list file, an association list file and an
  optional label file, mirroring how the public Cora/Citeseer dumps ship.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph


def save_npz(graph: AttributedGraph, path: str | Path) -> None:
    """Write ``graph`` to a single ``.npz`` archive at ``path``."""
    path = Path(path)
    adjacency = graph.adjacency.tocoo()
    attributes = graph.attributes.tocoo()
    payload: dict[str, np.ndarray] = {
        "n_nodes": np.array(graph.n_nodes),
        "n_attributes": np.array(graph.n_attributes),
        "directed": np.array(graph.directed),
        "adj_row": adjacency.row,
        "adj_col": adjacency.col,
        "adj_data": adjacency.data,
        "attr_row": attributes.row,
        "attr_col": attributes.col,
        "attr_data": attributes.data,
    }
    if graph.labels is not None:
        payload["labels"] = graph.labels
    np.savez_compressed(path, **payload)


def load_npz(path: str | Path) -> AttributedGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(Path(path)) as archive:
        n = int(archive["n_nodes"])
        d = int(archive["n_attributes"])
        adjacency = sp.csr_matrix(
            (archive["adj_data"], (archive["adj_row"], archive["adj_col"])),
            shape=(n, n),
        )
        attributes = sp.csr_matrix(
            (archive["attr_data"], (archive["attr_row"], archive["attr_col"])),
            shape=(n, d),
        )
        labels = archive["labels"] if "labels" in archive.files else None
        directed = bool(archive["directed"])
    return AttributedGraph(
        adjacency=adjacency,
        attributes=attributes,
        directed=directed,
        labels=labels,
    )


def save_text(graph: AttributedGraph, directory: str | Path) -> None:
    """Write ``graph`` as text files under ``directory``.

    Produces ``edges.txt`` (``src dst weight``), ``attributes.txt``
    (``node attr weight``), ``meta.json`` and, when labeled,
    ``labels.txt`` (``node label`` rows, one per membership).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    adjacency = graph.adjacency.tocoo()
    with open(directory / "edges.txt", "w") as handle:
        for source, target, weight in zip(adjacency.row, adjacency.col, adjacency.data):
            handle.write(f"{source} {target} {weight:g}\n")
    attributes = graph.attributes.tocoo()
    with open(directory / "attributes.txt", "w") as handle:
        for node, attr, weight in zip(attributes.row, attributes.col, attributes.data):
            handle.write(f"{node} {attr} {weight:g}\n")
    meta = {
        "n_nodes": graph.n_nodes,
        "n_attributes": graph.n_attributes,
        "directed": graph.directed,
        "multilabel": graph.is_multilabel,
    }
    with open(directory / "meta.json", "w") as handle:
        json.dump(meta, handle, indent=2)
    if graph.labels is not None:
        with open(directory / "labels.txt", "w") as handle:
            if graph.is_multilabel:
                rows, cols = np.nonzero(graph.labels)
                for node, label in zip(rows, cols):
                    handle.write(f"{node} {label}\n")
            else:
                for node, label in enumerate(graph.labels):
                    handle.write(f"{node} {label}\n")


def load_text(directory: str | Path) -> AttributedGraph:
    """Load a graph previously written by :func:`save_text`."""
    directory = Path(directory)
    with open(directory / "meta.json") as handle:
        meta = json.load(handle)
    n, d = meta["n_nodes"], meta["n_attributes"]
    edges = np.loadtxt(directory / "edges.txt", ndmin=2)
    if edges.size:
        adjacency = sp.csr_matrix(
            (edges[:, 2], (edges[:, 0].astype(int), edges[:, 1].astype(int))),
            shape=(n, n),
        )
    else:
        adjacency = sp.csr_matrix((n, n))
    assoc = np.loadtxt(directory / "attributes.txt", ndmin=2)
    if assoc.size:
        attributes = sp.csr_matrix(
            (assoc[:, 2], (assoc[:, 0].astype(int), assoc[:, 1].astype(int))),
            shape=(n, d),
        )
    else:
        attributes = sp.csr_matrix((n, d))
    labels = None
    label_path = directory / "labels.txt"
    if label_path.exists():
        pairs = np.loadtxt(label_path, dtype=np.int64, ndmin=2)
        if meta["multilabel"]:
            n_labels = int(pairs[:, 1].max()) + 1 if pairs.size else 0
            labels = np.zeros((n, n_labels), dtype=np.int64)
            labels[pairs[:, 0], pairs[:, 1]] = 1
        else:
            labels = np.zeros(n, dtype=np.int64)
            labels[pairs[:, 0]] = pairs[:, 1]
    return AttributedGraph(
        adjacency=adjacency,
        attributes=attributes,
        directed=meta["directed"],
        labels=labels,
    )
