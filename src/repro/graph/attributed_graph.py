"""The attributed network ``G = (V, E_V, R, E_R)`` of the paper (Sec. 2.1).

``AttributedGraph`` is the single data structure every algorithm in this
library consumes.  It stores:

- a sparse adjacency matrix ``A`` (``n × n``, CSR, float64, directed);
- a sparse attribute matrix ``R`` (``n × d``, CSR, non-negative weights),
  whose entry ``R[v, r]`` is the weight ``w_{v,r}`` of association
  ``(v, r, w) ∈ E_R``;
- optional node labels (single- or multi-label) used only by the node
  classification task.

Undirected input graphs are symmetrized on construction, matching the
paper's convention of replacing each undirected edge with two directed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_csr


@dataclass
class AttributedGraph:
    """An attributed, directed graph.

    Parameters
    ----------
    adjacency:
        ``n × n`` sparse matrix; nonzero ``A[i, j]`` means a directed edge
        ``i → j``.  Binary in the paper; arbitrary positive weights are
        accepted.
    attributes:
        ``n × d`` sparse non-negative matrix of node-attribute weights.
    directed:
        If ``False`` the adjacency is symmetrized (max of ``A`` and ``Aᵀ``).
    labels:
        Optional ``n``-vector of integer class ids, or an ``n × |L|``
        binary indicator matrix for multi-label graphs.
    node_names / attribute_names:
        Optional human-readable identifiers, for examples and reports.
    """

    adjacency: sp.csr_matrix
    attributes: sp.csr_matrix
    directed: bool = True
    labels: np.ndarray | None = None
    node_names: list[str] | None = None
    attribute_names: list[str] | None = None
    _out_degrees: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.adjacency = check_csr(self.adjacency, "adjacency")
        self.attributes = check_csr(self.attributes, "attributes")
        n_adj = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise ValueError(
                f"adjacency must be square, got shape {self.adjacency.shape}"
            )
        if self.attributes.shape[0] != n_adj:
            raise ValueError(
                f"attributes has {self.attributes.shape[0]} rows "
                f"but the graph has {n_adj} nodes"
            )
        if self.attributes.nnz and self.attributes.data.min() < 0:
            raise ValueError("attribute weights must be non-negative")
        if not self.directed:
            self.adjacency = self.adjacency.maximum(self.adjacency.T).tocsr()
        self.adjacency.eliminate_zeros()
        self.attributes.eliminate_zeros()
        if self.labels is not None:
            self.labels = np.asarray(self.labels)
            if self.labels.shape[0] != n_adj:
                raise ValueError(
                    f"labels has {self.labels.shape[0]} entries "
                    f"but the graph has {n_adj} nodes"
                )

    # ------------------------------------------------------------------
    # basic statistics
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of directed edges ``m`` (each undirected edge counts twice)."""
        return int(self.adjacency.nnz)

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``d``."""
        return self.attributes.shape[1]

    @property
    def n_associations(self) -> int:
        """Number of node-attribute associations ``|E_R|``."""
        return int(self.attributes.nnz)

    @property
    def out_degrees(self) -> np.ndarray:
        """Weighted out-degree of every node (cached)."""
        if self._out_degrees is None:
            self._out_degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()
        return self._out_degrees

    @property
    def n_labels(self) -> int:
        """Number of distinct labels, 0 if the graph is unlabeled."""
        if self.labels is None:
            return 0
        if self.labels.ndim == 2:
            return self.labels.shape[1]
        return int(self.labels.max()) + 1

    @property
    def is_multilabel(self) -> bool:
        """True when labels are stored as an indicator matrix."""
        return self.labels is not None and self.labels.ndim == 2

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def with_adjacency(self, adjacency: sp.spmatrix) -> "AttributedGraph":
        """Return a copy of this graph with a replaced edge set.

        Used by the link-prediction task to build the residual graph after
        removing test edges; attributes and labels are shared (not copied).
        """
        return AttributedGraph(
            adjacency=adjacency,
            attributes=self.attributes,
            directed=self.directed,
            labels=self.labels,
            node_names=self.node_names,
            attribute_names=self.attribute_names,
        )

    def with_attributes(self, attributes: sp.spmatrix) -> "AttributedGraph":
        """Return a copy with a replaced attribute matrix (for E_R splits)."""
        return AttributedGraph(
            adjacency=self.adjacency,
            attributes=attributes,
            directed=self.directed,
            labels=self.labels,
            node_names=self.node_names,
            attribute_names=self.attribute_names,
        )

    def edge_list(self) -> np.ndarray:
        """Return the edges as an ``m × 2`` int array of (source, target)."""
        coo = self.adjacency.tocoo()
        return np.column_stack([coo.row, coo.col]).astype(np.int64)

    def has_edge(self, source: int, target: int) -> bool:
        """True when the directed edge ``source → target`` exists."""
        return bool(self.adjacency[source, target] != 0)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Indices of out-neighbors of ``node``."""
        return self.adjacency.indices[
            self.adjacency.indptr[node] : self.adjacency.indptr[node + 1]
        ]

    def summary(self) -> str:
        """One-line dataset summary in the style of the paper's Table 3."""
        return (
            f"AttributedGraph(n={self.n_nodes}, m={self.n_edges}, "
            f"d={self.n_attributes}, |E_R|={self.n_associations}, "
            f"|L|={self.n_labels}, directed={self.directed})"
        )

    def __repr__(self) -> str:
        return self.summary()
