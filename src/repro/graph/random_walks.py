"""Monte-Carlo simulation of the paper's random-walk model (Sec. 2.2).

PANE never actually samples walks — APMI (Alg. 2) computes the visiting
probabilities in closed form.  This module implements the *definition*:
forward walks from nodes and backward walks from attributes, including the
footnote-1 degenerate case (a walk that terminates at a node with no
attributes restarts from its source).  It exists to

- validate APMI against the definition (tests),
- reproduce Table 2's running example numbers,
- serve as a reference for readers comparing code to paper.
"""

from __future__ import annotations

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import normalized_attribute_matrices, random_walk_matrix
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability


class WalkSimulator:
    """Samples forward and backward walks on an attributed graph.

    Transition structures are prepared once at construction; individual
    walk calls are then cheap.  ``alpha`` is the stopping probability of
    the random walk with restart.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        alpha: float = 0.5,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        self.alpha = check_probability(alpha, "alpha")
        self.rng = ensure_rng(seed)
        self._transition = random_walk_matrix(graph)
        self._attributes = graph.attributes.tocsr()
        _, rc = normalized_attribute_matrices(graph)
        self._rc_csc = rc.tocsc()

    # -- sampling primitives ------------------------------------------
    def _sample_csr_row(self, matrix, row: int) -> int | None:
        """Sample a column of CSR ``matrix`` proportional to row weights."""
        start, stop = matrix.indptr[row], matrix.indptr[row + 1]
        if start == stop:
            return None
        weights = matrix.data[start:stop]
        choice = self.rng.choice(stop - start, p=weights / weights.sum())
        return int(matrix.indices[start + choice])

    def _walk_until_stop(self, start: int) -> int:
        """Walk from ``start`` with stop probability alpha; return final node."""
        current = start
        while self.rng.random() >= self.alpha:
            nxt = self._sample_csr_row(self._transition, current)
            if nxt is None:
                break  # dangling node absorbs the walk
            current = nxt
        return current

    # -- paper walks ---------------------------------------------------
    def forward_walk(self, source: int, *, max_restarts: int = 100) -> int | None:
        """One forward walk from node ``source``; returns an attribute index.

        On terminating at a node without attributes the walk restarts from
        ``source`` (paper footnote 1); ``None`` after ``max_restarts``
        failed attempts (unreachable attributes).
        """
        for _ in range(max_restarts):
            final = self._walk_until_stop(source)
            attr = self._sample_csr_row(self._attributes, final)
            if attr is not None:
                return attr
        return None

    def backward_walk(self, attribute: int) -> int:
        """One backward walk from ``attribute``; returns the final node."""
        column = self._rc_csc[:, attribute]
        if column.nnz == 0:
            raise ValueError(f"attribute {attribute} has no associated nodes")
        start = int(self.rng.choice(column.indices, p=column.data / column.data.sum()))
        return self._walk_until_stop(start)

    # -- empirical probability estimates -------------------------------
    def forward_probabilities(self, walks_per_node: int = 2000) -> np.ndarray:
        """Empirical ``p_f(v, r)`` for all pairs as a dense ``n × d`` matrix.

        This is the sampled collection ``S_f`` of the paper turned into
        frequencies; O(n · walks_per_node / alpha) — small graphs only.
        """
        counts = np.zeros((self.graph.n_nodes, self.graph.n_attributes))
        for node in range(self.graph.n_nodes):
            for _ in range(walks_per_node):
                attr = self.forward_walk(node)
                if attr is not None:
                    counts[node, attr] += 1
        return counts / walks_per_node

    def backward_probabilities(self, walks_per_attribute: int = 2000) -> np.ndarray:
        """Empirical ``p_b(v, r)`` for all pairs as a dense ``n × d`` matrix."""
        counts = np.zeros((self.graph.n_nodes, self.graph.n_attributes))
        for attr in range(self.graph.n_attributes):
            if self._rc_csc[:, attr].nnz == 0:
                continue
            for _ in range(walks_per_attribute):
                node = self.backward_walk(attr)
                counts[node, attr] += 1
        return counts / walks_per_attribute
