"""Synthetic attributed-graph generators.

The paper evaluates on eight real datasets (Cora … MAG) that are not
redistributable here, so the benchmark harness runs on seeded synthetic
analogues produced by these generators.  All generators create graphs with
the two properties the PANE objective exploits:

1. *topological community structure* — nodes cluster into blocks;
2. *attribute homophily* — each block prefers a subset of attributes, so
   multi-hop node-attribute affinity is informative for inference tasks.

Labels equal block memberships (optionally multi-label), which makes node
classification learnable from good embeddings, mirroring the real datasets.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.rng import ensure_rng


def _sample_block_attributes(
    rng: np.random.Generator,
    communities: np.ndarray,
    n_attributes: int,
    attrs_per_node: float,
    focus: float,
) -> sp.csr_matrix:
    """Sample an attribute matrix where each community prefers a band of attributes.

    ``focus`` ∈ [0, 1] is the probability that a drawn attribute comes from
    the community's own band rather than uniformly from all attributes.
    """
    n = communities.shape[0]
    n_communities = int(communities.max()) + 1
    band = max(1, n_attributes // n_communities)
    rows, cols = [], []
    counts = rng.poisson(attrs_per_node, size=n) + 1
    for node in range(n):
        community = communities[node]
        lo = (community * band) % n_attributes
        for _ in range(counts[node]):
            if rng.random() < focus:
                attr = lo + rng.integers(0, band)
            else:
                attr = rng.integers(0, n_attributes)
            rows.append(node)
            cols.append(int(attr) % n_attributes)
    data = np.ones(len(rows))
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n_attributes))
    matrix.sum_duplicates()
    matrix.data[:] = np.minimum(matrix.data, 3.0)  # cap repeated draws
    return matrix


def attributed_sbm(
    n_nodes: int = 400,
    n_communities: int = 4,
    n_attributes: int = 64,
    *,
    p_in: float = 0.05,
    p_out: float = 0.005,
    attrs_per_node: float = 4.0,
    attribute_focus: float = 0.8,
    directed: bool = True,
    multilabel: bool = False,
    seed: int | np.random.Generator | None = None,
) -> AttributedGraph:
    """Stochastic block model with community-correlated attributes.

    Parameters
    ----------
    n_nodes, n_communities, n_attributes:
        Graph dimensions.
    p_in, p_out:
        Intra-/inter-community edge probabilities.
    attrs_per_node:
        Mean number of attribute associations per node (Poisson).
    attribute_focus:
        Probability that an association falls in the community's own
        attribute band — higher means stronger homophily.
    directed:
        Directed edges when True, symmetrized otherwise.
    multilabel:
        When True, ~20% of nodes receive a second community label and the
        label array becomes an ``n × n_communities`` indicator matrix.
    seed:
        RNG seed.
    """
    rng = ensure_rng(seed)
    communities = rng.integers(0, n_communities, size=n_nodes)
    same = communities[:, None] == communities[None, :]
    probs = np.where(same, p_in, p_out)
    mask = rng.random((n_nodes, n_nodes)) < probs
    np.fill_diagonal(mask, False)
    if not directed:
        mask = np.triu(mask) | np.triu(mask).T
    adjacency = sp.csr_matrix(mask.astype(np.float64))
    attributes = _sample_block_attributes(
        rng, communities, n_attributes, attrs_per_node, attribute_focus
    )
    if multilabel:
        labels = np.zeros((n_nodes, n_communities), dtype=np.int64)
        labels[np.arange(n_nodes), communities] = 1
        extra = rng.random(n_nodes) < 0.2
        second = rng.integers(0, n_communities, size=n_nodes)
        labels[np.flatnonzero(extra), second[extra]] = 1
    else:
        labels = communities.astype(np.int64)
    return AttributedGraph(
        adjacency=adjacency,
        attributes=attributes,
        directed=directed,
        labels=labels,
    )


def power_law_attributed(
    n_nodes: int = 500,
    n_attributes: int = 64,
    *,
    out_degree: int = 4,
    n_communities: int = 5,
    attrs_per_node: float = 4.0,
    attribute_focus: float = 0.75,
    community_bias: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> AttributedGraph:
    """Directed preferential-attachment graph with community attributes.

    Mimics the skewed in-degree distribution of social/citation networks
    (TWeibo, MAG): each new node links to ``out_degree`` targets chosen
    with probability proportional to (in-degree + 1).  With probability
    ``community_bias`` a link is drawn from the node's own community
    (degree-weighted), giving the topological homophily real social
    graphs exhibit alongside the degree skew.
    """
    rng = ensure_rng(seed)
    communities = rng.integers(0, n_communities, size=n_nodes)
    sources: list[int] = []
    targets: list[int] = []
    in_degree = np.zeros(n_nodes)
    for node in range(1, n_nodes):
        pool = min(node, out_degree)
        weights = in_degree[:node] + 1.0
        own = communities[:node] == communities[node]
        if own.any() and rng.random() < community_bias:
            weights = np.where(own, weights, 0.0)
        weights = weights / weights.sum()
        pool = min(pool, int(np.count_nonzero(weights)))
        chosen = rng.choice(node, size=pool, replace=False, p=weights)
        for target in chosen:
            sources.append(node)
            targets.append(int(target))
            in_degree[target] += 1
    adjacency = sp.csr_matrix(
        (np.ones(len(sources)), (sources, targets)), shape=(n_nodes, n_nodes)
    )
    attributes = _sample_block_attributes(
        rng, communities, n_attributes, attrs_per_node, attribute_focus
    )
    return AttributedGraph(
        adjacency=adjacency,
        attributes=attributes,
        directed=True,
        labels=communities.astype(np.int64),
    )


def citation_graph(
    n_nodes: int = 600,
    n_attributes: int = 128,
    *,
    n_topics: int = 6,
    refs_per_paper: int = 3,
    recency_bias: float = 0.7,
    attrs_per_node: float = 6.0,
    attribute_focus: float = 0.85,
    seed: int | np.random.Generator | None = None,
) -> AttributedGraph:
    """Citation-style DAG: papers cite earlier papers, mostly on their topic.

    Used as the Cora/Citeseer/Pubmed analogue: directed, acyclic-ish,
    bag-of-words attributes concentrated per topic, topic labels.
    """
    rng = ensure_rng(seed)
    topics = rng.integers(0, n_topics, size=n_nodes)
    sources: list[int] = []
    targets: list[int] = []
    for paper in range(1, n_nodes):
        n_refs = min(paper, 1 + rng.poisson(refs_per_paper))
        same_topic = np.flatnonzero(topics[:paper] == topics[paper])
        for _ in range(n_refs):
            if same_topic.size and rng.random() < recency_bias:
                target = int(rng.choice(same_topic))
            else:
                target = int(rng.integers(0, paper))
            sources.append(paper)
            targets.append(target)
    adjacency = sp.csr_matrix(
        (np.ones(len(sources)), (sources, targets)), shape=(n_nodes, n_nodes)
    )
    adjacency.sum_duplicates()
    adjacency.data[:] = 1.0
    attributes = _sample_block_attributes(
        rng, topics, n_attributes, attrs_per_node, attribute_focus
    )
    return AttributedGraph(
        adjacency=adjacency,
        attributes=attributes,
        directed=True,
        labels=topics.astype(np.int64),
    )


def random_attributed_graph(
    n_nodes: int = 100,
    n_attributes: int = 20,
    *,
    edge_probability: float = 0.05,
    attrs_per_node: float = 3.0,
    directed: bool = True,
    seed: int | np.random.Generator | None = None,
) -> AttributedGraph:
    """Erdős–Rényi graph with uniform attributes — a structureless control.

    Handy for tests: no homophily, so embeddings should carry little signal.
    """
    rng = ensure_rng(seed)
    mask = rng.random((n_nodes, n_nodes)) < edge_probability
    np.fill_diagonal(mask, False)
    adjacency = sp.csr_matrix(mask.astype(np.float64))
    communities = np.zeros(n_nodes, dtype=np.int64)
    attributes = _sample_block_attributes(
        rng, communities, n_attributes, attrs_per_node, focus=0.0
    )
    return AttributedGraph(
        adjacency=adjacency, attributes=attributes, directed=directed
    )
