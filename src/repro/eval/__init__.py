"""Experiment harness reproducing the paper's evaluation (Sec. 5)."""

from repro.eval.datasets import DATASETS, load_dataset, small_datasets, large_datasets
from repro.eval.harness import (
    default_methods,
    run_attribute_inference,
    run_link_prediction,
    run_node_classification,
    time_methods,
)
from repro.eval.reporting import format_table, format_series

__all__ = [
    "DATASETS",
    "load_dataset",
    "small_datasets",
    "large_datasets",
    "default_methods",
    "run_attribute_inference",
    "run_link_prediction",
    "run_node_classification",
    "time_methods",
    "format_table",
    "format_series",
]
