"""Parameter-sweep experiments behind Figures 4–8.

Each function returns ``{x_value: measurement}`` dictionaries ready for
:func:`repro.eval.reporting.format_series`, matching one panel of the
corresponding paper figure.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pane_random_init import PANERandomInit
from repro.core.pane import PANE
from repro.eval.datasets import load_dataset
from repro.tasks.attribute_inference import AttributeInferenceTask
from repro.tasks.link_prediction import LinkPredictionTask
from repro.utils.timing import time_call


def _make_task(graph, task: str, seed: int):
    if task == "link":
        return LinkPredictionTask(graph, seed=seed)
    if task == "attribute":
        return AttributeInferenceTask(graph, seed=seed)
    raise ValueError(f"task must be 'link' or 'attribute', got {task!r}")


def sweep_k(
    dataset: str,
    k_values: tuple[int, ...] = (16, 32, 64, 128),
    *,
    task: str = "link",
    seed: int = 0,
) -> dict[float, float]:
    """AUC vs space budget k (Fig. 5a / 6a)."""
    graph = load_dataset(dataset)
    evaluator = _make_task(graph, task, seed)
    results: dict[float, float] = {}
    for k in k_values:
        if k // 2 > min(graph.n_nodes, graph.n_attributes):
            continue
        results[float(k)] = evaluator.evaluate(PANE(k=k, seed=seed)).auc
    return results


def sweep_threads(
    dataset: str,
    thread_counts: tuple[int, ...] = (1, 2, 5, 10),
    *,
    k: int = 32,
    task: str = "link",
    seed: int = 0,
) -> tuple[dict[float, float], dict[float, float]]:
    """(AUC vs nb, wall-seconds vs nb) — Fig. 5b/6b quality, Fig. 4a time."""
    graph = load_dataset(dataset)
    evaluator = _make_task(graph, task, seed)
    quality: dict[float, float] = {}
    seconds: dict[float, float] = {}
    for nb in thread_counts:
        model = PANE(k=k, seed=seed, n_threads=nb)
        elapsed, embedding = time_call(model.fit, evaluator.split.residual_graph
                                       if task == "link"
                                       else evaluator.split.train_graph)
        quality[float(nb)] = evaluator.evaluate_embedding(embedding).auc
        seconds[float(nb)] = elapsed
    return quality, seconds


def sweep_epsilon(
    dataset: str,
    epsilon_values: tuple[float, ...] = (0.001, 0.005, 0.015, 0.05, 0.25),
    *,
    k: int = 32,
    task: str = "link",
    seed: int = 0,
) -> tuple[dict[float, float], dict[float, float]]:
    """(AUC vs ϵ, wall-seconds vs ϵ) — Fig. 5c/6c and Fig. 4c."""
    graph = load_dataset(dataset)
    evaluator = _make_task(graph, task, seed)
    quality: dict[float, float] = {}
    seconds: dict[float, float] = {}
    train_graph = (
        evaluator.split.residual_graph if task == "link" else evaluator.split.train_graph
    )
    for epsilon in epsilon_values:
        model = PANE(k=k, epsilon=epsilon, seed=seed)
        elapsed, embedding = time_call(model.fit, train_graph)
        quality[epsilon] = evaluator.evaluate_embedding(embedding).auc
        seconds[epsilon] = elapsed
    return quality, seconds


def sweep_alpha(
    dataset: str,
    alpha_values: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    *,
    k: int = 32,
    task: str = "link",
    seed: int = 0,
) -> dict[float, float]:
    """AUC vs random-walk stopping probability α (Fig. 5d / 6d)."""
    graph = load_dataset(dataset)
    evaluator = _make_task(graph, task, seed)
    results: dict[float, float] = {}
    for alpha in alpha_values:
        results[alpha] = evaluator.evaluate(PANE(k=k, alpha=alpha, seed=seed)).auc
    return results


def sweep_time_vs_k(
    dataset: str,
    k_values: tuple[int, ...] = (16, 32, 64, 128),
    *,
    n_threads: int = 4,
    seed: int = 0,
) -> dict[float, float]:
    """Embedding wall-seconds vs k (Fig. 4b)."""
    graph = load_dataset(dataset)
    seconds: dict[float, float] = {}
    for k in k_values:
        if k // 2 > min(graph.n_nodes, graph.n_attributes):
            continue
        elapsed, _ = time_call(PANE(k=k, seed=seed, n_threads=n_threads).fit, graph)
        seconds[float(k)] = elapsed
    return seconds


def greedy_init_comparison(
    dataset: str,
    t_values: tuple[int, ...] = (1, 2, 5, 10),
    *,
    k: int = 32,
    task: str = "link",
    seed: int = 0,
) -> dict[str, list[tuple[float, float]]]:
    """PANE vs PANE-R time/quality frontier (Figs. 7 and 8).

    Returns ``{method: [(seconds, auc), …]}`` with one point per CCD
    iteration count in ``t_values``.
    """
    graph = load_dataset(dataset)
    evaluator = _make_task(graph, task, seed)
    train_graph = (
        evaluator.split.residual_graph if task == "link" else evaluator.split.train_graph
    )
    frontier: dict[str, list[tuple[float, float]]] = {"PANE": [], "PANE-R": []}
    for t in t_values:
        pane = PANE(k=k, ccd_iterations=t, seed=seed)
        elapsed, embedding = time_call(pane.fit, train_graph)
        frontier["PANE"].append(
            (elapsed, evaluator.evaluate_embedding(embedding).auc)
        )
        pane_r = PANERandomInit(k=k, ccd_iterations=t, seed=seed)
        elapsed, embedding = time_call(pane_r.fit, train_graph)
        frontier["PANE-R"].append(
            (elapsed, evaluator.evaluate_embedding(embedding).auc)
        )
    return frontier


def speedup_from_seconds(seconds: dict[float, float]) -> dict[float, float]:
    """Convert a ``{nb: seconds}`` map to ``{nb: speedup vs nb=1}``."""
    if 1.0 not in seconds:
        raise ValueError("speedup requires the nb=1 measurement")
    base = seconds[1.0]
    return {nb: base / s if s > 0 else float("nan") for nb, s in seconds.items()}
