"""Registry of synthetic analogues of the paper's eight datasets (Table 3).

The real datasets cannot be redistributed, so each entry generates a
seeded synthetic graph whose *structural profile* — directedness, relative
density, label type, attribute dimensionality — mirrors the original at
laptop scale (see DESIGN.md §2).  Sizes are scaled so the full benchmark
suite finishes in minutes; the scalability figures sweep ``mag_sim``, the
largest entry, instead of the 59M-node MAG.

Every generator is deterministic for a fixed registry seed, and results
are memoized per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.generators import (
    attributed_sbm,
    citation_graph,
    power_law_attributed,
)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: paper analogue, builder, and display metadata."""

    name: str
    paper_name: str
    builder: Callable[[], AttributedGraph]
    scale: str  # "small" | "large"
    description: str


def _cora_sim() -> AttributedGraph:
    return citation_graph(
        n_nodes=800, n_attributes=200, n_topics=7, refs_per_paper=2,
        attrs_per_node=8.0, attribute_focus=0.7, seed=101,
    )


def _citeseer_sim() -> AttributedGraph:
    return citation_graph(
        n_nodes=700, n_attributes=300, n_topics=6, refs_per_paper=2,
        attrs_per_node=10.0, attribute_focus=0.7, seed=102,
    )


def _facebook_sim() -> AttributedGraph:
    return attributed_sbm(
        n_nodes=600, n_communities=8, n_attributes=100, p_in=0.06,
        p_out=0.004, attrs_per_node=5.0, attribute_focus=0.65,
        directed=False, multilabel=True, seed=103,
    )


def _pubmed_sim() -> AttributedGraph:
    return citation_graph(
        n_nodes=1200, n_attributes=120, n_topics=3, refs_per_paper=2,
        attrs_per_node=12.0, attribute_focus=0.6, seed=104,
    )


def _flickr_sim() -> AttributedGraph:
    return attributed_sbm(
        n_nodes=500, n_communities=9, n_attributes=300, p_in=0.12,
        p_out=0.01, attrs_per_node=6.0, attribute_focus=0.6,
        directed=False, seed=105,
    )


def _google_sim() -> AttributedGraph:
    return attributed_sbm(
        n_nodes=1500, n_communities=10, n_attributes=250, p_in=0.05,
        p_out=0.002, attrs_per_node=8.0, attribute_focus=0.7,
        directed=True, multilabel=True, seed=106,
    )


def _tweibo_sim() -> AttributedGraph:
    return power_law_attributed(
        n_nodes=3000, n_attributes=150, out_degree=5, n_communities=8,
        attrs_per_node=5.0, attribute_focus=0.65, seed=107,
    )


def _mag_sim() -> AttributedGraph:
    return power_law_attributed(
        n_nodes=8000, n_attributes=200, out_degree=6, n_communities=10,
        attrs_per_node=6.0, attribute_focus=0.65, seed=108,
    )


#: All registered datasets, in the paper's Table 3 order.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("cora_sim", "Cora", _cora_sim, "small",
                    "citation DAG, 7 topics, bag-of-words attributes"),
        DatasetSpec("citeseer_sim", "Citeseer", _citeseer_sim, "small",
                    "citation DAG, 6 topics, sparser text"),
        DatasetSpec("facebook_sim", "Facebook", _facebook_sim, "small",
                    "undirected social SBM, multi-label ego circles"),
        DatasetSpec("pubmed_sim", "Pubmed", _pubmed_sim, "small",
                    "citation DAG, 3 topics, dense associations"),
        DatasetSpec("flickr_sim", "Flickr", _flickr_sim, "small",
                    "undirected dense SBM, many attributes"),
        DatasetSpec("google_sim", "Google+", _google_sim, "large",
                    "directed SBM, multi-label circles"),
        DatasetSpec("tweibo_sim", "TWeibo", _tweibo_sim, "large",
                    "directed preferential attachment, skewed degrees"),
        DatasetSpec("mag_sim", "MAG", _mag_sim, "large",
                    "largest: directed preferential attachment"),
    )
}


@lru_cache(maxsize=None)
def load_dataset(name: str) -> AttributedGraph:
    """Build (and memoize) the named dataset.

    Raises ``KeyError`` listing valid names for an unknown ``name``.
    """
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; valid names: {sorted(DATASETS)}"
        )
    return DATASETS[name].builder()


def small_datasets() -> list[str]:
    """Names of the small-scale datasets (paper Fig. 3a group)."""
    return [n for n, s in DATASETS.items() if s.scale == "small"]


def large_datasets() -> list[str]:
    """Names of the large-scale datasets (paper Fig. 3b group)."""
    return [n for n, s in DATASETS.items() if s.scale == "large"]
