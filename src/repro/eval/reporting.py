"""Plain-text rendering of result tables and series, paper-style.

The benchmark harness prints these so a reader can compare the regenerated
rows against the paper's Tables 4–5 and Figures 2–8 side by side.
"""

from __future__ import annotations

from typing import Mapping


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    *,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render ``{row_name: {column: value}}`` as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    name_width = max(len(name) for name in rows) + 2
    col_width = max(10, *(len(c) + 2 for c in columns))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " " * name_width + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        cells = "".join(
            (
                f"{row[c]:.{precision}f}".rjust(col_width)
                if c in row
                else "-".rjust(col_width)
            )
            for c in columns
        )
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[float, float]],
    *,
    title: str = "",
    x_label: str = "x",
    precision: int = 3,
) -> str:
    """Render ``{line_name: {x: y}}`` (one row per line, one column per x)."""
    if not series:
        return f"{title}\n(no series)" if title else "(no series)"
    xs: list[float] = []
    for line in series.values():
        for x in line:
            if x not in xs:
                xs.append(x)
    xs.sort()
    name_width = max(len(name) for name in series) + 2
    col_width = 10
    lines: list[str] = []
    if title:
        lines.append(title)
    header = x_label.ljust(name_width) + "".join(
        f"{x:g}".rjust(col_width) for x in xs
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, line in series.items():
        cells = "".join(
            (
                f"{line[x]:.{precision}f}".rjust(col_width)
                if x in line
                else "-".rjust(col_width)
            )
            for x in xs
        )
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)
