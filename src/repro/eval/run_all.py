"""One-command regeneration of the paper's full evaluation.

Usage::

    python -m repro.eval.run_all [--scale small|full] [--k 32]

Runs Tables 4/5 and the Figure 2 sweep over the dataset registry with the
default method roster and prints every table.  This is the no-pytest path
to the same results as ``pytest benchmarks/ --benchmark-only``; useful for
redirecting a full evaluation report to a file.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.datasets import DATASETS, large_datasets, small_datasets
from repro.eval.harness import (
    default_methods,
    run_attribute_inference,
    run_link_prediction,
    run_node_classification,
    time_methods,
)
from repro.eval.reporting import format_series, format_table


def run_full_evaluation(
    k: int = 32,
    *,
    scale: str = "small",
    seed: int = 0,
    stream=None,
) -> None:
    """Run every protocol on the selected dataset group, printing tables."""
    stream = stream or sys.stdout
    if scale == "small":
        names = small_datasets()
    elif scale == "full":
        names = small_datasets() + large_datasets()
    else:
        raise ValueError(f"scale must be 'small' or 'full', got {scale!r}")

    def emit(text: str) -> None:
        print(text, file=stream)
        print(file=stream)

    for name in names:
        spec = DATASETS[name]
        include_slow = name in small_datasets()
        methods = default_methods(k, seed=seed, include_slow=include_slow)
        start = time.perf_counter()

        emit(
            format_table(
                run_link_prediction(name, methods, seed=seed),
                title=f"[Table 5] link prediction — {name} ({spec.paper_name})",
            )
        )
        emit(
            format_table(
                run_attribute_inference(name, methods, seed=seed),
                title=f"[Table 4] attribute inference — {name} ({spec.paper_name})",
            )
        )
        emit(
            format_series(
                run_node_classification(
                    name,
                    methods,
                    train_fractions=(0.1, 0.5, 0.9),
                    n_repeats=2,
                    seed=seed,
                ),
                title=f"[Figure 2] node classification — {name} ({spec.paper_name})",
                x_label="train frac",
            )
        )
        emit(
            format_table(
                {m: {"seconds": s} for m, s in time_methods(name, methods).items()},
                title=f"[Figure 3] embedding time — {name} ({spec.paper_name})",
            )
        )
        print(
            f"== {name} done in {time.perf_counter() - start:.1f}s ==",
            file=stream,
        )
        print(file=stream)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--k", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    run_full_evaluation(args.k, scale=args.scale, seed=args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
