"""Experiment runners: one function per evaluation protocol.

Each runner takes a dataset name and a ``{method_name: factory}`` mapping
(a factory builds a fresh, unfitted model so repeated runs never leak
state) and returns plain dicts ready for
:func:`repro.eval.reporting.format_table`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.baselines import (
    AANE,
    BANE,
    CANLite,
    LQANR,
    NRP,
    NetMF,
    PANERandomInit,
    RandomEmbedding,
    SpectralConcat,
    TADW,
)
from repro.core.pane import PANE
from repro.eval.datasets import load_dataset
from repro.tasks.attribute_inference import AttributeInferenceTask
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.node_classification import NodeClassificationTask
from repro.utils.timing import time_call

MethodFactory = Callable[[], object]


def default_methods(
    k: int = 32,
    *,
    seed: int = 0,
    include_pane: bool = True,
    include_slow: bool = True,
) -> dict[str, MethodFactory]:
    """The method roster of the comparison tables, at benchmark-scale ``k``.

    ``include_slow=False`` drops the O(n²)-dense methods for the large
    datasets, mirroring the paper's "did not finish within a week" rows.
    """
    methods: dict[str, MethodFactory] = {}
    if include_pane:
        methods["PANE (single thread)"] = lambda: PANE(k=k, seed=seed)
        methods["PANE (parallel)"] = lambda: PANE(k=k, seed=seed, n_threads=4)
    methods["NRP"] = lambda: NRP(k=k, seed=seed)
    methods["Spectral"] = lambda: SpectralConcat(k=k, seed=seed)
    methods["LQANR"] = lambda: LQANR(k=k, seed=seed)
    methods["BANE"] = lambda: BANE(k=k, seed=seed)
    if include_slow:
        methods["TADW"] = lambda: TADW(k=k, seed=seed)
        methods["AANE"] = lambda: AANE(k=k, seed=seed)
        methods["NetMF"] = lambda: NetMF(k=k, seed=seed)
        methods["CAN-lite"] = lambda: CANLite(k=k, seed=seed, n_epochs=80)
    methods["Random"] = lambda: RandomEmbedding(k=k, seed=seed)
    return methods


def run_link_prediction(
    dataset: str,
    methods: Mapping[str, MethodFactory],
    *,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Table 5 protocol on one dataset: ``{method: {AUC, AP}}``."""
    graph = load_dataset(dataset)
    task = LinkPredictionTask(graph, seed=seed)
    rows: dict[str, dict[str, float]] = {}
    for name, factory in methods.items():
        result = task.evaluate(factory())
        rows[name] = result.as_row()
    return rows


def run_attribute_inference(
    dataset: str,
    methods: Mapping[str, MethodFactory],
    *,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Table 4 protocol: only attribute-capable methods are scored."""
    graph = load_dataset(dataset)
    task = AttributeInferenceTask(graph, seed=seed)
    rows: dict[str, dict[str, float]] = {}
    for name, factory in methods.items():
        model = factory()
        try:
            result = task.evaluate(model)
        except TypeError:
            continue  # method has no attribute embeddings (paper: "-")
        rows[name] = result.as_row()
    return rows


def run_node_classification(
    dataset: str,
    methods: Mapping[str, MethodFactory],
    *,
    train_fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    n_repeats: int = 3,
    seed: int = 0,
) -> dict[str, dict[float, float]]:
    """Fig. 2 protocol: ``{method: {train_fraction: micro_f1}}``."""
    graph = load_dataset(dataset)
    task = NodeClassificationTask(
        graph, train_fractions=train_fractions, n_repeats=n_repeats, seed=seed
    )
    rows: dict[str, dict[float, float]] = {}
    for name, factory in methods.items():
        result = task.evaluate(factory())
        rows[name] = result.as_series()
    return rows


def time_methods(
    dataset: str,
    methods: Mapping[str, MethodFactory],
) -> dict[str, float]:
    """Fig. 3 protocol: embedding wall-clock seconds per method."""
    graph = load_dataset(dataset)
    timings: dict[str, float] = {}
    for name, factory in methods.items():
        elapsed, _ = time_call(factory().fit, graph)
        timings[name] = elapsed
    return timings
