"""The paper's published evaluation numbers, for side-by-side reports.

Transcribed from Yang et al., PVLDB 14(1), 2020: Table 2 (running-example
affinity targets), Table 4 (attribute inference AUC) and Table 5 (link
prediction AUC).  The benchmark harness prints these next to the
regenerated rows so shape comparisons never require the PDF.
"""

from __future__ import annotations

#: Table 2 — target values ``Xf[v]·Y[r]`` (forward) and ``Xb[v]·Y[r]``
#: (backward) on the Fig. 1 running example, α = 0.15.  v4 is omitted in
#: the paper's table.
TABLE2_FORWARD: dict[str, tuple[float, float, float]] = {
    "v1": (1.0, 0.92, 0.47),
    "v2": (1.0, 0.92, 0.47),
    "v3": (1.12, 1.04, 0.54),
    "v5": (0.98, 1.1, 1.08),
    "v6": (0.89, 0.82, 2.05),
}

TABLE2_BACKWARD: dict[str, tuple[float, float, float]] = {
    "v1": (0.93, 0.88, 1.17),
    "v2": (1.11, 1.08, 0.8),
    "v3": (1.06, 0.95, 0.99),
    "v5": (1.09, 1.22, 0.61),
    "v6": (0.53, 0.61, 1.6),
}

#: Table 4 — attribute inference AUC per dataset (methods that finished).
TABLE4_AUC: dict[str, dict[str, float]] = {
    "Cora": {"PANE (single thread)": 0.913, "PANE (parallel)": 0.909,
             "CAN": 0.865, "BLA": 0.559},
    "Citeseer": {"PANE (single thread)": 0.903, "PANE (parallel)": 0.899,
                 "CAN": 0.875, "BLA": 0.540},
    "Facebook": {"PANE (single thread)": 0.828, "PANE (parallel)": 0.825,
                 "CAN": 0.765, "BLA": 0.653},
    "Pubmed": {"PANE (single thread)": 0.871, "PANE (parallel)": 0.867,
               "CAN": 0.734, "BLA": 0.520},
    "Flickr": {"PANE (single thread)": 0.825, "PANE (parallel)": 0.822,
               "CAN": 0.772, "BLA": 0.660},
    "Google+": {"PANE (single thread)": 0.972, "PANE (parallel)": 0.969},
    "TWeibo": {"PANE (single thread)": 0.774, "PANE (parallel)": 0.773},
    "MAG": {"PANE (single thread)": 0.876, "PANE (parallel)": 0.874},
}

#: Table 5 — link prediction AUC per dataset (selected rows).
TABLE5_AUC: dict[str, dict[str, float]] = {
    "Cora": {"PANE (single thread)": 0.933, "PANE (parallel)": 0.929,
             "NRP": 0.796, "TADW": 0.829, "BANE": 0.875, "PRRE": 0.879,
             "LQANR": 0.886, "CAN": 0.663, "DGI": 0.51},
    "Citeseer": {"PANE (single thread)": 0.932, "PANE (parallel)": 0.929,
                 "NRP": 0.86, "TADW": 0.895, "BANE": 0.899, "PRRE": 0.895,
                 "LQANR": 0.916, "CAN": 0.734, "DGI": 0.5},
    "Pubmed": {"PANE (single thread)": 0.985, "PANE (parallel)": 0.985,
               "NRP": 0.87, "TADW": 0.904, "BANE": 0.919, "PRRE": 0.887,
               "LQANR": 0.904, "CAN": 0.734, "DGI": 0.73},
    "Facebook": {"PANE (single thread)": 0.982, "PANE (parallel)": 0.98,
                 "NRP": 0.969, "TADW": 0.752, "BANE": 0.796, "PRRE": 0.899},
    "Flickr": {"PANE (single thread)": 0.929, "PANE (parallel)": 0.927,
               "NRP": 0.909, "TADW": 0.573, "BANE": 0.64, "PRRE": 0.789},
    "Google+": {"PANE (single thread)": 0.987, "PANE (parallel)": 0.984,
                "NRP": 0.989, "BANE": 0.56, "DGI": 0.792},
    "TWeibo": {"PANE (single thread)": 0.976, "PANE (parallel)": 0.975,
               "NRP": 0.967, "DGI": 0.721},
    "MAG": {"PANE (single thread)": 0.96, "PANE (parallel)": 0.958,
            "NRP": 0.915},
}

#: Headline MAG results quoted in the abstract/introduction.
MAG_HEADLINE = {
    "attribute_inference_ap": 0.88,
    "link_prediction_ap": 0.965,
    "node_classification_micro_f1": 0.57,
    "wall_hours_10_threads": 11.9,
}
