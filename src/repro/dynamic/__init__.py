"""Time-varying graphs: incremental embedding maintenance (paper Sec. 7).

The paper lists "time-varying graphs where attributes and node connections
change over time" as future work; this package implements the natural
PANE-style solution: re-propagate affinities (linear time) and *warm-start*
the factorization from the previous embeddings instead of re-running the
SVD-based GreedyInit.
"""

from repro.dynamic.incremental import IncrementalPANE, GraphDelta

__all__ = ["IncrementalPANE", "GraphDelta"]
