"""Incremental PANE for evolving attributed networks.

Rationale: when a small fraction of edges/associations changes, the
affinity matrices move only slightly, so the previous ``Xf, Xb, Y`` are a
far better CCD seed than a fresh SVD — the same observation that motivates
GreedyInit (Sec. 3.2), applied across time steps.  The update path is:

1. apply the delta to the graph (edges and attribute associations);
2. recompute ``F′, B′`` with APMI — O(md·t), the cheap linear phase;
3. rebuild the residual caches around the *previous* embeddings;
4. run a handful of CCD sweeps (typically 1–3 instead of t).

``update()`` returns a fresh :class:`PANEEmbedding`; the wrapped graph and
embedding state advance with each call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.affinity import apmi
from repro.core.config import PANEConfig
from repro.core.greedy_init import InitState
from repro.core.pane import PANE, PANEEmbedding
from repro.core.svd_ccd import refine
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.timing import Timer


@dataclass(frozen=True)
class GraphDelta:
    """A batch of changes to apply to an attributed graph.

    Attributes
    ----------
    add_edges / remove_edges:
        Arrays of ``(source, target)`` pairs (shape ``e × 2``).
    add_associations:
        Array of ``(node, attribute, weight)`` triples (shape ``a × 3``).
    remove_associations:
        Array of ``(node, attribute)`` pairs whose entries become zero.
    """

    add_edges: np.ndarray | None = None
    remove_edges: np.ndarray | None = None
    add_associations: np.ndarray | None = None
    remove_associations: np.ndarray | None = None

    def is_empty(self) -> bool:
        return all(
            x is None or len(x) == 0
            for x in (
                self.add_edges,
                self.remove_edges,
                self.add_associations,
                self.remove_associations,
            )
        )


def apply_delta(graph: AttributedGraph, delta: GraphDelta) -> AttributedGraph:
    """Return a new graph with ``delta`` applied (input left untouched)."""
    adjacency = graph.adjacency.tolil(copy=True)
    if delta.add_edges is not None and len(delta.add_edges):
        edges = np.asarray(delta.add_edges, dtype=np.int64)
        adjacency[edges[:, 0], edges[:, 1]] = 1.0
        if not graph.directed:
            adjacency[edges[:, 1], edges[:, 0]] = 1.0
    if delta.remove_edges is not None and len(delta.remove_edges):
        edges = np.asarray(delta.remove_edges, dtype=np.int64)
        adjacency[edges[:, 0], edges[:, 1]] = 0.0
        if not graph.directed:
            adjacency[edges[:, 1], edges[:, 0]] = 0.0

    attributes = graph.attributes.tolil(copy=True)
    if delta.add_associations is not None and len(delta.add_associations):
        triples = np.asarray(delta.add_associations, dtype=np.float64)
        attributes[
            triples[:, 0].astype(np.int64), triples[:, 1].astype(np.int64)
        ] = triples[:, 2]
    if delta.remove_associations is not None and len(delta.remove_associations):
        pairs = np.asarray(delta.remove_associations, dtype=np.int64)
        attributes[pairs[:, 0], pairs[:, 1]] = 0.0

    return AttributedGraph(
        adjacency=adjacency.tocsr(),
        attributes=attributes.tocsr(),
        directed=graph.directed,
        labels=graph.labels,
        node_names=graph.node_names,
        attribute_names=graph.attribute_names,
    )


class IncrementalPANE:
    """PANE with warm-started updates over a stream of graph deltas.

    Parameters
    ----------
    k, alpha, epsilon, seed:
        As in :class:`repro.core.pane.PANE`.
    update_sweeps:
        CCD sweeps per update (1–3 suffice for small deltas).

    Examples
    --------
    >>> from repro.graph import attributed_sbm
    >>> import numpy as np
    >>> model = IncrementalPANE(k=16, seed=0)
    >>> emb0 = model.fit(attributed_sbm(n_nodes=60, n_attributes=20, seed=1))
    >>> delta = GraphDelta(add_edges=np.array([[0, 5]]))
    >>> emb1 = model.update(delta)
    >>> emb1.x_forward.shape == emb0.x_forward.shape
    True
    """

    def __init__(
        self,
        k: int = 128,
        alpha: float = 0.5,
        epsilon: float = 0.015,
        *,
        update_sweeps: int = 2,
        seed: int | None = 0,
    ) -> None:
        if update_sweeps < 0:
            raise ValueError("update_sweeps must be non-negative")
        self.config = PANEConfig(k=k, alpha=alpha, epsilon=epsilon, seed=seed)
        self.update_sweeps = update_sweeps
        self.graph: AttributedGraph | None = None
        self._embedding: PANEEmbedding | None = None

    # ------------------------------------------------------------------
    @property
    def embedding(self) -> PANEEmbedding:
        if self._embedding is None:
            raise RuntimeError("IncrementalPANE is not fitted")
        return self._embedding

    def fit(self, graph: AttributedGraph) -> PANEEmbedding:
        """Full (cold) fit via the standard PANE pipeline."""
        self.graph = graph
        self._embedding = PANE(config=self.config).fit(graph)
        return self._embedding

    def adopt(self, graph: AttributedGraph, embedding: PANEEmbedding) -> None:
        """Warm-start from externally persisted state instead of fitting.

        The warm update path is fully determined by ``(graph, Xf, Xb, Y)``
        — the residual caches are rebuilt on every refresh — so a crashed
        process can resume exactly where it left off by adopting the
        graph it reconstructed (base snapshot + log replay) and the
        embedding arrays of the last published store version.
        """
        n = graph.adjacency.shape[0]
        d = graph.attributes.shape[1]
        if embedding.x_forward.shape[0] != n or embedding.y.shape[0] != d:
            raise ValueError(
                f"embedding is {embedding.x_forward.shape[0]} nodes x "
                f"{embedding.y.shape[0]} attributes but the graph is {n} x {d}"
            )
        self.graph = graph
        self._embedding = embedding

    def update(self, delta: GraphDelta) -> PANEEmbedding:
        """Apply ``delta`` and refresh the embeddings with a warm start."""
        if self.graph is None or self._embedding is None:
            raise RuntimeError("call fit() before update()")
        if delta.is_empty():
            return self._embedding
        self.graph = apply_delta(self.graph, delta)
        return self._refresh()

    def _refresh(self) -> PANEEmbedding:
        cfg = self.config
        previous = self._embedding
        timer = Timer()
        with timer.measure("affinity"):
            pair = apmi(
                self.graph, cfg.alpha, cfg.epsilon, dangling=cfg.dangling
            )
        with timer.measure("warm_ccd"):
            state = InitState(
                x_forward=previous.x_forward.copy(),
                x_backward=previous.x_backward.copy(),
                y=previous.y.copy(),
                s_forward=previous.x_forward @ previous.y.T - pair.forward,
                s_backward=previous.x_backward @ previous.y.T - pair.backward,
            )
            refine(state, self.update_sweeps)
        self._embedding = PANEEmbedding(
            x_forward=state.x_forward,
            x_backward=state.x_backward,
            y=state.y,
            config=cfg,
            timings=dict(timer.laps),
        )
        return self._embedding
