"""Named datasets over store versions: aliases, WAL diffs, retention.

A *dataset* is a stable operator-facing name (``prod``, ``eval-2026q3``)
pinned to one immutable store version.  Names live in a single
``datasets.json`` at the store root, written atomically, so they survive
publishes, rollbacks, and GC sweeps — and make those sweeps safe: any
version a dataset names is protected from
:func:`repro.serving.gc.collect_versions`.

Because the write path is a WAL (:mod:`repro.serving.wal.log`) and every
compacted version's manifest records the ``applied_lsn`` it folded
through, the *difference* between two versions is not a guess: it is the
fold of the log records in ``(applied_lsn(A), applied_lsn(B)]``.
:func:`diff_versions` computes exactly that, with an explicit coverage
check — if pruning already deleted segments inside the range, the diff
refuses rather than silently under-reporting.

Registry file layout::

    {"schema": "repro.serving.datasets/v1",
     "datasets": {"prod": {"version": "v00000007",
                           "created_at": ..., "updated_at": ...,
                           "note": "..."}}}
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

import numpy as np

from repro.utils.fs import atomic_write

DATASETS_FILE = "datasets.json"
DATASETS_SCHEMA = "repro.serving.datasets/v1"

# Version directories are ``v`` + 8 digits; a dataset name must never be
# mistakable for one, so ``resolve`` stays unambiguous.
_VERSION_RE = re.compile(r"^v\d{8}$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class DatasetError(ValueError):
    """A dataset operation failed validation (unknown name, bad ref, ...)."""


def applied_lsn(store, version: str) -> int:
    """The WAL offset ``version`` folded through (0 for pre-WAL versions)."""
    manifest = store.manifest(version)
    return int((manifest.get("metadata") or {}).get("applied_lsn", 0))


class DatasetRegistry:
    """Named aliases over a store's versions, persisted in ``datasets.json``.

    Stateless between calls: every operation re-reads the registry file,
    so concurrent CLI invocations and a serving process see one source
    of truth (last atomic write wins, never a torn file).
    """

    def __init__(self, store) -> None:
        self.store = store
        self.path = Path(store.root) / DATASETS_FILE

    # -- file I/O -------------------------------------------------------
    def load(self) -> dict:
        """``name -> entry`` mapping (empty when no registry exists)."""
        if not self.path.exists():
            return {}
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError) as error:
            raise DatasetError(f"unreadable {DATASETS_FILE}: {error}") from error
        if not isinstance(raw, dict) or raw.get("schema") != DATASETS_SCHEMA:
            raise DatasetError(
                f"{DATASETS_FILE} has unknown schema "
                f"{raw.get('schema') if isinstance(raw, dict) else type(raw).__name__!r}"
            )
        datasets = raw.get("datasets")
        if not isinstance(datasets, dict):
            raise DatasetError(f"{DATASETS_FILE} 'datasets' must be an object")
        return datasets

    def _save(self, datasets: dict) -> None:
        payload = {"schema": DATASETS_SCHEMA, "datasets": datasets}
        atomic_write(
            self.path,
            lambda handle: handle.write(json.dumps(payload, indent=2) + "\n"),
            text=True,
        )

    # -- mutation -------------------------------------------------------
    def assign(self, name: str, version: str, *, note: str | None = None) -> dict:
        """Point ``name`` at ``version`` (which must exist); returns the entry."""
        if not _NAME_RE.match(name or ""):
            raise DatasetError(
                f"invalid dataset name {name!r}: letters, digits, '.', '_', "
                "'-' only (max 64 chars)"
            )
        if _VERSION_RE.match(name):
            raise DatasetError(
                f"dataset name {name!r} looks like a version id; pick "
                "a name that cannot shadow one"
            )
        if version not in self.store.versions():
            raise DatasetError(f"version {version!r} not found in the store")
        datasets = self.load()
        now = time.time()
        entry = dict(datasets.get(name) or {"created_at": now})
        entry.update({"version": version, "updated_at": now})
        if note is not None:
            entry["note"] = note
        datasets[name] = entry
        self._save(datasets)
        return entry

    def remove(self, name: str) -> dict:
        """Drop ``name``; returns its last entry. Unknown names raise."""
        datasets = self.load()
        if name not in datasets:
            raise DatasetError(f"unknown dataset {name!r}")
        entry = datasets.pop(name)
        self._save(datasets)
        return entry

    # -- queries --------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """A dataset name or a raw version id → the version id."""
        if _VERSION_RE.match(ref):
            return ref
        datasets = self.load()
        if ref in datasets:
            return datasets[ref]["version"]
        raise DatasetError(f"unknown dataset or version {ref!r}")

    def protected_versions(self) -> set[str]:
        """Every version some dataset names (the GC protection set)."""
        return {entry["version"] for entry in self.load().values()}

    def list_rows(self) -> list[dict]:
        """One summary row per dataset, name-sorted, for ``dataset list``."""
        versions = set(self.store.versions())
        latest = self.store.latest()
        datasets = self.load()
        rows = []
        for name in sorted(datasets):
            entry = datasets[name]
            version = entry["version"]
            row = {
                "name": name,
                "version": version,
                "exists": version in versions,
                "is_latest": version == latest,
                "created_at": entry.get("created_at"),
                "updated_at": entry.get("updated_at"),
                "note": entry.get("note"),
            }
            if row["exists"]:
                manifest = self.store.manifest(version)
                row["n_nodes"] = manifest.get("n_nodes")
                row["applied_lsn"] = int(
                    (manifest.get("metadata") or {}).get("applied_lsn", 0)
                )
            rows.append(row)
        return rows

    def dangling(self) -> dict[str, str]:
        """``name -> missing version`` for names whose version is gone."""
        versions = set(self.store.versions())
        return {
            name: entry["version"]
            for name, entry in self.load().items()
            if entry["version"] not in versions
        }


def _changed_nodes(delta) -> np.ndarray:
    """Sorted unique node ids a folded delta touches."""
    parts = []
    for edges in (delta.add_edges, delta.remove_edges):
        if edges is not None and len(edges):
            parts.append(np.asarray(edges, dtype=np.int64).ravel())
    if delta.add_associations is not None and len(delta.add_associations):
        parts.append(
            np.asarray(delta.add_associations, dtype=np.float64)[:, 0].astype(np.int64)
        )
    if delta.remove_associations is not None and len(delta.remove_associations):
        parts.append(np.asarray(delta.remove_associations, dtype=np.int64)[:, 0])
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def diff_versions(store, log, ref_a: str, ref_b: str, *, directed: bool = True):
    """What changed between two versions, folded from the WAL.

    ``ref_a`` / ``ref_b`` are dataset names or version ids.  Returns
    ``(report, delta)``: a JSON-safe report and the folded
    :class:`~repro.dynamic.incremental.GraphDelta` covering
    ``(applied_lsn(A), applied_lsn(B)]``.  Raises :class:`DatasetError`
    when A is newer than B or pruning removed records inside the range
    (an under-reported diff is worse than no diff).
    """
    registry = DatasetRegistry(store)
    version_a = registry.resolve(ref_a)
    version_b = registry.resolve(ref_b)
    for version in (version_a, version_b):
        if version not in store.versions():
            raise DatasetError(f"version {version!r} not found in the store")
    lsn_a = applied_lsn(store, version_a)
    lsn_b = applied_lsn(store, version_b)
    if lsn_a > lsn_b:
        raise DatasetError(
            f"{ref_a} ({version_a}, lsn {lsn_a}) is newer than "
            f"{ref_b} ({version_b}, lsn {lsn_b}); diff runs old -> new"
        )
    report = {
        "from": {"ref": ref_a, "version": version_a, "applied_lsn": lsn_a},
        "to": {"ref": ref_b, "version": version_b, "applied_lsn": lsn_b},
        "lsn_range": [lsn_a + 1, lsn_b] if lsn_b > lsn_a else [],
    }
    if lsn_a == lsn_b:
        from repro.dynamic.incremental import GraphDelta

        delta = GraphDelta()
        report.update(_delta_summary(delta))
        return report, delta

    view = log.inspect()
    first_available = int(view["first_lsn"]) if view["n_segments"] else 0
    last_available = int(view["last_lsn"])
    # Coverage: the oldest surviving segment must start at or before the
    # first LSN the diff needs, and the log must reach lsn_b.
    if view["n_segments"] == 0 or first_available > lsn_a + 1 or last_available < lsn_b:
        raise DatasetError(
            f"WAL does not cover LSNs ({lsn_a}, {lsn_b}]: log holds "
            f"[{first_available}, {last_available}] — records were pruned "
            "or the log was reset; the diff would under-report"
        )
    delta, folded_through = log.replay(lsn_a, end_lsn=lsn_b, directed=directed)
    if folded_through != lsn_b:
        raise DatasetError(
            f"WAL replay stopped at LSN {folded_through}, short of {lsn_b} "
            "(damaged log?); run `repro fsck --wal` and retry"
        )
    report.update(_delta_summary(delta))
    return report, delta


def _delta_summary(delta) -> dict:
    changed = _changed_nodes(delta)

    def count(array) -> int:
        return 0 if array is None else int(len(array))

    return {
        "events": {
            "add_edges": count(delta.add_edges),
            "remove_edges": count(delta.remove_edges),
            "add_associations": count(delta.add_associations),
            "remove_associations": count(delta.remove_associations),
        },
        "n_changed_nodes": int(changed.size),
        "changed_nodes": [int(node) for node in changed],
    }


def retain(store, *, keep: int, protect=(), dry_run: bool = False) -> dict:
    """GC superseded versions, never deleting one a dataset names.

    A thin policy layer over :func:`repro.serving.gc.collect_versions`:
    the protection set is the union of the caller's ``protect`` and
    every version in the dataset registry.  The report gains a
    ``"protected"`` key listing the dataset-pinned versions so an
    operator can see *why* an old version survived.
    """
    from repro.serving.gc import collect_versions

    pinned = DatasetRegistry(store).protected_versions()
    result = collect_versions(
        store, keep=keep, protect=set(protect) | pinned, dry_run=dry_run
    )
    result["protected"] = sorted(pinned)
    return result
