"""Thread-safe per-query latency and cache accounting for the query service."""

from __future__ import annotations

import threading
from collections import deque

import numpy as np


class LatencyStats:
    """Rolling latency window plus lifetime counters.

    ``record`` is called once per serviced request; a batch contributes its
    per-query mean as **one** window sample (so a single huge ``batch_top_k``
    cannot flush the whole window with copies of one number) while the
    lifetime counters still count every batch member.  ``snapshot`` returns
    a plain dict so callers can log or JSON-serialize it without holding
    the lock.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._recent: deque[float] = deque(maxlen=window)
        self._count = 0
        self._cache_hits = 0
        self._total_seconds = 0.0

    def record(self, seconds: float, *, cached: bool = False, queries: int = 1) -> None:
        if queries < 1:
            # A zero-query "batch" has no per-query latency to define; the
            # window sample would be ambiguous.  Fail loudly at the call
            # site instead of quietly skewing counters.
            raise ValueError(f"queries must be >= 1, got {queries}")
        with self._lock:
            self._count += queries
            self._total_seconds += seconds
            if cached:
                self._cache_hits += queries
            self._recent.append(seconds / queries)

    @classmethod
    def merge(cls, parts: "list[LatencyStats]", *, window: int = 2048) -> "LatencyStats":
        """Aggregate stats recorded on **disjoint** request streams.

        Built for fan-in views: per-shard stats under one router, or
        per-replica stats under one load balancer, where each recorded
        event was recorded by exactly one part.  Counters (queries, cache
        hits, total seconds) sum; the rolling windows concatenate in part
        order and keep the trailing ``window`` samples, so percentiles of
        the merged object are over a sample mix, not a time-ordered tail.
        Mind the *unit* of the parts: a scatter-gather router records one
        event per shard per logical query, so its merged ``queries``
        counts per-shard searches (``n_shards ×`` the logical volume) —
        summing is still sound, the streams just aren't logical requests.

        Do **not** merge overlapping streams — e.g. a service's own stats
        with its shards', or a stats object with itself: every query (and
        every cache hit) would be counted once per appearance, inflating
        totals and hit rates.  Summing is only sound when the streams
        partition the requests.

        Note that only the *counters* merge exactly; the window-derived
        percentiles of a merged object are approximations.  When exact
        fleet aggregation matters, use the fixed-bucket histograms in
        :mod:`repro.serving.obs.metrics`, whose cells sum losslessly.
        """
        merged = cls(window=window)
        for part in parts:
            with part._lock:
                recent = list(part._recent)
                count, hits, total = (
                    part._count,
                    part._cache_hits,
                    part._total_seconds,
                )
            merged._count += count
            merged._cache_hits += hits
            merged._total_seconds += total
            merged._recent.extend(recent)
        return merged

    def snapshot(self) -> dict:
        """Counters plus p50/p95/p99/max over the rolling window (seconds).

        The schema is fixed: the percentile keys are present even before
        the first sample (as ``0.0``, with ``samples == 0`` saying why),
        so consumers of a just-merged or just-constructed stats object —
        ``LatencyStats.merge([])`` included — never have to guard for
        missing keys.
        """
        with self._lock:
            recent = list(self._recent)
            count, hits, total = self._count, self._cache_hits, self._total_seconds
        result = {
            "queries": count,
            "cache_hits": hits,
            "cache_hit_rate": hits / count if count else 0.0,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
            "samples": len(recent),
            "p50_seconds": 0.0,
            "p95_seconds": 0.0,
            "p99_seconds": 0.0,
            "max_seconds": 0.0,
        }
        if recent:
            window = np.asarray(recent)
            result.update(
                p50_seconds=float(np.percentile(window, 50)),
                p95_seconds=float(np.percentile(window, 95)),
                p99_seconds=float(np.percentile(window, 99)),
                max_seconds=float(window.max()),
            )
        return result
