"""Online refresh: graph delta → new store version → atomic service swap.

Ties the three other serving pieces to :mod:`repro.dynamic.incremental`:

1. :class:`~repro.dynamic.incremental.IncrementalPANE` absorbs a
   :class:`~repro.dynamic.incremental.GraphDelta` with a warm-started CCD
   refresh (cheap — a few sweeps instead of a full fit);
2. the updated embedding is :meth:`published <EmbeddingStore.publish>` as a
   new immutable store version;
3. if the service is running an :class:`~repro.serving.index.IVFIndex`,
   the index is refreshed *incrementally*: the coarse quantizer is kept,
   vectors are re-assigned in one cheap pass, and only the inverted lists
   whose membership changed are rebuilt;
4. the service's active version is swapped atomically — in-flight queries
   finish on the old snapshot, new queries see the new one.

Nothing is deleted, so :meth:`EmbeddingStore.rollback` +
:meth:`QueryService.refresh_to_latest` undoes a bad refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamic.incremental import GraphDelta, IncrementalPANE
from repro.graph.attributed_graph import AttributedGraph
from repro.serving.index import IVFIndex
from repro.serving.service import QueryService
from repro.serving.sharding.pq import PQBackend
from repro.serving.sharding.router import ShardRouter
from repro.serving.sharding.store import ShardedEmbeddingStore
from repro.serving.store import EmbeddingStore
from repro.utils.timing import Timer


@dataclass(frozen=True)
class RefreshReport:
    """What one :meth:`OnlineRefresher.apply` did, and what it cost."""

    version: str
    n_nodes: int
    n_moved: int  # vectors whose IVF cell changed (0 for exact backends)
    n_lists_rebuilt: int
    n_lists_total: int
    timings: dict[str, float]  # update / publish / index / swap seconds


class OnlineRefresher:
    """Drives delta updates through the store into a live service.

    Examples
    --------
    >>> refresher = OnlineRefresher(model, store, service)  # doctest: +SKIP
    >>> report = refresher.apply(GraphDelta(add_edges=edges))  # doctest: +SKIP
    >>> report.n_lists_rebuilt <= report.n_lists_total  # doctest: +SKIP
    True
    """

    def __init__(
        self,
        model: IncrementalPANE,
        store: EmbeddingStore | ShardedEmbeddingStore,
        service: QueryService | None = None,
    ) -> None:
        self.model = model
        self.store = store
        self.service = service

    def bootstrap(
        self, graph: AttributedGraph, *, metadata: dict | None = None
    ) -> str:
        """Cold-start: fit the model, publish v1, activate it if serving.

        ``metadata`` lands in the version manifest — the WAL pipeline
        stamps ``applied_lsn`` here so recovery knows the log offset a
        version reflects.
        """
        embedding = self.model.fit(graph)
        version = self.store.publish(embedding, metadata=metadata)
        if self.service is not None:
            self.service.activate(version)
        return version

    def apply(
        self, delta: GraphDelta, *, metadata: dict | None = None
    ) -> RefreshReport:
        """Absorb ``delta`` and republish; swap the live service atomically."""
        timer = Timer()
        with timer.measure("update"):
            embedding = self.model.update(delta)
        with timer.measure("publish"):
            version = self.store.publish(embedding, metadata=metadata)

        n_moved = n_rebuilt = n_lists = 0
        new_index = None
        if self.service is not None:
            with timer.measure("index"):
                stored = self.store.open(version)
                backend = self.service.backend
                if isinstance(backend, ShardRouter):
                    # Per-shard incremental refresh: each IVF shard keeps
                    # its quantizer and rebuilds only its changed lists; a
                    # changed partition layout (node count) falls through
                    # to a full router rebuild inside activate().
                    try:
                        new_index = backend.refresh(stored)
                    except ValueError:
                        new_index = None
                    else:
                        assert new_index.last_rebuild is not None
                        n_moved = new_index.last_rebuild.n_moved
                        n_rebuilt = new_index.last_rebuild.n_lists_rebuilt
                        n_lists = new_index.last_rebuild.n_lists_total
                elif isinstance(backend, IVFIndex) and (
                    backend.features.shape == stored.features.shape
                ):
                    new_index = backend.refresh(stored.features)
                    assert new_index.last_rebuild is not None
                    n_moved = new_index.last_rebuild.n_moved
                    n_rebuilt = new_index.last_rebuild.n_lists_rebuilt
                    n_lists = new_index.last_rebuild.n_lists_total
                elif isinstance(backend, PQBackend) and (
                    backend.features.shape == stored.features.shape
                ):
                    # Keep the trained codec (and coarse quantizer for
                    # IVF-PQ); only codes/assignments are re-derived.
                    new_index = backend.refresh(stored.features)
            with timer.measure("swap"):
                self.service.activate(version, index=new_index)

        return RefreshReport(
            version=version,
            n_nodes=embedding.n_nodes,
            n_moved=n_moved,
            n_lists_rebuilt=n_rebuilt,
            n_lists_total=n_lists,
            timings=dict(timer.laps),
        )
