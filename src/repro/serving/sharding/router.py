"""Scatter-gather query routing across per-shard search backends.

:class:`ShardRouter` makes N per-shard :class:`~repro.serving.index.SearchBackend`s
answer as one logical backend: a query is *scattered* to every shard
(fanned out over the service's persistent
:class:`~repro.parallel.pool.WorkerPool` — one task per shard, so shard
latencies overlap instead of adding), each shard returns its local top-k,
and the router *gathers* them with a k-way heap merge into the global
top-k.

Bit-identity with unsharded search: every exact engine returns
*canonical* scores (:mod:`repro.search.knn`) — the float64 bits of a
(row, query) score do not depend on which sub-matrix the row was scored
from — and orders equal scores by ascending id.  Each shard's top-k list
is therefore a sorted run of exactly the values unsharded search would
have produced for those rows, and the heap merge (ordered by
``(-score, global id)``) reproduces the unsharded ranking bit-for-bit.
The per-query merge is the textbook k-way merge of ``n_shards`` sorted
runs, stopping after ``k`` pops — O(k log S), independent of corpus size.

The router also keeps one :class:`~repro.serving.stats.LatencyStats` per
shard (recorded inside the scatter tasks), so a hot shard shows up in
``QueryService.describe()`` instead of hiding in the aggregate.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.parallel.pool import WorkerPool
from repro.search.knn import CompiledFilter
from repro.serving.index import IVFIndex, SearchBackend
from repro.serving.sharding.store import Partitioner, ShardedStoredEmbedding
from repro.serving.stats import LatencyStats


class ShardRouter(SearchBackend):
    """One logical backend over N per-shard backends.

    Parameters
    ----------
    backends:
        Per-shard backends, aligned with the partitioner's shard order;
        each searches its shard's local row ids.
    partitioner:
        Global ↔ (shard, local) id arithmetic for the logical version.
    pool:
        Optional :class:`WorkerPool` for the scatter fan-out (``None`` =
        sequential).  The router must *own* its fan-out — callers must not
        wrap router calls in pool tasks of the same pool, or the scatter
        would deadlock waiting for workers occupied by its own callers.
    """

    SUPPORTS_NPROBE = True
    SUPPORTS_FILTER = True

    def __init__(
        self,
        backends: list[SearchBackend],
        partitioner: Partitioner,
        *,
        pool: WorkerPool | None = None,
    ) -> None:
        if len(backends) != partitioner.n_shards:
            raise ValueError(
                f"{len(backends)} backends for {partitioner.n_shards} shards"
            )
        for shard, backend in enumerate(backends):
            expected = partitioner.shard_size(shard)
            if backend.n_vectors != expected:
                raise ValueError(
                    f"shard {shard} backend holds {backend.n_vectors} vectors, "
                    f"partitioner expects {expected}"
                )
        self.backends = list(backends)
        self.partitioner = partitioner
        self.pool = pool
        self.shard_stats = [LatencyStats() for _ in backends]
        self.last_rebuild = None

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.backends)

    @property
    def n_vectors(self) -> int:
        return self.partitioner.n_nodes

    @property
    def dim(self) -> int:
        return self.backends[0].dim

    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
        nprobe: int | None = None,
        node_filter: CompiledFilter | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scatter to every shard, heap-merge into the global top-k.

        With exact per-shard backends the result is bit-identical to
        unsharded :class:`~repro.serving.index.ExactBackend` search (ids
        and scores).  ``nprobe`` is forwarded to shards that support it
        (IVF / IVF-PQ); ``exclude`` carries *global* ids and is translated
        to the owning shard's local id.  ``node_filter`` carries global
        ids too: each shard gets the filter *sliced* to its own rows
        (local-id mask), and shards the filter empties entirely are
        skipped without a backend call — a partition/tenant selector
        therefore only ever touches the selected shards.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        single = np.ndim(queries) == 1
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        shard_filters: list[CompiledFilter | None] = [None] * self.n_shards
        if node_filter is not None:
            if node_filter.n != self.n_vectors:
                raise ValueError(
                    f"filter covers {node_filter.n} rows, router has "
                    f"{self.n_vectors}"
                )
            if node_filter.n_allowed < self.n_vectors:
                shard_filters = [
                    node_filter.restrict(self.partitioner.shard_members(shard))
                    for shard in range(self.n_shards)
                ]
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise ValueError("exclude must have one entry per query")
            has_exclusion = exclude >= 0
            owner = np.full(n_queries, -1, dtype=np.intp)
            local = np.full(n_queries, -1, dtype=np.intp)
            if has_exclusion.any():
                owner[has_exclusion], local[has_exclusion] = (
                    self.partitioner.shard_and_local(exclude[has_exclusion])
                )

        def scatter(shard: int, backend: SearchBackend):
            start = time.perf_counter()
            shard_filter = shard_filters[shard]
            if shard_filter is not None and shard_filter.n_allowed == 0:
                # The filter keeps nothing on this shard (the common case
                # under a partition selector): skip the backend entirely.
                return (
                    np.empty((n_queries, 0), dtype=np.intp),
                    np.empty((n_queries, 0), dtype=np.float64),
                )
            shard_exclude = None
            if exclude is not None:
                shard_exclude = np.where(owner == shard, local, -1)
            kwargs = {}
            if shard_filter is not None:
                if not getattr(backend, "SUPPORTS_FILTER", False):
                    raise ValueError(
                        f"shard {shard} backend {type(backend).__name__} "
                        "does not support filtered search"
                    )
                kwargs["node_filter"] = shard_filter
            if getattr(backend, "SUPPORTS_NPROBE", False):
                local_ids, scores = backend.search(
                    queries, k, exclude=shard_exclude, nprobe=nprobe, **kwargs
                )
            else:
                local_ids, scores = backend.search(
                    queries, k, exclude=shard_exclude, **kwargs
                )
            global_ids = np.where(
                local_ids >= 0,
                self.partitioner.to_global(shard, np.clip(local_ids, 0, None)),
                -1,
            )
            self.shard_stats[shard].record(
                time.perf_counter() - start, queries=n_queries
            )
            return global_ids, scores

        if self.pool is not None:
            parts = self.pool.run_blocks(scatter, self.backends)
        else:
            parts = [scatter(s, b) for s, b in enumerate(self.backends)]

        ids, scores = _heap_merge(parts, min(k, self.n_vectors))
        if single:
            return ids[0], scores[0]
        return ids, scores

    # ------------------------------------------------------------------
    def refresh(self, stored: ShardedStoredEmbedding) -> "ShardRouter":
        """A new router over refreshed per-shard backends.

        Every shard keeps its *kind* and its trained state: IVF backends
        refresh incrementally (quantizer kept, only changed inverted
        lists rebuilt — see :meth:`IVFIndex.refresh`), PQ/IVF-PQ backends
        keep their codec (and coarse quantizer) and only re-encode, and
        exact backends just point at the new segment matrix.  Aggregate
        IVF rebuild work lands in :attr:`last_rebuild`.  Requires the
        logical version to keep the same partition layout (same node
        count).
        """
        from repro.serving.index import ExactBackend, IVFRebuildStats
        from repro.serving.sharding.pq import PQBackend

        if stored.partitioner != self.partitioner:
            raise ValueError(
                "refresh requires an identical partition layout "
                "(node count changes need a full router rebuild)"
            )
        backends: list[SearchBackend] = []
        moved = rebuilt = total = 0
        for shard, segment in enumerate(stored.shards):
            backend = self.backends[shard]
            if isinstance(backend, IVFIndex) and (
                backend.features.shape == segment.features.shape
            ):
                refreshed = backend.refresh(segment.features)
                assert refreshed.last_rebuild is not None
                moved += refreshed.last_rebuild.n_moved
                rebuilt += refreshed.last_rebuild.n_lists_rebuilt
                total += refreshed.last_rebuild.n_lists_total
                backends.append(refreshed)
            elif isinstance(backend, PQBackend) and (
                backend.features.shape == segment.features.shape
            ):
                backends.append(backend.refresh(segment.features))
            elif isinstance(backend, ExactBackend):
                backends.append(ExactBackend(segment.features))
            else:
                # An unknown (or shape-changed) backend kind cannot be
                # refreshed in place; signal the caller to rebuild the
                # router from its configuration instead of silently
                # downgrading the shard.
                raise ValueError(
                    f"shard {shard} backend {type(backend).__name__} does "
                    "not support incremental refresh; rebuild the router"
                )
        router = ShardRouter(backends, stored.partitioner, pool=self.pool)
        router.last_rebuild = IVFRebuildStats(
            n_moved=moved, n_lists_rebuilt=rebuilt, n_lists_total=total
        )
        return router


def _heap_merge(
    parts: list[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """K-way merge of per-shard sorted top-k runs into global top-k rows.

    Each part's rows are sorted by ``(-score, id)`` (the canonical engine
    order); ``heapq.merge`` on ``(-score, global id)`` keys pops the
    global order lazily, so only ``k`` elements per query are ever sorted.
    Shard padding (id ``-1``) is dropped before the merge; rows that still
    cannot fill ``k`` pad the tail with id ``-1`` / score ``-inf``.
    """
    n_queries = parts[0][0].shape[0]
    ids = np.full((n_queries, k), -1, dtype=np.intp)
    scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
    for row in range(n_queries):
        runs = []
        for part_ids, part_scores in parts:
            valid = part_ids[row] >= 0
            if valid.any():
                runs.append(
                    list(
                        zip(
                            -part_scores[row][valid],
                            part_ids[row][valid].tolist(),
                        )
                    )
                )
        for column, (neg_score, global_id) in enumerate(heapq.merge(*runs)):
            if column >= k:
                break
            ids[row, column] = global_id
            scores[row, column] = -neg_score
    return ids, scores
