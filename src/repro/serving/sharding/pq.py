"""Product quantization: compressed-resident search backends.

For memory-bound corpora the float64 feature matrix is the cost driver:
``n × dim × 8`` bytes must stay hot for brute-force or IVF serving.
:class:`PQCodec` cuts the *resident* requirement ~16-64x by splitting the
``dim`` dimensions into ``m`` subspaces and k-means-quantizing each to
``2**n_bits`` codewords — a row becomes ``m`` uint8 codes; the float
matrix stays on disk, memory-mapped, and is only paged in for the handful
of rows a query actually rescores.

Search is the classic two-stage ADC (asymmetric distance computation)
pipeline:

1. **ADC scan** — per query, one ``m × 2**bits`` lookup table of
   query-subvector · codeword inner products turns scoring a row into
   ``m`` table gathers + adds over uint8 codes (no float rows touched);
2. **exact rescore** — the top ``rescore_factor × k`` ADC candidates are
   rescored against the full-precision (mmapped) rows with
   :func:`repro.search.knn.canonical_scores`, so returned scores carry
   the same bits as the exact engine for the same rows.

:class:`PQBackend` scans all codes; :class:`IVFPQBackend` adds the same
spherical-k-means coarse quantizer the IVF index uses and ADC-scans only
the probed cells.  Both backends persist to a single ``.npz`` via
``save_arrays``/``from_arrays`` (see ``EmbeddingStore.save_index``).
"""

from __future__ import annotations

import numpy as np

from repro.search.knn import CompiledFilter, canonical_scores, top_k_sorted_indices
from repro.serving.index import (
    SearchBackend,
    _assign,
    _build_lists,
    _train_spherical_kmeans,
    filtered_probe_width,
)
from repro.utils.rng import ensure_rng

# Query rows per chunk in the batched ADC scan: bounds the transient
# (chunk × n) float32 accumulator (64 × 1M rows = 256 MB) per chunk.
_ADC_QUERY_CHUNK = 64

_ENCODE_CHUNK = 8192  # rows per chunk when encoding / assigning codewords


class PQCodec:
    """Subspace k-means codebooks: encode/decode and ADC lookup tables.

    Attributes
    ----------
    boundaries:
        Subspace split points over the ``dim`` axis (length ``m + 1``);
        subspaces may differ by one dimension when ``m ∤ dim``.
    codebooks:
        One ``(ksub, dsub_j)`` float64 array per subspace.
    n_bits:
        Bits per code; ``ksub = 2**n_bits`` (≤ 8 so codes fit uint8).
    """

    def __init__(self, boundaries: np.ndarray, codebooks: list[np.ndarray], n_bits: int) -> None:
        self.boundaries = np.asarray(boundaries, dtype=np.intp)
        self.codebooks = [np.asarray(c, dtype=np.float64) for c in codebooks]
        self.n_bits = int(n_bits)

    @property
    def n_subspaces(self) -> int:
        return len(self.codebooks)

    @property
    def dim(self) -> int:
        return int(self.boundaries[-1])

    @property
    def ksub(self) -> int:
        return self.codebooks[0].shape[0]

    def codebook_bytes(self) -> int:
        return sum(int(c.nbytes) for c in self.codebooks)

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        *,
        n_subspaces: int | None = None,
        n_bits: int = 8,
        seed: int | np.random.Generator | None = 0,
        train_size: int = 65536,
        n_iter: int = 15,
    ) -> "PQCodec":
        """Train subspace codebooks on (a sample of) ``features``.

        ``n_subspaces`` defaults to ``dim // 8`` (8 dimensions per code,
        64x fewer resident bytes than float64), clamped to ``[1, dim]``.
        """
        features = np.asarray(features)
        n, dim = features.shape
        if n == 0:
            raise ValueError("cannot train a codec on an empty matrix")
        if not 1 <= n_bits <= 8:
            raise ValueError(f"n_bits must be in [1, 8], got {n_bits}")
        if n_subspaces is None:
            n_subspaces = max(1, min(dim, dim // 8))
        if not 1 <= n_subspaces <= dim:
            raise ValueError(f"n_subspaces must be in [1, {dim}], got {n_subspaces}")
        rng = ensure_rng(seed)
        if n > train_size:
            sample = np.sort(rng.choice(n, size=train_size, replace=False))
            train = np.asarray(features[sample], dtype=np.float64)
        else:
            train = np.asarray(features, dtype=np.float64)
        sizes = [len(block) for block in np.array_split(np.arange(dim), n_subspaces)]
        boundaries = np.concatenate([[0], np.cumsum(sizes)]).astype(np.intp)
        ksub = min(2**n_bits, train.shape[0])
        codebooks = [
            _train_kmeans(
                train[:, boundaries[j] : boundaries[j + 1]], ksub, rng, n_iter
            )
            for j in range(n_subspaces)
        ]
        return cls(boundaries, codebooks, n_bits)

    # ------------------------------------------------------------------
    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize rows to ``(n, m)`` uint8 codes (nearest codeword each)."""
        vectors = np.asarray(vectors)
        n = vectors.shape[0]
        codes = np.empty((n, self.n_subspaces), dtype=np.uint8)
        for j, codebook in enumerate(self.codebooks):
            lo, hi = self.boundaries[j], self.boundaries[j + 1]
            sq = (codebook**2).sum(axis=1)
            for start in range(0, n, _ENCODE_CHUNK):
                stop = min(start + _ENCODE_CHUNK, n)
                block = np.asarray(vectors[start:stop, lo:hi], dtype=np.float64)
                # argmin ||x - c||² = argmin ||c||² - 2 x·c (x² is constant)
                dists = sq[np.newaxis, :] - 2.0 * (block @ codebook.T)
                codes[start:stop, j] = np.argmin(dists, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (approximate) float rows from codes."""
        codes = np.asarray(codes)
        out = np.empty((codes.shape[0], self.dim), dtype=np.float64)
        for j, codebook in enumerate(self.codebooks):
            out[:, self.boundaries[j] : self.boundaries[j + 1]] = codebook[codes[:, j]]
        return out

    def adc_tables(self, queries: np.ndarray) -> list[np.ndarray]:
        """Per-subspace ``(q, ksub)`` inner-product lookup tables.

        ``score(query, row) ≈ Σ_j tables[j][query, codes[row, j]]`` — the
        asymmetric part: queries stay full precision, rows are codes.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [
            queries[:, self.boundaries[j] : self.boundaries[j + 1]] @ codebook.T
            for j, codebook in enumerate(self.codebooks)
        ]

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Mean squared L2 reconstruction error over ``vectors``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        delta = vectors - self.decode(self.encode(vectors))
        return float((delta**2).sum(axis=1).mean())

    # -- persistence ----------------------------------------------------
    def save_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "pq_boundaries": self.boundaries,
            "pq_bits": np.array(self.n_bits, dtype=np.int64),
        }
        for j, codebook in enumerate(self.codebooks):
            arrays[f"pq_codebook_{j}"] = codebook
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PQCodec":
        boundaries = np.asarray(arrays["pq_boundaries"], dtype=np.intp)
        codebooks = [
            np.asarray(arrays[f"pq_codebook_{j}"], dtype=np.float64)
            for j in range(len(boundaries) - 1)
        ]
        return cls(boundaries, codebooks, int(arrays["pq_bits"]))


class PQBackend(SearchBackend):
    """Flat ADC scan over PQ codes with exact rescoring of candidates.

    The float ``features`` matrix is kept only as the rescoring source —
    when it is a store mmap, queries page in just the shortlisted
    candidate rows, so the resident working set is the uint8 code matrix
    plus codebooks (:meth:`memory_info` reports the ratio).

    The shortlist is ``max(rescore_factor × k, min_rescore)`` rows.  The
    floor matters on clustered data: quantization collapses intra-cluster
    distinctions, so ADC can rank *clusters* but not reliably rank rows
    *within* the query's own cluster — the shortlist must roughly cover
    it.  Rescoring is a per-row dot over the shortlist, orders of
    magnitude cheaper than the O(n·m) scan that produced it, so a
    four-digit floor costs little and decouples recall from ``k``.
    """

    SUPPORTS_FILTER = True
    # search() accepts a per-query ``rescore_factor`` override (the
    # service's SearchParams hint) widening or narrowing the ADC
    # shortlist for one request without touching the configured default.
    SUPPORTS_RESCORE_FACTOR = True

    def __init__(
        self,
        features: np.ndarray,
        codec: PQCodec,
        *,
        rescore_factor: int = 8,
        min_rescore: int = 1024,
        codes: np.ndarray | None = None,
    ) -> None:
        if codec.dim != features.shape[1]:
            raise ValueError(
                f"codec dim {codec.dim} != features dim {features.shape[1]}"
            )
        if rescore_factor < 1:
            raise ValueError(f"rescore_factor must be >= 1, got {rescore_factor}")
        if min_rescore < 1:
            raise ValueError(f"min_rescore must be >= 1, got {min_rescore}")
        self.features = features
        self.codec = codec
        self.rescore_factor = rescore_factor
        self.min_rescore = min_rescore
        if codes is None:
            codes = codec.encode(features)
        elif codes.shape != (features.shape[0], codec.n_subspaces):
            raise ValueError(
                f"codes shape {codes.shape} != "
                f"({features.shape[0]}, {codec.n_subspaces})"
            )
        self.codes = np.asarray(codes, dtype=np.uint8)
        # Column-contiguous code columns: the ADC scan gathers one column
        # per subspace, and strided uint8 gathers are measurably slower.
        self._code_columns = [
            np.ascontiguousarray(self.codes[:, j])
            for j in range(codec.n_subspaces)
        ]

    # ------------------------------------------------------------------
    def memory_info(self) -> dict:
        """Resident bytes (codes + codebooks) vs full-precision bytes."""
        code_bytes = int(self.codes.nbytes)
        codebook_bytes = self.codec.codebook_bytes()
        float_bytes = int(
            self.features.shape[0] * self.features.shape[1] * 8
        )
        resident = code_bytes + codebook_bytes
        return {
            "code_bytes": code_bytes,
            "codebook_bytes": codebook_bytes,
            "resident_bytes": resident,
            "float_bytes": float_bytes,
            "compression_ratio": float_bytes / resident if resident else 0.0,
        }

    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
        node_filter: CompiledFilter | None = None,
        rescore_factor: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        single = np.ndim(queries) == 1
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise ValueError("exclude must have one entry per query")
        k = min(k, self.n_vectors)
        if node_filter is not None:
            if node_filter.n != self.n_vectors:
                raise ValueError(
                    f"filter covers {node_filter.n} rows, backend has "
                    f"{self.n_vectors}"
                )
            if node_filter.n_allowed < self.n_vectors:
                return self._search_filtered(
                    queries, k, exclude, node_filter, single, rescore_factor
                )
        ids = np.full((n_queries, k), -1, dtype=np.intp)
        scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
        n_candidates = min(self.n_vectors, self._shortlist_size(k, rescore_factor))
        for start in range(0, n_queries, _ADC_QUERY_CHUNK):
            stop = min(start + _ADC_QUERY_CHUNK, n_queries)
            adc = self._adc_scan(queries[start:stop])
            if exclude is not None:
                chunk_exclude = exclude[start:stop]
                masked = chunk_exclude >= 0
                adc[np.nonzero(masked)[0], chunk_exclude[masked]] = -np.inf
            shortlist = np.argpartition(-adc, n_candidates - 1, axis=1)[
                :, :n_candidates
            ]
            for row in range(stop - start):
                candidates = shortlist[row]
                if exclude is not None and exclude[start + row] >= 0:
                    candidates = candidates[candidates != exclude[start + row]]
                row_ids, row_scores = self._rescore(
                    queries[start + row], np.sort(candidates), k
                )
                ids[start + row, : row_ids.shape[0]] = row_ids
                scores[start + row, : row_scores.shape[0]] = row_scores
        if single:
            return ids[0], scores[0]
        return ids, scores

    def _search_filtered(
        self,
        queries: np.ndarray,
        k: int,
        exclude: np.ndarray | None,
        node_filter: CompiledFilter,
        single: bool,
        rescore_factor: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Filtered ADC: scan only the allowed rows' codes, then rescore.

        The filter is applied *before* the ADC scan — the code columns are
        gathered down to the allowed subset, so scan cost scales with the
        filter's selectivity instead of wasting table lookups on rows the
        filter would discard.  Shortlisting and the exact canonical
        rescore then run on (ascending) global ids, so returned scores
        are bit-identical to filtered-exact for the same rows.
        """
        n_queries = queries.shape[0]
        ids = np.full((n_queries, k), -1, dtype=np.intp)
        scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
        allowed = node_filter.allowed_ids()
        if allowed.size:
            columns = [column[allowed] for column in self._code_columns]
            n_candidates = min(allowed.size, self._shortlist_size(k, rescore_factor))
            for start in range(0, n_queries, _ADC_QUERY_CHUNK):
                stop = min(start + _ADC_QUERY_CHUNK, n_queries)
                tables = self.codec.adc_tables(queries[start:stop])
                adc = np.zeros((stop - start, allowed.size), dtype=np.float32)
                for table, column in zip(tables, columns):
                    adc += table.astype(np.float32)[:, column]
                shortlist = np.argpartition(-adc, n_candidates - 1, axis=1)[
                    :, :n_candidates
                ]
                for row in range(stop - start):
                    candidates = allowed[shortlist[row]]
                    if exclude is not None and exclude[start + row] >= 0:
                        candidates = candidates[candidates != exclude[start + row]]
                    row_ids, row_scores = self._rescore(
                        queries[start + row], np.sort(candidates), k
                    )
                    ids[start + row, : row_ids.shape[0]] = row_ids
                    scores[start + row, : row_scores.shape[0]] = row_scores
        if single:
            return ids[0], scores[0]
        return ids, scores

    def _shortlist_size(self, k: int, rescore_factor: int | None = None) -> int:
        factor = self.rescore_factor if rescore_factor is None else rescore_factor
        if factor < 1:
            raise ValueError(f"rescore_factor must be >= 1, got {factor}")
        return max(k * factor, self.min_rescore)

    def _adc_scan(self, queries: np.ndarray) -> np.ndarray:
        """``(q, n)`` approximate inner products from the code columns.

        float32 accumulation: the scan only *selects* candidates (exact
        float64 rescoring orders the final k), so half-width adds are free
        precision to give away for 2x memory bandwidth.
        """
        tables = self.codec.adc_tables(queries)
        acc = np.zeros((queries.shape[0], self.n_vectors), dtype=np.float32)
        for table, column in zip(tables, self._code_columns):
            acc += table.astype(np.float32)[:, column]
        return acc

    def _rescore(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact canonical top-k among ascending candidate ids."""
        if candidates.shape[0] == 0:
            return np.empty(0, dtype=np.intp), np.empty(0)
        exact = canonical_scores(self.features, candidates, query)
        top = top_k_sorted_indices(exact, min(k, candidates.shape[0]))
        return candidates[top], exact[top]

    # ------------------------------------------------------------------
    def refresh(self, features: np.ndarray) -> "PQBackend":
        """A new backend over updated ``features``, keeping the codec.

        Online-refresh companion to :meth:`IVFIndex.refresh`: codebook
        training (the expensive part) is reused; only the uint8 codes are
        re-derived in one chunked encode pass.  Requires an unchanged
        shape — node count changes need a full rebuild.
        """
        features = np.asarray(features)
        if features.shape != (self.n_vectors, self.dim):
            raise ValueError(
                f"refresh features shape {features.shape} != "
                f"{(self.n_vectors, self.dim)} (requires a full rebuild)"
            )
        return PQBackend(
            features,
            self.codec,
            rescore_factor=self.rescore_factor,
            min_rescore=self.min_rescore,
        )

    # -- persistence ----------------------------------------------------
    def save_arrays(self) -> dict[str, np.ndarray]:
        arrays = self.codec.save_arrays()
        arrays["codes"] = self.codes
        arrays["rescore_factor"] = np.array(self.rescore_factor, dtype=np.int64)
        arrays["min_rescore"] = np.array(self.min_rescore, dtype=np.int64)
        return arrays

    @classmethod
    def from_arrays(
        cls, features: np.ndarray, arrays: dict[str, np.ndarray]
    ) -> "PQBackend":
        codes = np.asarray(arrays["codes"], dtype=np.uint8)
        if codes.shape[0] != features.shape[0]:
            raise ValueError(
                f"saved codes cover {codes.shape[0]} vectors, "
                f"features has {features.shape[0]}"
            )
        return cls(
            features,
            PQCodec.from_arrays(arrays),
            rescore_factor=int(arrays["rescore_factor"]),
            min_rescore=int(arrays["min_rescore"]),
            codes=codes,
        )


class IVFPQBackend(PQBackend):
    """IVF-PQ: coarse cells bound the ADC scan to the probed lists.

    The same spherical k-means coarse quantizer as
    :class:`~repro.serving.index.IVFIndex` partitions rows into ``nlist``
    cells; a query ADC-scores only the codes in its ``nprobe`` nearest
    cells, then exact-rescores the shortlist.  ``nprobe`` is the same
    recall/latency knob (``SUPPORTS_NPROBE``).
    """

    SUPPORTS_NPROBE = True

    def __init__(
        self,
        features: np.ndarray,
        codec: PQCodec,
        *,
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int | np.random.Generator | None = 0,
        rescore_factor: int = 8,
        min_rescore: int = 1024,
        codes: np.ndarray | None = None,
        centroids: np.ndarray | None = None,
        assignments: np.ndarray | None = None,
    ) -> None:
        super().__init__(
            features,
            codec,
            rescore_factor=rescore_factor,
            min_rescore=min_rescore,
            codes=codes,
        )
        n = features.shape[0]
        if centroids is None:
            if nlist is None:
                nlist = max(1, min(n, int(round(np.sqrt(n)))))
            if not 1 <= nlist <= n:
                raise ValueError(f"nlist must be in [1, {n}], got {nlist}")
            rng = ensure_rng(seed)
            centroids = _train_spherical_kmeans(
                features, nlist, rng, train_size=max(65536, nlist), n_iter=10
            )
        self.centroids = np.asarray(centroids, dtype=np.float64)
        if assignments is None:
            assignments = _assign(features, self.centroids)
        self.assignments = np.asarray(assignments, dtype=np.intp)
        self._lists = _build_lists(self.assignments, self.centroids.shape[0])
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.nprobe = min(nprobe, self.nlist)

    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
        nprobe: int | None = None,
        node_filter: CompiledFilter | None = None,
        rescore_factor: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nprobe = self.nprobe if nprobe is None else min(max(1, nprobe), self.nlist)
        single = np.ndim(queries) == 1
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise ValueError("exclude must have one entry per query")
        k = min(k, self.n_vectors)
        if node_filter is not None:
            if node_filter.n != self.n_vectors:
                raise ValueError(
                    f"filter covers {node_filter.n} rows, backend has "
                    f"{self.n_vectors}"
                )
            if node_filter.n_allowed == self.n_vectors:
                node_filter = None
            else:
                # Same selectivity-driven widening as IVFIndex: keep the
                # expected per-query candidate count what the unfiltered
                # nprobe was tuned for.
                nprobe = filtered_probe_width(
                    nprobe, self.nlist, node_filter.selectivity
                )
        n_candidates = self._shortlist_size(k, rescore_factor)
        centroid_sims = queries @ self.centroids.T
        tables = self.codec.adc_tables(queries)
        ids = np.full((n_queries, k), -1, dtype=np.intp)
        scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
        for row in range(n_queries):
            probes = top_k_sorted_indices(centroid_sims[row], nprobe)
            candidates = np.sort(
                np.concatenate([self._lists[cell] for cell in probes])
            )
            if node_filter is not None:
                # Mask before the ADC scan: disallowed codes never reach
                # the lookup-table accumulation below.
                candidates = candidates[node_filter.allows(candidates)]
            if exclude is not None and exclude[row] >= 0:
                position = np.searchsorted(candidates, exclude[row])
                if (
                    position < candidates.shape[0]
                    and candidates[position] == exclude[row]
                ):
                    candidates = np.delete(candidates, position)
            if candidates.shape[0] == 0:
                continue
            adc = np.zeros(candidates.shape[0], dtype=np.float32)
            candidate_codes = self.codes[candidates]
            for j, table in enumerate(tables):
                adc += table[row].astype(np.float32)[candidate_codes[:, j]]
            keep = top_k_sorted_indices(
                adc, min(n_candidates, candidates.shape[0])
            )
            row_ids, row_scores = self._rescore(
                queries[row], np.sort(candidates[keep]), k
            )
            ids[row, : row_ids.shape[0]] = row_ids
            scores[row, : row_scores.shape[0]] = row_scores
        if single:
            return ids[0], scores[0]
        return ids, scores

    # ------------------------------------------------------------------
    def refresh(self, features: np.ndarray) -> "IVFPQBackend":
        """Keep the codec *and* the coarse quantizer; re-encode + re-assign."""
        features = np.asarray(features)
        if features.shape != (self.n_vectors, self.dim):
            raise ValueError(
                f"refresh features shape {features.shape} != "
                f"{(self.n_vectors, self.dim)} (requires a full rebuild)"
            )
        return IVFPQBackend(
            features,
            self.codec,
            nprobe=self.nprobe,
            rescore_factor=self.rescore_factor,
            min_rescore=self.min_rescore,
            centroids=self.centroids,
        )

    # -- persistence ----------------------------------------------------
    def save_arrays(self) -> dict[str, np.ndarray]:
        arrays = super().save_arrays()
        arrays["coarse_centroids"] = self.centroids
        arrays["coarse_assignments"] = self.assignments
        arrays["nprobe"] = np.array(self.nprobe, dtype=np.int64)
        return arrays

    @classmethod
    def from_arrays(
        cls, features: np.ndarray, arrays: dict[str, np.ndarray]
    ) -> "IVFPQBackend":
        codes = np.asarray(arrays["codes"], dtype=np.uint8)
        if codes.shape[0] != features.shape[0]:
            raise ValueError(
                f"saved codes cover {codes.shape[0]} vectors, "
                f"features has {features.shape[0]}"
            )
        return cls(
            features,
            PQCodec.from_arrays(arrays),
            nprobe=int(arrays["nprobe"]),
            rescore_factor=int(arrays["rescore_factor"]),
            min_rescore=int(arrays["min_rescore"]),
            codes=codes,
            centroids=np.asarray(arrays["coarse_centroids"], dtype=np.float64),
            assignments=np.asarray(arrays["coarse_assignments"], dtype=np.intp),
        )


def _train_kmeans(
    train: np.ndarray, ksub: int, rng: np.random.Generator, n_iter: int
) -> np.ndarray:
    """Plain (Euclidean) Lloyd k-means for one PQ subspace."""
    m = train.shape[0]
    if ksub >= m:
        # Degenerate: every training row is its own codeword.
        return train[:ksub].copy() if ksub == m else np.pad(
            train, ((0, ksub - m), (0, 0)), mode="edge"
        )
    centroids = train[np.sort(rng.choice(m, size=ksub, replace=False))].copy()
    assignments = np.full(m, -1, dtype=np.intp)
    for _ in range(max(1, n_iter)):
        sq = (centroids**2).sum(axis=1)
        new_assignments = np.empty(m, dtype=np.intp)
        for start in range(0, m, _ENCODE_CHUNK):
            stop = min(start + _ENCODE_CHUNK, m)
            dists = sq[np.newaxis, :] - 2.0 * (train[start:stop] @ centroids.T)
            new_assignments[start:stop] = np.argmin(dists, axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for cell in range(ksub):
            members = train[assignments == cell]
            if members.shape[0] == 0:
                centroids[cell] = train[int(rng.integers(m))]
            else:
                centroids[cell] = members.mean(axis=0)
    return centroids
