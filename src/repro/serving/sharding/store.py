"""Sharded embedding store: N mmap segments behind one logical version.

A :class:`ShardedEmbeddingStore` partitions embedding rows across ``N``
independent :class:`~repro.serving.store.EmbeddingStore` segments — each
with its own versioned ``.npy`` mmap files — and publishes all of them as
one *atomic logical version*.  Layout under the root::

    <root>/
      sharding.json            # {n_shards, partition} — fixed at creation
      LATEST                   # logical version pointer (atomic_write)
      versions/
        v00000001.json         # logical manifest: shard -> segment version
      shards/
        shard-0000/            # a plain EmbeddingStore root
        shard-0001/
        ...

Publish order makes the logical version atomic without cross-directory
rename tricks: every segment version is written (and renamed into place)
first, then the logical manifest naming them is staged with
:func:`repro.utils.fs.atomic_write` discipline and *hard-linked* into
``versions/`` — the link either claims the version name or fails with
``EEXIST`` (a concurrent publisher won), in which case the next id is
taken.  A reader that can open the manifest can therefore always open
every segment it names.  A crash mid-publish leaves only unreferenced
segment versions behind — never a partial logical version.

Rows are split by a :class:`Partitioner` (``range`` = contiguous blocks,
``hash`` = round-robin ``id % n_shards``); both map global ↔ (shard,
local) ids with O(1) arithmetic, no lookup tables.  The attribute matrix
``Y`` is replicated into every segment (it is ``d × k/2`` — small next to
``n × k`` node matrices) so each shard can answer attribute queries
locally.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.pane import PANEEmbedding
from repro.serving.store import STAGING_PREFIX, EmbeddingStore, StoredEmbedding
from repro.utils.fs import atomic_write, chmod_default_file

SHARDING_SCHEMA = "repro.serving.sharding/v1"
_SHARDING_FILE = "sharding.json"


@dataclass(frozen=True)
class Partitioner:
    """O(1) global ↔ (shard, local) id arithmetic for one logical version.

    ``range``: shard ``s`` owns the contiguous block
    ``[boundaries[s], boundaries[s+1])`` (``np.array_split`` sizes).
    ``hash``: shard ``s`` owns every id with ``id % n_shards == s``; the
    local id is ``id // n_shards``.
    """

    kind: str
    n_shards: int
    n_nodes: int
    boundaries: tuple[int, ...]  # len n_shards + 1; ranges only (else empty)

    @classmethod
    def build(cls, kind: str, n_shards: int, n_nodes: int) -> "Partitioner":
        if kind not in ("range", "hash"):
            raise ValueError(f"partition kind must be range/hash, got {kind!r}")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if kind == "range":
            sizes = [len(block) for block in np.array_split(np.arange(n_nodes), n_shards)]
            boundaries = tuple(int(b) for b in np.concatenate([[0], np.cumsum(sizes)]))
        else:
            boundaries = ()
        return cls(kind=kind, n_shards=n_shards, n_nodes=n_nodes, boundaries=boundaries)

    @classmethod
    def from_manifest(cls, spec: dict) -> "Partitioner":
        return cls(
            kind=spec["kind"],
            n_shards=int(spec["n_shards"]),
            n_nodes=int(spec["n_nodes"]),
            boundaries=tuple(int(b) for b in spec.get("boundaries", ())),
        )

    def to_manifest(self) -> dict:
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "n_nodes": self.n_nodes,
            "boundaries": list(self.boundaries),
        }

    # ------------------------------------------------------------------
    def shard_members(self, shard: int) -> np.ndarray:
        """The global ids shard ``shard`` owns, ascending."""
        if self.kind == "range":
            return np.arange(self.boundaries[shard], self.boundaries[shard + 1])
        return np.arange(shard, self.n_nodes, self.n_shards)

    def shard_size(self, shard: int) -> int:
        if self.kind == "range":
            return self.boundaries[shard + 1] - self.boundaries[shard]
        n, s = self.n_nodes, self.n_shards
        return (n - shard + s - 1) // s

    def shard_and_local(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized global id → (shard, local id)."""
        ids = np.asarray(ids, dtype=np.intp)
        if self.kind == "range":
            bounds = np.asarray(self.boundaries, dtype=np.intp)
            shards = np.searchsorted(bounds, ids, side="right") - 1
            return shards, ids - bounds[shards]
        return ids % self.n_shards, ids // self.n_shards

    def to_global(self, shard: int, local_ids: np.ndarray) -> np.ndarray:
        """Vectorized (shard, local id) → global id."""
        local_ids = np.asarray(local_ids, dtype=np.intp)
        if self.kind == "range":
            return local_ids + self.boundaries[shard]
        return local_ids * self.n_shards + shard


class _ShardedRows:
    """A read-only virtual row matrix over per-shard mmapped arrays.

    Supports exactly what the :class:`~repro.serving.service.QueryService`
    needs from a stored array: integer / fancy row indexing (gather) and
    ``@ vector`` (per-shard matmul scattered back into global row order) —
    so the service's query paths work unchanged on a sharded snapshot.
    """

    def __init__(self, stored: "ShardedStoredEmbedding", name: str) -> None:
        self._stored = stored
        self._name = name
        self._arrays = [getattr(segment, name) for segment in stored.shards]

    @property
    def shape(self) -> tuple[int, int]:
        return (self._stored.n_nodes, self._arrays[0].shape[1])

    @property
    def nbytes(self) -> int:
        return sum(int(array.nbytes) for array in self._arrays)

    def __len__(self) -> int:
        return self.shape[0]

    def __getitem__(self, ids):
        partitioner = self._stored.partitioner
        if np.ndim(ids) == 0:
            index = int(ids)
            if index < 0:
                index += self.shape[0]
            shards, locals_ = partitioner.shard_and_local(np.array([index]))
            return np.asarray(
                self._arrays[int(shards[0])][int(locals_[0])], dtype=np.float64
            )
        ids = np.asarray(ids, dtype=np.intp)
        shards, locals_ = partitioner.shard_and_local(ids)
        out = np.empty((ids.shape[0], self.shape[1]), dtype=np.float64)
        for shard in np.unique(shards):
            mask = shards == shard
            out[mask] = np.asarray(self._arrays[shard][locals_[mask]])
        return out

    def __matmul__(self, other: np.ndarray) -> np.ndarray:
        """Per-shard ``segment @ other`` scattered into global row order."""
        other = np.asarray(other)
        parts = [np.asarray(array) @ other for array in self._arrays]
        out_shape = (self.shape[0],) + parts[0].shape[1:]
        out = np.empty(out_shape, dtype=parts[0].dtype)
        for shard, part in enumerate(parts):
            out[self._stored.partitioner.shard_members(shard)] = part
        return out


@dataclass(frozen=True)
class ShardedStoredEmbedding:
    """A logical version opened for serving: one snapshot over N segments.

    Duck-types the parts of :class:`~repro.serving.store.StoredEmbedding`
    the query service touches; per-row data stays memory-mapped inside the
    segment ``StoredEmbedding``s.
    """

    version: str
    manifest: dict
    partitioner: Partitioner
    shards: tuple[StoredEmbedding, ...]

    @property
    def n_nodes(self) -> int:
        return self.partitioner.n_nodes

    @property
    def n_attributes(self) -> int:
        return self.shards[0].n_attributes

    @property
    def config(self):
        return self.shards[0].config

    @property
    def y(self) -> np.ndarray:
        # Y is replicated per segment; any copy serves attribute queries.
        return self.shards[0].y

    @property
    def features(self) -> _ShardedRows:
        return _ShardedRows(self, "features")

    @property
    def x_forward(self) -> _ShardedRows:
        return _ShardedRows(self, "x_forward")

    @property
    def x_backward(self) -> _ShardedRows:
        return _ShardedRows(self, "x_backward")

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def segment_versions(self) -> list[str]:
        return [segment.version for segment in self.shards]


class ShardedEmbeddingStore:
    """N segment stores published and served as one logical store.

    Parameters
    ----------
    root:
        Store root.  An existing sharded root fixes ``n_shards`` and
        ``partition``; passing conflicting values raises.
    n_shards:
        Segment count when creating a new root (required then).
    partition:
        ``"range"`` (contiguous blocks, the creation default) or
        ``"hash"`` (round-robin) row partitioning.  ``None`` (default)
        means "whatever the root records" when reopening; a non-``None``
        value must match an existing root's recorded layout.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        n_shards: int | None = None,
        partition: str | None = None,
    ) -> None:
        self.root = Path(root)
        spec_path = self.root / _SHARDING_FILE
        if spec_path.is_file():
            spec = json.loads(spec_path.read_text())
            if n_shards is not None and n_shards != spec["n_shards"]:
                raise ValueError(
                    f"store at {self.root} has {spec['n_shards']} shards; "
                    f"cannot reopen with n_shards={n_shards}"
                )
            if partition is not None and partition != spec["partition"]:
                raise ValueError(
                    f"store at {self.root} is {spec['partition']}-partitioned; "
                    f"cannot reopen with partition={partition!r}"
                )
            self.n_shards = int(spec["n_shards"])
            self.partition = spec["partition"]
        else:
            if n_shards is None:
                raise ValueError(
                    f"{self.root} is not a sharded store; pass n_shards to create one"
                )
            if n_shards < 1:
                raise ValueError(f"n_shards must be >= 1, got {n_shards}")
            partition = "range" if partition is None else partition
            if partition not in ("range", "hash"):
                raise ValueError(
                    f"partition must be range/hash, got {partition!r}"
                )
            self.n_shards = n_shards
            self.partition = partition
            self.root.mkdir(parents=True, exist_ok=True)
            spec = {
                "schema": SHARDING_SCHEMA,
                "n_shards": n_shards,
                "partition": partition,
            }
            atomic_write(
                spec_path,
                lambda handle: handle.write(json.dumps(spec, indent=2) + "\n"),
                text=True,
            )
        (self.root / "versions").mkdir(parents=True, exist_ok=True)
        self._segments = [
            EmbeddingStore(self.root / "shards" / f"shard-{shard:04d}")
            for shard in range(self.n_shards)
        ]

    # -- classification ------------------------------------------------
    @staticmethod
    def is_sharded_root(root: str | Path) -> bool:
        """Whether ``root`` holds a sharded store (CLI auto-detection)."""
        return (Path(root) / _SHARDING_FILE).is_file()

    def segment_store(self, shard: int) -> EmbeddingStore:
        """The plain :class:`EmbeddingStore` behind segment ``shard``."""
        return self._segments[shard]

    # -- queries -------------------------------------------------------
    def versions(self) -> list[str]:
        """All published logical version names, oldest first."""
        return sorted(
            entry.stem
            for entry in (self.root / "versions").glob("v*.json")
            if entry.is_file()
        )

    def latest(self) -> str | None:
        pointer = self.root / "LATEST"
        if not pointer.exists():
            return None
        name = pointer.read_text().strip()
        return name or None

    def manifest(self, version: str) -> dict:
        path = self.root / "versions" / f"{version}.json"
        if not path.is_file():
            raise FileNotFoundError(f"version {version!r} not found in {self.root}")
        return json.loads(path.read_text())

    # -- publish / open ------------------------------------------------
    def publish(
        self,
        embedding: PANEEmbedding,
        *,
        metadata: dict | None = None,
        set_latest: bool = True,
    ) -> str:
        """Partition ``embedding`` across the segments as one logical version.

        Every segment version lands on disk before the logical manifest
        that names them is linked into ``versions/`` — readers either see
        a fully materialized logical version or none.  Returns the logical
        version name (authoritative: concurrent publishers retry onto the
        next free id, exactly like :meth:`EmbeddingStore.publish`).
        """
        partitioner = Partitioner.build(
            self.partition, self.n_shards, embedding.n_nodes
        )
        segment_versions = []
        for shard in range(self.n_shards):
            members = partitioner.shard_members(shard)
            piece = PANEEmbedding(
                x_forward=embedding.x_forward[members],
                x_backward=embedding.x_backward[members],
                y=embedding.y,
                config=embedding.config,
            )
            segment_versions.append(
                self._segments[shard].publish(
                    piece,
                    metadata={"shard": shard, "n_shards": self.n_shards},
                    set_latest=False,
                )
            )

        existing = self.versions()
        next_id = 1 + (int(existing[-1][1:]) if existing else 0)
        version = f"v{next_id:08d}"
        manifest = {
            "schema": SHARDING_SCHEMA,
            "version": version,
            "created_at": time.time(),
            "n_nodes": int(embedding.n_nodes),
            "n_attributes": int(embedding.y.shape[0]),
            "k": int(embedding.config.k),
            "partitioner": partitioner.to_manifest(),
            "shards": [
                {
                    "shard": shard,
                    "version": segment_versions[shard],
                    "n_nodes": int(partitioner.shard_size(shard)),
                }
                for shard in range(self.n_shards)
            ],
            "metadata": metadata or {},
        }

        fd, staging = tempfile.mkstemp(
            prefix=f"{STAGING_PREFIX}manifest.", suffix=".json", dir=self.root
        )
        try:
            chmod_default_file(fd)
            while True:
                manifest["version"] = version
                with os.fdopen(os.dup(fd), "w") as handle:
                    handle.seek(0)
                    handle.truncate()
                    json.dump(manifest, handle, indent=2)
                target = self.root / "versions" / f"{version}.json"
                try:
                    # link(2) fails with EEXIST instead of overwriting, so
                    # the version name is claimed atomically; os.replace
                    # would silently clobber a concurrent publisher.
                    os.link(staging, target)
                    break
                except OSError as error:
                    if error.errno != errno.EEXIST:
                        raise
                    version = f"v{int(version[1:]) + 1:08d}"
        finally:
            os.close(fd)
            os.unlink(staging)
        if set_latest:
            self.set_latest(version)
        return version

    def open(self, version: str | None = None) -> ShardedStoredEmbedding:
        """Open a logical version (default latest) across all segments."""
        if version is None:
            version = self.latest()
            if version is None:
                raise FileNotFoundError(f"store at {self.root} has no versions")
        manifest = self.manifest(version)
        partitioner = Partitioner.from_manifest(manifest["partitioner"])
        shards = tuple(
            self._segments[entry["shard"]].open(entry["version"])
            for entry in manifest["shards"]
        )
        return ShardedStoredEmbedding(
            version=version,
            manifest=manifest,
            partitioner=partitioner,
            shards=shards,
        )

    # -- pointer management --------------------------------------------
    def set_latest(self, version: str) -> None:
        """Atomically point ``LATEST`` at logical ``version`` (must exist)."""
        self.manifest(version)  # raises FileNotFoundError if missing
        atomic_write(
            self.root / "LATEST",
            lambda handle: handle.write(version + "\n"),
            text=True,
        )

    def rollback(self, to: str | None = None) -> str:
        """Point ``LATEST`` back (default: the version before latest)."""
        if to is None:
            versions = self.versions()
            current = self.latest()
            if current not in versions:
                raise ValueError("cannot infer rollback target: no latest version")
            position = versions.index(current)
            if position == 0:
                raise ValueError(
                    f"{current} is the oldest version; nothing to roll back to"
                )
            to = versions[position - 1]
        self.set_latest(to)
        return to

    # -- index artifact fan-out ----------------------------------------
    def save_shard_indexes(self, version: str, backends) -> list[Path | None]:
        """Persist each shard backend into its segment's version directory.

        ``backends`` aligns with the shard order of logical ``version``.
        Exact backends have nothing to persist and record ``None``.
        """
        manifest = self.manifest(version)
        paths: list[Path | None] = []
        for entry, backend in zip(manifest["shards"], backends):
            segment = self._segments[entry["shard"]]
            paths.append(segment.save_index(entry["version"], backend))
        return paths

    def load_shard_indexes(
        self, stored: ShardedStoredEmbedding, kind: str
    ) -> list:
        """Per-shard persisted backends for ``stored`` (``None`` where absent)."""
        return [
            self._segments[shard].load_index(
                segment.version, kind, segment.features
            )
            for shard, segment in enumerate(stored.shards)
        ]
