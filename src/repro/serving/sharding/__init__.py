"""Sharded serving: multi-segment stores, PQ compression, scatter-gather.

Scales the PR-2 serving layer past one mmap segment and one resident
float64 matrix:

- :class:`ShardedEmbeddingStore` — rows partitioned across N independent
  :class:`~repro.serving.store.EmbeddingStore` segments, published as one
  atomic logical version (``store.py``);
- :class:`PQCodec` / :class:`PQBackend` / :class:`IVFPQBackend` — product
  quantization: uint8 codes + ADC scan + exact rescoring, ~16-64x smaller
  resident vectors (``pq.py``);
- :class:`ShardRouter` — scatter-gather over per-shard backends with a
  heap merge that is bit-identical to unsharded exact search
  (``router.py``).

See the sharding section of ``docs/SERVING.md``.
"""

from repro.serving.sharding.pq import IVFPQBackend, PQBackend, PQCodec
from repro.serving.sharding.router import ShardRouter
from repro.serving.sharding.store import (
    Partitioner,
    ShardedEmbeddingStore,
    ShardedStoredEmbedding,
)

__all__ = [
    "IVFPQBackend",
    "PQBackend",
    "PQCodec",
    "Partitioner",
    "ShardRouter",
    "ShardedEmbeddingStore",
    "ShardedStoredEmbedding",
]
