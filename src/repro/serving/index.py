"""ANN search backends: one interface, exact and IVF implementations.

``SearchBackend`` is the contract the :class:`~repro.serving.service.QueryService`
speaks: cosine top-k of query *vectors* against a fixed, unit-row-normalized
matrix.  Two implementations:

- :class:`ExactBackend` — brute force, delegating to the tiled
  ``argpartition`` engine in :mod:`repro.search.knn` (that module *is* the
  exact backend; this class only adapts it to the interface).
- :class:`IVFIndex` — inverted-file index: a spherical k-means coarse
  quantizer partitions the vectors into ``nlist`` cells; a query scores
  only the cells whose centroids it is closest to (``nprobe`` of them) and
  rescores those candidates against the full-precision vectors.  ``nprobe``
  is the recall/latency knob: 1 = fastest, ``nlist`` = exhaustive, which
  reproduces :class:`ExactBackend` bit-for-bit (the search delegates to the
  identical exact engine, single and batch queries alike).

Everything is pure numpy and seeded through
:func:`repro.utils.rng.ensure_rng`, like :mod:`repro.core.randsvd`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.search.knn import (
    CompiledFilter,
    canonical_scores,
    exact_top_k,
    normalize_rows,
    select_shortlist_size,
    top_k_sorted_indices,
)
from repro.utils.rng import ensure_rng

# Below this many vectors an IVF's python-level per-query overhead beats no
# one; the "auto" factory serves brute force instead.
AUTO_EXACT_THRESHOLD = 4096

_ASSIGN_CHUNK = 8192  # rows per chunk in full-matrix centroid assignment


def filtered_probe_width(nprobe: int, nlist: int, selectivity: float) -> int:
    """Selectivity-driven ``nprobe`` widening for filtered IVF scans.

    A filter keeping a fraction ``s`` of the corpus thins every inverted
    list by ~``s``, so the candidate pool behind the usual ``nprobe``
    probes shrinks ~``1/s``-fold and recall craters under selective
    filters.  Probing ``nprobe / s`` cells restores the *expected
    candidate count* of the unfiltered scan — the invariant the recall
    floor was tuned against.  Saturates at ``nlist`` (an exhaustive scan
    of the allowed set; with rescoring the caller can then delegate to
    the exact engine, whose gather path is itself cheap at exactly the
    selectivities that saturate this).
    """
    if selectivity <= 0.0:
        return nlist
    return min(nlist, max(nprobe, int(np.ceil(nprobe / selectivity))))


class SearchBackend(abc.ABC):
    """Cosine top-k search over a fixed matrix of unit-norm rows."""

    features: np.ndarray  # (n, dim), unit rows

    # Whether search() accepts the per-query ``nprobe`` recall knob; the
    # QueryService dispatches on this instead of isinstance checks so new
    # backends (IVF-PQ, the shard router) opt in with one attribute.
    SUPPORTS_NPROBE = False

    # Whether search() accepts a per-query ``node_filter``
    # (:class:`repro.search.knn.CompiledFilter`); same attribute-dispatch
    # pattern as SUPPORTS_NPROBE.
    SUPPORTS_FILTER = False

    @property
    def n_vectors(self) -> int:
        return self.features.shape[0]

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    @abc.abstractmethod
    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ids and similarities per query row, descending.

        ``queries`` is ``(q, dim)`` (or a single ``dim`` vector → 1-D
        result); ``exclude`` optionally masks one row id per query
        (``-1`` = none).  Rows that cannot fill ``k`` results (an IVF
        probing sparsely populated cells) are padded with id ``-1`` and
        similarity ``-inf``.
        """


class ExactBackend(SearchBackend):
    """Brute-force exact backend over :mod:`repro.search.knn`.

    The fallback for small corpora and the ground truth the IVF index is
    measured against.  ``features`` must already have unit rows.

    ``select_dtype="float32"`` opts in to the float32 *selection* path:
    the backend keeps a float32 copy of the matrix (cast once here, not
    per query) and :func:`repro.search.knn.exact_top_k` selects an
    oversampled shortlist with it before the canonical float64 rescore.
    Returned scores stay bit-identical to the float64 engine whenever
    the shortlist covers the true top-k — asserted on the bench corpus
    by ``benchmarks/bench_serving.py``.
    """

    SUPPORTS_FILTER = True
    # search() accepts a per-query ``select_dtype`` override (the service's
    # SearchParams hint); the cast-once float32 copy is only used when the
    # effective dtype matches the configured one, otherwise exact_top_k
    # casts on the fly.
    SUPPORTS_SELECT_DTYPE = True

    def __init__(self, features: np.ndarray, *, select_dtype: str = "float64") -> None:
        if select_dtype not in ("float64", "float32"):
            raise ValueError(
                f"select_dtype must be 'float64' or 'float32', got {select_dtype!r}"
            )
        self.features = features
        self.select_dtype = select_dtype
        self._select32 = (
            np.asarray(features, dtype=np.float32)
            if select_dtype == "float32"
            else None
        )

    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
        node_filter: CompiledFilter | None = None,
        select_dtype: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        effective = self.select_dtype if select_dtype is None else select_dtype
        return exact_top_k(
            self.features,
            queries,
            k,
            assume_normalized=True,
            exclude=exclude,
            select_dtype=effective,
            select_features=(
                self._select32 if effective == self.select_dtype else None
            ),
            node_filter=node_filter,
        )


@dataclass(frozen=True)
class IVFRebuildStats:
    """What an online :meth:`IVFIndex.refresh` actually had to redo."""

    n_moved: int  # vectors whose cell assignment changed
    n_lists_rebuilt: int  # inverted lists recomputed
    n_lists_total: int


class IVFIndex(SearchBackend):
    """Inverted-file ANN index with a spherical k-means coarse quantizer.

    ``SUPPORTS_NPROBE`` — ``search`` takes a per-query ``nprobe``.

    Parameters
    ----------
    features:
        ``n × dim`` matrix of unit-norm rows (e.g.
        :attr:`repro.serving.store.StoredEmbedding.features`).
    nlist:
        Number of k-means cells (default ``≈ √n``, clamped to ``[1, n]``).
    nprobe:
        Default number of cells scored per query.
    seed:
        RNG seed for centroid init (and training subsample), making index
        construction deterministic like the rest of the pipeline.
    train_size:
        k-means runs on at most this many sampled rows (raised to ``nlist``
        when necessary, since initialization draws one distinct training
        point per cell); the full matrix is assigned in one chunked pass
        afterwards.
    n_iter:
        Lloyd iterations.
    select_dtype:
        ``"float64"`` (default) or ``"float32"`` — run the candidate
        *selector* (the gather + GEMV over the probed cells' rows, the
        per-query hot spot) in float32 against a resident float32 copy
        of the matrix, selecting an oversampled shortlist that is then
        rescored with the canonical float64 einsum.  Returned scores
        stay canonical; the same shortlist-covers-the-answer rationale
        as :func:`repro.search.knn.exact_top_k`'s float32 path.  Costs
        ``n × dim × 4`` resident bytes.
    """

    SUPPORTS_NPROBE = True
    SUPPORTS_FILTER = True

    def __init__(
        self,
        features: np.ndarray,
        *,
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int | np.random.Generator | None = 0,
        train_size: int = 65536,
        n_iter: int = 10,
        select_dtype: str = "float64",
    ) -> None:
        features = np.asarray(features)
        n = features.shape[0]
        if n == 0:
            raise ValueError("cannot index an empty matrix")
        if nlist is None:
            nlist = max(1, min(n, int(round(np.sqrt(n)))))
        if not 1 <= nlist <= n:
            raise ValueError(f"nlist must be in [1, {n}], got {nlist}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.features = features
        self.nprobe = min(nprobe, nlist)
        rng = ensure_rng(seed)
        self.centroids = _train_spherical_kmeans(
            features,
            nlist,
            rng,
            # Centroid init samples nlist distinct training rows, so the
            # training population must be at least nlist.
            train_size=max(train_size, nlist),
            n_iter=n_iter,
        )
        self.assignments = _assign(features, self.centroids)
        self._lists = _build_lists(self.assignments, nlist)
        self.last_rebuild: IVFRebuildStats | None = None
        self.set_select_dtype(select_dtype)

    def set_select_dtype(self, select_dtype: str) -> "IVFIndex":
        """Switch the candidate-selector precision (see ``select_dtype``).

        Exposed as a method (not just a constructor arg) because indexes
        reloaded from persisted artifacts (:meth:`from_arrays`) are built
        float64 and opt in afterwards.  Returns ``self`` for chaining.
        """
        if select_dtype not in ("float64", "float32"):
            raise ValueError(
                f"select_dtype must be 'float64' or 'float32', got {select_dtype!r}"
            )
        self.select_dtype = select_dtype
        self._select32 = (
            np.asarray(self.features, dtype=np.float32)
            if select_dtype == "float32"
            else None
        )
        return self

    # ------------------------------------------------------------------
    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    @property
    def lists(self) -> list[np.ndarray]:
        """The inverted lists (sorted id arrays), index = cell id."""
        return self._lists

    def list_sizes(self) -> np.ndarray:
        return np.array([lst.shape[0] for lst in self._lists])

    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
        nprobe: int | None = None,
        rescore: bool = True,
        node_filter: CompiledFilter | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """IVF top-k: probe ``nprobe`` cells, rescore candidates exactly.

        With ``rescore=False`` candidates are ranked by their cell
        centroid's similarity to the query instead of their own (cheaper,
        much coarser — ties within a cell break by id).  With
        ``nprobe >= nlist`` and ``rescore=True`` the search is exhaustive
        and bit-identical to :class:`ExactBackend` — it delegates to the
        same engine, so the guarantee holds for batch queries too.

        ``node_filter`` restricts the candidate pool per probed list and
        widens ``nprobe`` by the filter's selectivity
        (:func:`filtered_probe_width`), so recall against filtered-exact
        holds even under ~1%-selective filters; once the widened probe
        count saturates ``nlist`` the search delegates to the (filtered)
        exact engine.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nprobe = self.nprobe if nprobe is None else min(max(1, nprobe), self.nlist)
        if node_filter is not None:
            if node_filter.n != self.n_vectors:
                raise ValueError(
                    f"filter covers {node_filter.n} rows, index has "
                    f"{self.n_vectors}"
                )
            if node_filter.n_allowed == self.n_vectors:
                node_filter = None
            else:
                nprobe = filtered_probe_width(
                    nprobe, self.nlist, node_filter.selectivity
                )
        if rescore and nprobe >= self.nlist:
            return exact_top_k(
                self.features, queries, k, assume_normalized=True, exclude=exclude,
                # The exact engine's float32 path is bit-identical, so
                # the nprobe >= nlist guarantee survives the opt-in.
                select_dtype=self.select_dtype,
                select_features=self._select32,
                node_filter=node_filter,
            )
        single = np.ndim(queries) == 1
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        queries32 = (
            queries.astype(np.float32) if self._select32 is not None else None
        )
        n_queries = queries.shape[0]
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise ValueError("exclude must have one entry per query")

        k = min(k, self.n_vectors)
        centroid_sims = queries @ self.centroids.T  # (q, nlist)
        # Probe selection for the whole batch in one argpartition: probe
        # *order* is irrelevant (candidates are re-sorted), so the k-wide
        # sort per row of top_k_sorted_indices would be pure overhead.
        if nprobe >= self.nlist:
            probes_all = np.broadcast_to(
                np.arange(self.nlist), (n_queries, self.nlist)
            )
        else:
            probes_all = np.argpartition(-centroid_sims, nprobe - 1, axis=1)[
                :, :nprobe
            ]
        ids = np.full((n_queries, k), -1, dtype=np.intp)
        scores = np.full((n_queries, k), -np.inf, dtype=np.float64)
        for row in range(n_queries):
            excluded = -1 if exclude is None else int(exclude[row])
            query32 = None if queries32 is None else queries32[row]
            if node_filter is None:
                row_ids, row_scores = self._search_one(
                    queries[row],
                    k,
                    probes_all[row],
                    centroid_sims[row],
                    excluded,
                    rescore,
                    query32,
                )
            else:
                row_ids, row_scores = self._search_one_filtered(
                    queries[row],
                    k,
                    probes_all[row],
                    centroid_sims[row],
                    excluded,
                    rescore,
                    query32,
                    node_filter,
                )
            ids[row, : row_ids.shape[0]] = row_ids
            scores[row, : row_scores.shape[0]] = row_scores
        if single:
            return ids[0], scores[0]
        return ids, scores

    def _search_one(
        self,
        query: np.ndarray,
        k: int,
        probes: np.ndarray,
        centroid_sims: np.ndarray,
        excluded: int,
        rescore: bool,
        query32: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if probes.shape[0] == self.nlist:
            # Full coverage without rescoring still scores exactly: ranking
            # every vector by its cell centroid would be strictly worse for
            # the same cost, so there is nothing coarser to fall back to.
            # GEMV selects; the winners are rescored canonically like every
            # other exact path (see repro.search.knn module docstring).
            if query32 is not None:
                sel = self._select32 @ query32
                if excluded >= 0:
                    sel[excluded] = -np.inf
                prelim = top_k_sorted_indices(
                    sel, select_shortlist_size(k, sel.shape[0])
                )
                canon = canonical_scores(self.features, prelim, query)
                canon[sel[prelim] == -np.inf] = -np.inf
                order = np.lexsort((prelim, -canon))[:k]
                return prelim[order], canon[order]
            candidate_scores = self.features @ query
            if excluded >= 0:
                candidate_scores[excluded] = -np.inf
            prelim = top_k_sorted_indices(candidate_scores, k)
            canon = canonical_scores(self.features, prelim, query)
            canon[candidate_scores[prelim] == -np.inf] = -np.inf
            order = np.lexsort((prelim, -canon))
            return prelim[order], canon[order]

        candidates = np.sort(np.concatenate([self._lists[j] for j in probes]))
        if excluded >= 0:
            position = np.searchsorted(candidates, excluded)
            if position < candidates.shape[0] and candidates[position] == excluded:
                candidates = np.delete(candidates, position)
        if candidates.shape[0] == 0:
            return np.empty(0, dtype=np.intp), np.empty(0)
        if rescore:
            if query32 is not None:
                # Float32 selector over an oversampled shortlist, then
                # canonical float64 rescore of the shortlist — the gather
                # + GEMV here is the per-query hot spot, and float32
                # moves half the bytes.  The final k are chosen by the
                # *canonical* scores (ties ascending id), so the result
                # matches the float64 selector whenever the shortlist
                # covers its top-k — the oversample + slack exist to make
                # that hold through float32 rounding at the boundary.
                selector = self._select32[candidates] @ query32
                top = top_k_sorted_indices(
                    selector, select_shortlist_size(k, candidates.shape[0])
                )
                shortlist = candidates[top]
                canon = canonical_scores(self.features, shortlist, query)
                order = np.lexsort((shortlist, -canon))[:k]
                return shortlist[order], canon[order]
            # GEMV *selects* (fast over the whole candidate set), then only
            # the k winners are rescored canonically — same split as the
            # exact engine, so returned bits and tie order (ascending id,
            # via the lexsort secondary key) match it for the same rows.
            selector = self.features[candidates] @ query
            top = top_k_sorted_indices(selector, min(k, candidates.shape[0]))
            chosen = candidates[top]
            canon = canonical_scores(self.features, chosen, query)
            order = np.lexsort((chosen, -canon))
            return chosen[order], canon[order]
        candidate_scores = centroid_sims[self.assignments[candidates]]
        top = top_k_sorted_indices(candidate_scores, min(k, candidates.shape[0]))
        return candidates[top], candidate_scores[top]

    def _search_one_filtered(
        self,
        query: np.ndarray,
        k: int,
        probes: np.ndarray,
        centroid_sims: np.ndarray,
        excluded: int,
        rescore: bool,
        query32: np.ndarray | None,
        node_filter: CompiledFilter,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query filtered scan: the per-list mask variant of `_search_one`.

        Kept separate so the unfiltered per-query path stays literally
        untouched.  Candidates from the probed lists pass through the
        filter mask *before* any scoring; selection and canonical rescore
        then run on the surviving pool exactly like the unfiltered scan,
        so returned scores carry the same bits filtered-exact reports for
        the same rows.
        """
        if probes.shape[0] == self.nlist:
            candidates = node_filter.allowed_ids()
        else:
            candidates = np.sort(
                np.concatenate([self._lists[j] for j in probes])
            )
            candidates = candidates[node_filter.allows(candidates)]
        if excluded >= 0:
            position = np.searchsorted(candidates, excluded)
            if position < candidates.shape[0] and candidates[position] == excluded:
                candidates = np.delete(candidates, position)
        if candidates.shape[0] == 0:
            return np.empty(0, dtype=np.intp), np.empty(0)
        if not rescore:
            candidate_scores = centroid_sims[self.assignments[candidates]]
            top = top_k_sorted_indices(
                candidate_scores, min(k, candidates.shape[0])
            )
            return candidates[top], candidate_scores[top]
        if query32 is not None:
            selector = self._select32[candidates] @ query32
            top = top_k_sorted_indices(
                selector, select_shortlist_size(k, candidates.shape[0])
            )
            shortlist = candidates[top]
            canon = canonical_scores(self.features, shortlist, query)
            order = np.lexsort((shortlist, -canon))[:k]
            return shortlist[order], canon[order]
        selector = self.features[candidates] @ query
        top = top_k_sorted_indices(selector, min(k, candidates.shape[0]))
        chosen = candidates[top]
        canon = canonical_scores(self.features, chosen, query)
        order = np.lexsort((chosen, -canon))
        return chosen[order], canon[order]

    # ------------------------------------------------------------------
    def refresh(self, features: np.ndarray) -> "IVFIndex":
        """A new index over updated ``features``, reusing the quantizer.

        Built for online refresh after a
        :class:`~repro.dynamic.incremental.IncrementalPANE` delta: the
        centroids are kept, every vector is (cheaply) re-assigned, and only
        the inverted lists whose membership actually changed are rebuilt —
        unchanged lists share their id arrays with this index.  The
        returned index records what moved in :attr:`last_rebuild`.
        """
        features = np.asarray(features)
        if features.shape != self.features.shape:
            raise ValueError(
                f"refresh features shape {features.shape} != {self.features.shape}"
                " (node count changes require a full rebuild)"
            )
        new_assignments = _assign(features, self.centroids)
        moved = np.nonzero(new_assignments != self.assignments)[0]
        affected = np.union1d(self.assignments[moved], new_assignments[moved])

        clone = object.__new__(IVFIndex)
        clone.features = features
        clone.nprobe = self.nprobe
        clone.centroids = self.centroids
        clone.assignments = new_assignments
        lists = list(self._lists)
        for cell in affected:
            departed = moved[self.assignments[moved] == cell]
            arrived = moved[new_assignments[moved] == cell]
            kept = np.setdiff1d(lists[cell], departed, assume_unique=True)
            lists[cell] = np.union1d(kept, arrived)
        clone._lists = lists
        clone.last_rebuild = IVFRebuildStats(
            n_moved=int(moved.shape[0]),
            n_lists_rebuilt=int(affected.shape[0]),
            n_lists_total=self.nlist,
        )
        # The selector precision is a serving-time knob: carry it across
        # the refresh (the float32 copy must be re-cast from the *new*
        # features, not shared with the old index).
        clone.set_select_dtype(self.select_dtype)
        return clone

    # -- persistence ---------------------------------------------------
    def save_arrays(self) -> dict[str, np.ndarray]:
        """The arrays that reconstruct this index next to its ``features``.

        The inverted lists are *not* saved: they are a deterministic
        function of ``assignments`` (:func:`_build_lists`), cheap to
        rebuild at load time and redundant on disk.
        """
        return {
            "centroids": self.centroids,
            "assignments": self.assignments,
            "nprobe": np.array(self.nprobe, dtype=np.int64),
        }

    @classmethod
    def from_arrays(
        cls, features: np.ndarray, arrays: dict[str, np.ndarray]
    ) -> "IVFIndex":
        """Rebuild an index from :meth:`save_arrays` output + the matrix."""
        assignments = np.asarray(arrays["assignments"], dtype=np.intp)
        if assignments.shape[0] != features.shape[0]:
            raise ValueError(
                f"saved index covers {assignments.shape[0]} vectors, "
                f"features has {features.shape[0]}"
            )
        index = object.__new__(cls)
        index.features = features
        index.centroids = np.asarray(arrays["centroids"], dtype=np.float64)
        index.nprobe = int(arrays["nprobe"])
        index.assignments = assignments
        index._lists = _build_lists(assignments, index.centroids.shape[0])
        index.last_rebuild = None
        # Selector precision is a runtime knob, not a persisted artifact:
        # reloads start float64; the owner opts in via set_select_dtype.
        index.set_select_dtype("float64")
        return index


def resolve_kind(kind: str, n_vectors: int) -> str:
    """Resolve ``"auto"`` to a concrete backend kind for ``n_vectors``."""
    if kind == "auto":
        return "exact" if n_vectors < AUTO_EXACT_THRESHOLD else "ivf"
    return kind


def make_backend(
    features: np.ndarray,
    kind: str = "auto",
    *,
    nlist: int | None = None,
    nprobe: int = 8,
    seed: int | np.random.Generator | None = 0,
    pq_subspaces: int | None = None,
    pq_bits: int = 8,
    select_dtype: str = "float64",
) -> SearchBackend:
    """Backend factory: ``"exact"``, ``"ivf"``, ``"pq"``, ``"ivfpq"``, ``"auto"``.

    ``"auto"`` serves brute force below :data:`AUTO_EXACT_THRESHOLD`
    vectors (where IVF's per-query overhead wins nothing) and IVF above.
    The PQ kinds trade exactness for ~16-32x smaller resident vectors —
    see :mod:`repro.serving.sharding.pq`.  ``select_dtype`` applies to
    the exact and IVF kinds (see :class:`ExactBackend` /
    :class:`IVFIndex`); the PQ kinds have their own uint8 selector.
    """
    kind = resolve_kind(kind, features.shape[0])
    if kind == "exact" or features.shape[0] == 0:
        # Nothing to quantize in an empty matrix (an empty shard of a
        # sharded store); brute force over zero rows is the only backend
        # that degenerates gracefully.
        return ExactBackend(features, select_dtype=select_dtype)
    if kind == "ivf":
        return IVFIndex(
            features, nlist=nlist, nprobe=nprobe, seed=seed,
            select_dtype=select_dtype,
        )
    if kind in ("pq", "ivfpq"):
        # Local import: sharding.pq imports this module for SearchBackend.
        from repro.serving.sharding.pq import IVFPQBackend, PQBackend, PQCodec

        codec = PQCodec.fit(
            features, n_subspaces=pq_subspaces, n_bits=pq_bits, seed=seed
        )
        if kind == "pq":
            return PQBackend(features, codec)
        return IVFPQBackend(
            features, codec, nlist=nlist, nprobe=nprobe, seed=seed
        )
    raise ValueError(
        f"unknown backend kind {kind!r} (expected exact/ivf/pq/ivfpq/auto)"
    )


# ---------------------------------------------------------------------------
# Spherical k-means quantizer (pure numpy, seeded)
# ---------------------------------------------------------------------------


def _train_spherical_kmeans(
    features: np.ndarray,
    nlist: int,
    rng: np.random.Generator,
    *,
    train_size: int,
    n_iter: int,
) -> np.ndarray:
    """Unit-norm centroids maximizing within-cell cosine similarity."""
    n = features.shape[0]
    if nlist == 1:
        return normalize_rows(np.asarray(features).mean(axis=0, keepdims=True))
    if n > train_size:
        sample = np.sort(rng.choice(n, size=train_size, replace=False))
        train = np.asarray(features[sample])
    else:
        train = np.asarray(features)
    m = train.shape[0]
    centroids = train[np.sort(rng.choice(m, size=nlist, replace=False))].copy()

    assignments = np.full(m, -1, dtype=np.intp)
    for _ in range(max(1, n_iter)):
        new_assignments = _assign(train, centroids)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for cell in range(nlist):
            members = train[assignments == cell]
            if members.shape[0] == 0:
                # Re-seed an empty cell from a random training point.
                centroids[cell] = train[int(rng.integers(m))]
            else:
                centroids[cell] = members.mean(axis=0)
        centroids = normalize_rows(centroids)
    return centroids


def _assign(features: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid (max cosine) cell per row, chunked to bound memory."""
    n = features.shape[0]
    assignments = np.empty(n, dtype=np.intp)
    for start in range(0, n, _ASSIGN_CHUNK):
        stop = min(start + _ASSIGN_CHUNK, n)
        sims = np.asarray(features[start:stop]) @ centroids.T
        assignments[start:stop] = np.argmax(sims, axis=1)
    return assignments


def _build_lists(assignments: np.ndarray, nlist: int) -> list[np.ndarray]:
    """Sorted inverted lists from an assignment vector (one pass)."""
    order = np.argsort(assignments, kind="stable")
    sorted_cells = assignments[order]
    boundaries = np.searchsorted(sorted_cells, np.arange(nlist + 1))
    return [
        np.sort(order[boundaries[c] : boundaries[c + 1]]) for c in range(nlist)
    ]
