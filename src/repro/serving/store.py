"""Versioned, memory-mapped embedding store.

The durable half of the serving split: :class:`EmbeddingStore` persists
trained :class:`~repro.core.pane.PANEEmbedding`s as immutable, numbered
versions that the in-memory :class:`~repro.serving.service.QueryService`
maps and serves.  Layout under the store root::

    <root>/
      LATEST                     # pointer file, swapped with os.replace
      versions/
        v00000001/
          manifest.json          # config + shapes + metadata
          x_forward.npy          # raw Xf (n × k/2)
          x_backward.npy         # raw Xb
          y.npy                  # raw Y  (d × k/2)
          features.npy           # unit-row [Xf̂ ‖ X̂b] search matrix

Design notes:

- **One ``.npy`` per array, not a single ``.npz``.**  ``np.load`` only
  honors ``mmap_mode`` for bare ``.npy`` files (zip members are read into
  memory), and the whole point of the store is that a multi-million-node
  matrix is paged in on demand rather than resident.
- **Atomic publish.**  A version is staged in a temp directory in the
  store root and ``os.rename``d into ``versions/`` — readers either see a
  complete version or none.  The ``LATEST`` pointer is a one-line file
  replaced with ``os.replace``, so "latest" flips atomically and
  :meth:`rollback` is just pointing it at an older version.
- **``features`` is precomputed at publish time**: each k/2 half is
  row-normalized, concatenated, and the concatenation normalized again —
  exactly the rows :func:`repro.search.knn.top_k_similar` scores — so
  the serving path never re-normalizes an ``n × k`` matrix per query.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass
from dataclasses import fields as dataclass_fields
from pathlib import Path

import numpy as np

from repro.core.config import PANEConfig
from repro.core.pane import PANEEmbedding
from repro.search.knn import normalize_rows
from repro.utils.fs import atomic_write, chmod_default_dir

MANIFEST_SCHEMA = "repro.serving.store/v1"
_ARRAY_FILES = ("x_forward", "x_backward", "y", "features")

# Every in-flight staging directory starts with this prefix, so a
# publisher killed mid-publish leaves debris ``repro fsck`` can recognize
# and GC — and that ``versions()`` can never mistake for a real version
# (real versions start with "v", staging dirs with ".").
STAGING_PREFIX = ".tmp-"


@dataclass(frozen=True)
class StoredEmbedding:
    """A published version opened for serving (arrays are read-only mmaps)."""

    version: str
    path: Path
    manifest: dict
    config: PANEConfig
    x_forward: np.ndarray
    x_backward: np.ndarray
    y: np.ndarray
    features: np.ndarray

    @property
    def n_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def n_attributes(self) -> int:
        return self.y.shape[0]

    def to_embedding(self) -> PANEEmbedding:
        """Materialize an in-memory :class:`PANEEmbedding` (copies the mmaps)."""
        return PANEEmbedding(
            x_forward=np.array(self.x_forward),
            x_backward=np.array(self.x_backward),
            y=np.array(self.y),
            config=self.config,
        )


def search_features(embedding: PANEEmbedding) -> np.ndarray:
    """The unit-row ``[Xf̂ ‖ X̂b]`` matrix the serving layer searches.

    Matches :meth:`PANEEmbedding.node_embeddings(normalize=True)` followed
    by row normalization, i.e. cosine similarity over these rows equals
    cosine similarity over ``node_embeddings()``.
    """
    return normalize_rows(embedding.node_embeddings(normalize=True))


class EmbeddingStore:
    """Versioned on-disk embedding store with atomic publish and rollback.

    Examples
    --------
    >>> store = EmbeddingStore(tmp_dir)          # doctest: +SKIP
    >>> v1 = store.publish(embedding)            # doctest: +SKIP
    >>> stored = store.open()                    # latest   # doctest: +SKIP
    >>> store.rollback()                         # back to the previous version
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        (self.root / "versions").mkdir(parents=True, exist_ok=True)

    # -- queries -------------------------------------------------------
    def versions(self) -> list[str]:
        """All published version names, oldest first."""
        return sorted(
            entry.name
            for entry in (self.root / "versions").iterdir()
            if entry.is_dir() and entry.name.startswith("v")
        )

    def latest(self) -> str | None:
        """The version the ``LATEST`` pointer names (``None`` if empty)."""
        pointer = self.root / "LATEST"
        if not pointer.exists():
            return None
        name = pointer.read_text().strip()
        return name or None

    def manifest(self, version: str) -> dict:
        return json.loads((self._version_dir(version) / "manifest.json").read_text())

    # -- publish / open ------------------------------------------------
    def publish(
        self,
        embedding: PANEEmbedding,
        *,
        metadata: dict | None = None,
        set_latest: bool = True,
        faults=None,
    ) -> str:
        """Persist ``embedding`` as a new immutable version; return its name.

        The version is staged in a temp directory and renamed into place,
        so concurrent readers never observe a partially written version.
        Concurrent *publishers* are safe too: if another publish claims the
        computed version id first, the rename fails and this one retries
        with the next id (so the returned name is authoritative, not the
        pre-computed one).  With ``set_latest`` (default) the ``LATEST``
        pointer is swapped to the new version afterwards.

        ``faults`` is a :class:`~repro.serving.faults.FaultInjector` (or
        ``None`` to arm from ``REPRO_FAULTS``); its ``on_publish_step``
        hook fires after the ``arrays``, ``manifest`` and ``latest``
        steps, letting the chaos suite kill a publisher at each torn
        state that ``repro fsck`` must recover from.
        """
        if faults is None:
            from repro.serving.faults import FaultInjector

            faults = FaultInjector.from_env()
        existing = self.versions()
        next_id = 1 + (int(existing[-1][1:]) if existing else 0)
        version = f"v{next_id:08d}"

        arrays = {
            "x_forward": np.ascontiguousarray(embedding.x_forward, dtype=np.float64),
            "x_backward": np.ascontiguousarray(embedding.x_backward, dtype=np.float64),
            "y": np.ascontiguousarray(embedding.y, dtype=np.float64),
            "features": search_features(embedding),
        }
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "version": version,
            "created_at": time.time(),
            "n_nodes": int(arrays["features"].shape[0]),
            "n_attributes": int(arrays["y"].shape[0]),
            "k": int(embedding.config.k),
            "config": asdict(embedding.config),
            "arrays": {
                name: {"shape": list(array.shape), "dtype": str(array.dtype)}
                for name, array in arrays.items()
            },
            "metadata": metadata or {},
        }

        staging = Path(
            tempfile.mkdtemp(prefix=f"{STAGING_PREFIX}{version}.", dir=self.root)
        )
        try:
            # mkdtemp creates 0700; published versions must be readable by
            # serving processes that may run under a different uid.
            chmod_default_dir(staging)
            for name, array in arrays.items():
                np.save(staging / f"{name}.npy", array)
            if faults is not None:
                faults.on_publish_step("arrays")
            while True:
                manifest["version"] = version
                (staging / "manifest.json").write_text(
                    json.dumps(manifest, indent=2)
                )
                if faults is not None:
                    faults.on_publish_step("manifest")
                target = self._version_dir(version)
                try:
                    os.rename(staging, target)
                    break
                except OSError as error:
                    claimed = error.errno in (errno.EEXIST, errno.ENOTEMPTY)
                    if not (claimed and target.is_dir()):
                        raise
                    # A concurrent publish won the race for this id between
                    # our versions() read and the rename; take the next slot.
                    version = f"v{int(version[1:]) + 1:08d}"
        except BaseException as error:
            from repro.serving.faults import InjectedFault

            # A soft-mode injected crash must leave the torn state on disk
            # exactly as a hard kill would — cleaning it up here would make
            # the fsck tests pass vacuously.
            if not isinstance(error, InjectedFault):
                shutil.rmtree(staging, ignore_errors=True)
            raise
        if faults is not None:
            faults.on_publish_step("latest")
        if set_latest:
            self.set_latest(version)
        return version

    def open(self, version: str | None = None) -> StoredEmbedding:
        """Open a version (default: latest) with memory-mapped arrays."""
        if version is None:
            version = self.latest()
            if version is None:
                raise FileNotFoundError(f"store at {self.root} has no versions")
        directory = self._version_dir(version)
        if not directory.is_dir():
            raise FileNotFoundError(f"version {version!r} not found in {self.root}")
        manifest = self.manifest(version)
        arrays = {
            name: np.load(directory / f"{name}.npy", mmap_mode="r")
            for name in _ARRAY_FILES
        }
        known = {f.name for f in dataclass_fields(PANEConfig)}
        config = PANEConfig(
            **{k: v for k, v in manifest["config"].items() if k in known}
        )
        return StoredEmbedding(
            version=version,
            path=directory,
            manifest=manifest,
            config=config,
            **arrays,
        )

    # -- integrity -----------------------------------------------------
    def verify(self, version: str | None = None) -> list:
        """Integrity issues for ``version`` (default: all), empty = clean.

        Header/metadata-level checks only — manifest consistency, array
        dtype/shape vs the ``.npy`` headers, exact byte lengths — cheap
        enough to run before every open.  See
        :mod:`repro.serving.fsck` for the full sweep-and-repair story.
        """
        from repro.serving.fsck import verify_version

        targets = [version] if version is not None else self.versions()
        issues = []
        for target in targets:
            issues.extend(verify_version(self, target))
        return issues

    # -- pointer management --------------------------------------------
    def set_latest(self, version: str) -> None:
        """Atomically point ``LATEST`` at ``version`` (must exist)."""
        if not self._version_dir(version).is_dir():
            raise FileNotFoundError(f"version {version!r} not found in {self.root}")
        atomic_write(
            self.root / "LATEST",
            lambda handle: handle.write(version + "\n"),
            text=True,
        )

    def rollback(self, to: str | None = None) -> str:
        """Point ``LATEST`` at ``to`` (default: the version before latest).

        Versions are never deleted by rollback, so rolling forward again is
        just another :meth:`set_latest`.  Returns the new latest version.
        """
        if to is None:
            versions = self.versions()
            current = self.latest()
            if current not in versions:
                raise ValueError("cannot infer rollback target: no latest version")
            position = versions.index(current)
            if position == 0:
                raise ValueError(f"{current} is the oldest version; nothing to roll back to")
            to = versions[position - 1]
        self.set_latest(to)
        return to

    # -- index artifact persistence ------------------------------------
    def index_path(self, version: str, kind: str) -> Path:
        """Where a ``kind`` (ivf/pq/ivfpq) index artifact lives for ``version``."""
        return self._version_dir(version) / f"index_{kind}.npz"

    def save_index(self, version: str, backend) -> Path | None:
        """Persist a built search index next to the version's arrays.

        One atomically written ``index_<kind>.npz`` per backend kind, so a
        later ``cli query`` (or service activation with ``index_cache``)
        loads the trained quantizer/codebooks instead of rebuilding them
        per invocation.  Exact backends have no trained state and return
        ``None``.  The artifact is derived data: deleting it only costs a
        rebuild.
        """
        from repro.serving.index import IVFIndex
        from repro.serving.sharding.pq import IVFPQBackend, PQBackend

        if isinstance(backend, IVFIndex):
            kind, arrays = "ivf", backend.save_arrays()
        elif isinstance(backend, IVFPQBackend):
            kind, arrays = "ivfpq", backend.save_arrays()
        elif isinstance(backend, PQBackend):
            kind, arrays = "pq", backend.save_arrays()
        else:
            return None
        if not self._version_dir(version).is_dir():
            raise FileNotFoundError(f"version {version!r} not found in {self.root}")
        path = self.index_path(version, kind)
        atomic_write(path, lambda handle: np.savez(handle, **arrays))
        return path

    def load_index(self, version: str, kind: str, features: np.ndarray):
        """Reconstruct a persisted ``kind`` index over ``features``.

        Returns ``None`` when no artifact exists (or it covers a different
        row count — impossible for untouched version dirs, cheap to guard).
        """
        from repro.serving.index import IVFIndex
        from repro.serving.sharding.pq import IVFPQBackend, PQBackend

        loaders = {
            "ivf": IVFIndex.from_arrays,
            "pq": PQBackend.from_arrays,
            "ivfpq": IVFPQBackend.from_arrays,
        }
        if kind not in loaders:
            return None
        path = self.index_path(version, kind)
        if not path.is_file():
            return None
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        try:
            return loaders[kind](features, arrays)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    def _version_dir(self, version: str) -> Path:
        return self.root / "versions" / version
