"""The in-memory query half of the serving split: ``QueryService``.

A :class:`QueryService` serves cosine top-k (node side) and Eq. (21)
affinity (attribute side) queries from the *active version* of an
:class:`~repro.serving.store.EmbeddingStore`, through a pluggable
:class:`~repro.serving.index.SearchBackend` (IVF or exact).

Concurrency model — how a version swap can never serve a torn result:
all state needed to answer a query (version name, mmapped arrays, search
backend) lives in one immutable ``_ActiveVersion`` snapshot object, and
every query reads ``self._active`` exactly once.  :meth:`activate`
publishes a fully constructed snapshot with a single reference assignment,
so a query thread sees either the old version or the new one, end to end —
never the new backend with the old matrix.  The result cache is keyed by
``(version, node, k, nprobe)``, so entries can never bleed across versions
either; rollback re-activates an older version and its keys simply miss.

Throughput comes from three places:

- ``batch_top_k`` fans a node batch out over a persistent
  :class:`~repro.parallel.pool.WorkerPool` in contiguous chunks;
- an optional micro-batcher (``batch_window_s > 0``) coalesces *concurrent*
  single-node ``top_k`` calls into one backend batch: the first arrival
  becomes the leader, sleeps out the window, and executes everything that
  queued up behind it against one consistent snapshot;
- an LRU result cache absorbs repeated queries entirely.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.parallel.pool import WorkerPool
from repro.search.knn import (
    CompiledFilter,
    NodeFilter,
    normalize_rows,
    top_k_sorted_indices,
)
from repro.serving.obs.trace import current_trace, trace_span
from repro.serving.index import (
    ExactBackend,
    IVFIndex,
    SearchBackend,
    make_backend,
    resolve_kind,
)
from repro.serving.sharding.pq import IVFPQBackend, PQBackend
from repro.serving.sharding.router import ShardRouter
from repro.serving.sharding.store import (
    ShardedEmbeddingStore,
    ShardedStoredEmbedding,
)
from repro.serving.stats import LatencyStats
from repro.serving.store import _ARRAY_FILES, EmbeddingStore, StoredEmbedding


@dataclass(frozen=True)
class QueryResult:
    """One answered query (or one stacked batch): ids and similarities.

    ``version`` names the store version that produced the answer, so
    callers can detect which side of a swap they were served from.
    ``group`` is set only on answers produced by a coalescing batcher:
    every member of one coalesced batch shares the same group id (and,
    by construction, the same snapshot — callers can assert the
    no-mixed-versions property from outside).
    """

    version: str
    ids: np.ndarray
    scores: np.ndarray
    latency_s: float
    cached: bool = False
    group: int | None = None


@dataclass(frozen=True)
class SearchParams:
    """Per-request tuning knobs, carried inside a :class:`SearchRequest`.

    Every field is a *hint*: it is honored by backends that advertise the
    matching capability (``SUPPORTS_NPROBE`` / ``SUPPORTS_RESCORE_FACTOR``
    / ``SUPPORTS_SELECT_DTYPE``) and silently ignored elsewhere — the same
    convention ``nprobe`` has always followed, so one request shape works
    against every backend kind.  ``None`` means "the backend's configured
    default".

    - ``nprobe``: IVF probe width (IVF / IVF-PQ / sharded IVF).
    - ``rescore_factor``: ADC shortlist multiplier for PQ rescoring
      (PQ / IVF-PQ): the top ``rescore_factor × k`` ADC candidates are
      exact-rescored.
    - ``select_dtype``: ``"float64"`` or ``"float32"`` selection precision
      for the exact engine; scores stay canonical float64 either way.
    """

    nprobe: int | None = None
    rescore_factor: int | None = None
    select_dtype: str | None = None

    def __post_init__(self) -> None:
        if self.nprobe is not None and int(self.nprobe) < 1:
            raise ValueError(f"nprobe must be >= 1, got {self.nprobe}")
        if self.rescore_factor is not None and int(self.rescore_factor) < 1:
            raise ValueError(
                f"rescore_factor must be >= 1, got {self.rescore_factor}"
            )
        if self.select_dtype not in (None, "float64", "float32"):
            raise ValueError(
                "select_dtype must be 'float64' or 'float32', "
                f"got {self.select_dtype!r}"
            )

    def key(self) -> tuple:
        """Hashable identity for cache keys and coalescing groups."""
        return (self.nprobe, self.rescore_factor, self.select_dtype)

    def to_json(self) -> dict:
        """The wire form: a dict of the non-default fields only."""
        doc: dict = {}
        if self.nprobe is not None:
            doc["nprobe"] = int(self.nprobe)
        if self.rescore_factor is not None:
            doc["rescore_factor"] = int(self.rescore_factor)
        if self.select_dtype is not None:
            doc["select_dtype"] = self.select_dtype
        return doc

    @classmethod
    def from_json(cls, obj: object) -> "SearchParams":
        """Parse the wire ``"params"`` object; strict, ``ValueError`` on junk."""
        if not isinstance(obj, dict):
            raise ValueError(f"params must be an object, got {type(obj).__name__}")
        unknown = set(obj) - {"nprobe", "rescore_factor", "select_dtype"}
        if unknown:
            raise ValueError(f"unknown params field(s): {sorted(unknown)}")
        nprobe = obj.get("nprobe")
        rescore = obj.get("rescore_factor")
        for name, value in (("nprobe", nprobe), ("rescore_factor", rescore)):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ValueError(f"params.{name} must be an integer, got {value!r}")
        select_dtype = obj.get("select_dtype")
        if select_dtype is not None and not isinstance(select_dtype, str):
            raise ValueError(
                f"params.select_dtype must be a string, got {select_dtype!r}"
            )
        return cls(nprobe=nprobe, rescore_factor=rescore, select_dtype=select_dtype)


#: The all-defaults instance shared by requests that pass no params.
DEFAULT_PARAMS = SearchParams()


@dataclass(frozen=True, eq=False)
class SearchRequest:
    """One query against the serving tier, in any of its three shapes.

    Exactly one of ``node`` (top-k neighbors of a stored node), ``nodes``
    (a stacked batch of the same), or ``vector`` (top-k for an arbitrary
    query vector, normalized by the service) must be set.  ``filter``
    restricts the candidate population with a :class:`NodeFilter`
    predicate — the one place all three shapes accept the same allow /
    deny / attribute / partition object (this is also the exclude path
    for vector queries, which historically had none).  ``params`` carries
    per-request backend hints (see :class:`SearchParams`).

    This is the single request object the whole stack speaks:
    :meth:`QueryService.search`, :class:`PinnedView`, the HTTP wire's
    ``"filter"``/``"params"`` JSON objects, and the CLI all construct or
    consume it — the legacy ``top_k(node, k, nprobe=)`` signatures are
    deprecated shims over it.
    """

    node: int | None = None
    nodes: Sequence[int] | np.ndarray | None = None
    vector: np.ndarray | None = None
    k: int = 10
    filter: NodeFilter | None = None
    params: SearchParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        shapes = sum(
            value is not None for value in (self.node, self.nodes, self.vector)
        )
        if shapes != 1:
            raise ValueError(
                "exactly one of node / nodes / vector must be set, "
                f"got {shapes} of them"
            )
        if int(self.k) < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.filter is not None and not isinstance(self.filter, NodeFilter):
            raise ValueError(
                f"filter must be a NodeFilter, got {type(self.filter).__name__}"
            )
        if not isinstance(self.params, SearchParams):
            raise ValueError(
                f"params must be a SearchParams, got {type(self.params).__name__}"
            )

    def filter_key(self) -> bytes | None:
        """The filter's cache identity (``None`` when unfiltered / no-op)."""
        if self.filter is None or self.filter.is_noop:
            return None
        return self.filter.key()


def _node_key(
    version: str,
    node: int,
    k: int,
    params: SearchParams,
    filter_key: bytes | None,
) -> tuple:
    """The result-cache key for a node top-k query.

    One constructor for every site that reads or fills the cache
    (``search``, the direct path, the micro-batcher, ``PinnedView``) —
    a key-shape drift between sites would silently stop hits matching.
    Params and filter identity are part of the key: a filtered answer
    must never be served to an unfiltered query (or vice versa), and two
    requests differing only in ``nprobe`` are different answers.
    """
    return (version, "node", int(node), int(k), params.key(), filter_key)


#: Sentinel default for ``QueryService.search(coalescer=...)``: "use the
#: service's configured micro-batcher" — distinct from ``None`` (bypass).
_DEFAULT_COALESCER = object()

#: Compiled filter masks kept per service (LRU over (version, filter key)).
_FILTER_CACHE_SIZE = 64

#: Process-wide flag so the deprecated entrypoints warn exactly once.
_deprecation_warned = False


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the one-per-process ``DeprecationWarning`` for a legacy shim."""
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        f"QueryService.{name}() and the other per-shape entrypoints are "
        f"deprecated; use QueryService.search({replacement})",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class _ActiveVersion:
    """Immutable serving snapshot; swapped atomically by ``activate``.

    ``stored`` is a :class:`StoredEmbedding` or — when the service fronts
    a :class:`~repro.serving.sharding.store.ShardedEmbeddingStore` — a
    :class:`~repro.serving.sharding.store.ShardedStoredEmbedding`, whose
    gather views answer the same row reads; ``backend`` is then a
    :class:`~repro.serving.sharding.router.ShardRouter`.
    """

    version: str
    stored: StoredEmbedding | ShardedStoredEmbedding
    backend: SearchBackend


class QueryService:
    """Query server over the latest (or a pinned) store version.

    Parameters
    ----------
    store:
        The :class:`EmbeddingStore` (or
        :class:`~repro.serving.sharding.store.ShardedEmbeddingStore`) to
        serve from.  A sharded store gets per-shard backends behind a
        :class:`ShardRouter`; everything else is transparent.
    backend:
        ``"ivf"``, ``"exact"``, ``"pq"``, ``"ivfpq"``, or ``"auto"``
        (IVF above :data:`repro.serving.index.AUTO_EXACT_THRESHOLD`
        vectors).  For a sharded store this picks the *per-shard* backend
        kind (``"auto"`` resolves on the total corpus size).
    nlist / nprobe / seed:
        IVF construction parameters (see :class:`IVFIndex`).
    pq_subspaces / pq_bits:
        PQ codec shape for the ``pq``/``ivfpq`` kinds (see
        :class:`~repro.serving.sharding.pq.PQCodec`).
    cache_size:
        LRU entries kept across all versions (0 disables caching).
    n_threads:
        Workers in the persistent pool used by :meth:`batch_top_k` (and
        by the shard router's scatter fan-out).
    batch_window_s:
        Micro-batching window for concurrent :meth:`top_k` calls;
        ``0`` (default) answers immediately.
    version:
        Pin an explicit store version instead of ``latest()``.
    index_cache:
        Persist built IVF/PQ index artifacts into the store's version
        directory and load them on later activations, so short-lived
        processes (the CLI) stop retraining quantizers per invocation.
    select_dtype:
        ``"float64"`` (default) or ``"float32"`` — the *selection*
        precision for exact and IVF backends (see
        :func:`repro.search.knn.exact_top_k` and
        :meth:`~repro.serving.index.IVFIndex.set_select_dtype`).
        Returned scores stay canonical float64 either way; float32
        halves the bytes the selection scan/gather moves.
    """

    def __init__(
        self,
        store: EmbeddingStore | ShardedEmbeddingStore,
        *,
        backend: str = "auto",
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int | None = 0,
        pq_subspaces: int | None = None,
        pq_bits: int = 8,
        cache_size: int = 4096,
        n_threads: int = 1,
        batch_window_s: float = 0.0,
        version: str | None = None,
        index_cache: bool = False,
        select_dtype: str = "float64",
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._store = store
        self._backend_kind = backend
        self._nlist = nlist
        self._nprobe = nprobe
        self._seed = seed
        self._pq_subspaces = pq_subspaces
        self._pq_bits = pq_bits
        self._select_dtype = select_dtype
        self._index_cache = index_cache
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_lock = threading.Lock()
        # Compiled-filter LRU: masks are derived data (version × filter key),
        # cheap to rebuild but worth reusing across the requests of one
        # client session that keep sending the same predicate.
        self._filter_cache: OrderedDict[tuple, CompiledFilter] = OrderedDict()
        self._filter_lock = threading.Lock()
        self._cache_hit_count = 0
        self._cache_miss_count = 0
        self._swap_lock = threading.Lock()
        self.stats = LatencyStats()
        self.pool = WorkerPool(max(1, n_threads))
        self._batcher = (
            self.make_coalescer(batch_window_s) if batch_window_s > 0 else None
        )
        self._active: _ActiveVersion | None = None
        self.activate(version)

    # -- version management --------------------------------------------
    @property
    def version(self) -> str:
        """The currently served store version."""
        return self._snapshot().version

    @property
    def backend(self) -> SearchBackend:
        return self._snapshot().backend

    def activate(self, version: str | None = None, *, index: SearchBackend | None = None) -> str:
        """Build and atomically swap in a serving snapshot for ``version``.

        ``version=None`` follows the store's ``LATEST`` pointer.  ``index``
        lets a refresher hand over an incrementally rebuilt backend (its
        ``features`` must belong to the version being activated); otherwise
        a backend is constructed from the stored ``features`` matrix.
        Queries in flight keep the snapshot they started with.
        """
        from repro.serving.fsck import verify_open_target

        with self._swap_lock:
            # Refuse — with a structured StoreCorruptionError, not whatever
            # a half-mapped array would eventually raise — to serve a
            # version that fails integrity verification (torn publish,
            # truncated array, manifest drift).  Header-level checks only,
            # so the cost is a few KB of reads per activation.
            verify_open_target(self._store, version)
            stored = self._store.open(version)
            backend = index
            if backend is None:
                if isinstance(stored, ShardedStoredEmbedding):
                    backend = self._build_router(stored)
                else:
                    backend = self._build_backend(stored)
            self._active = _ActiveVersion(
                version=stored.version, stored=stored, backend=backend
            )
            return stored.version

    def _make_backend(self, features, kind: str) -> SearchBackend:
        return make_backend(
            features,
            kind,
            nlist=self._nlist,
            nprobe=self._nprobe,
            seed=self._seed,
            pq_subspaces=self._pq_subspaces,
            pq_bits=self._pq_bits,
            select_dtype=self._select_dtype,
        )

    def _apply_select_dtype(self, backend: SearchBackend) -> SearchBackend:
        """Opt a reloaded backend into this service's selector precision.

        Persisted index artifacts are precision-agnostic (the float32
        selector copy is derived data, cheap to re-cast at load time),
        so reloads come back float64 and the service re-applies its
        configured ``select_dtype`` here.
        """
        if self._select_dtype != "float64" and hasattr(backend, "set_select_dtype"):
            backend.set_select_dtype(self._select_dtype)
        return backend

    def _build_backend(self, stored: StoredEmbedding) -> SearchBackend:
        """Backend for an unsharded snapshot, via the artifact cache if on."""
        kind = resolve_kind(self._backend_kind, stored.features.shape[0])
        if self._index_cache and kind != "exact":
            loaded = self._store.load_index(stored.version, kind, stored.features)
            if loaded is not None:
                return self._apply_select_dtype(loaded)
        backend = self._make_backend(stored.features, kind)
        if self._index_cache and kind != "exact":
            self._store.save_index(stored.version, backend)
        return backend

    def _build_router(self, stored: ShardedStoredEmbedding) -> ShardRouter:
        """Per-shard backends behind a scatter-gather router.

        ``"auto"`` resolves on the *total* corpus size so a sharded and an
        unsharded deployment of the same corpus pick the same kind; each
        shard then builds (or loads) its own index over its segment.
        """
        kind = resolve_kind(self._backend_kind, stored.n_nodes)
        loaded = (
            self._store.load_shard_indexes(stored, kind)
            if self._index_cache and kind != "exact"
            else [None] * stored.n_shards
        )
        backends: list[SearchBackend] = []
        built: list[SearchBackend | None] = []
        for shard, segment in enumerate(stored.shards):
            backend = loaded[shard]
            if backend is None:
                backend = self._make_backend(segment.features, kind)
                built.append(backend)
            else:
                self._apply_select_dtype(backend)
                built.append(None)  # already persisted; skip the rewrite
            backends.append(backend)
        if self._index_cache and kind != "exact" and any(b is not None for b in built):
            self._store.save_shard_indexes(stored.version, built)
        return ShardRouter(backends, stored.partitioner, pool=self.pool)

    def refresh_to_latest(self) -> str:
        """Re-activate if the store's ``LATEST`` moved; returns the version."""
        latest = self._store.latest()
        current = self._snapshot()
        if latest is not None and latest != current.version:
            return self.activate(latest)
        return current.version

    def pin(self) -> "PinnedView":
        """A request context pinned to the *current* snapshot.

        Every query through the returned :class:`PinnedView` is answered
        from the same immutable snapshot, even if :meth:`activate` swaps
        the service meanwhile — the consistency unit a multi-operation
        request (an HTTP handler validating, querying, and describing)
        needs.  The view shares this service's cache and latency stats
        (both are version-keyed / version-agnostic respectively), but
        bypasses the micro-batcher: coalescing would answer from whatever
        snapshot is active at drain time, not the pinned one.
        """
        return PinnedView(self, self._snapshot())

    # -- queries -------------------------------------------------------
    def search(
        self,
        request: SearchRequest,
        *,
        coalescer: "_MicroBatcher | None" = _DEFAULT_COALESCER,
    ) -> QueryResult:
        """Answer one :class:`SearchRequest` — the single query entrypoint.

        Dispatches on the request's shape: ``node`` goes through the
        service's micro-batcher when one is configured (pass
        ``coalescer=`` to use an explicit one, or ``None`` to bypass
        coalescing entirely), ``nodes`` fans out over the worker pool,
        ``vector`` answers directly.  The legacy ``top_k`` /
        ``batch_top_k`` / ``similar_by_vector`` / ``top_k_coalesced``
        names are deprecated shims over this method.
        """
        if request.nodes is not None:
            return self._batch_top_k_on(self._snapshot(), request)
        if request.vector is not None:
            return self._similar_by_vector_on(self._snapshot(), request)
        batcher = self._batcher if coalescer is _DEFAULT_COALESCER else coalescer
        return self._top_k_through(batcher, request)

    def top_k(self, node: int, k: int = 10, *, nprobe: int | None = None) -> QueryResult:
        """Deprecated shim — use :meth:`search` with a :class:`SearchRequest`."""
        _warn_deprecated("top_k", "SearchRequest(node=..., k=..., params=...)")
        return self.search(
            SearchRequest(node=node, k=k, params=SearchParams(nprobe=nprobe))
        )

    def make_coalescer(
        self, window_s: float, *, max_batch: int | None = None
    ) -> "_MicroBatcher":
        """A leader/follower coalescer bound to this service's batch path.

        Used internally for ``batch_window_s`` and by the HTTP server's
        admission coalescer (:class:`~repro.serving.http.server.EmbeddingServer`):
        concurrent single-node :meth:`top_k_coalesced` callers merge into
        one ``batch_top_k`` GEMM against a single snapshot.  ``max_batch``
        wakes the leader early once that many requests queued, bounding
        both the wait and the coalesced GEMM size.
        """
        return _MicroBatcher(window_s, self._execute_microbatch, max_batch=max_batch)

    def top_k_coalesced(
        self,
        coalescer: "_MicroBatcher",
        node: int,
        k: int = 10,
        *,
        nprobe: int | None = None,
    ) -> QueryResult:
        """Deprecated shim — :meth:`search` with an explicit ``coalescer=``.

        The whole coalesced group is answered from one snapshot read at
        drain time, so members can never mix store versions; each result
        carries the group id for outside verification.
        """
        _warn_deprecated(
            "top_k_coalesced", "search(SearchRequest(node=...), coalescer=...)"
        )
        return self.search(
            SearchRequest(node=node, k=k, params=SearchParams(nprobe=nprobe)),
            coalescer=coalescer,
        )

    def _top_k_through(
        self, batcher: "_MicroBatcher | None", request: SearchRequest
    ) -> QueryResult:
        start = time.perf_counter()
        active = self._snapshot()
        node, k = int(request.node), int(request.k)
        self._check_node(active, node)
        filter_key = request.filter_key()
        key = _node_key(active.version, node, k, request.params, filter_key)
        hit = self._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        if batcher is not None:
            with trace_span("coalesce_wait") as span:
                result = batcher.submit(node, k, request)
                if span is not None and result.group is not None:
                    span.meta["group"] = result.group
            # The caller's latency includes the coalescing window it slept
            # out, not just its share of the backend batch — report what the
            # client actually experienced or batch_window_s tuning is blind.
            latency = time.perf_counter() - start
            self.stats.record(latency)
            return replace(result, latency_s=latency)
        return self._top_k_direct(active, request, start)

    def _top_k_direct(
        self,
        active: _ActiveVersion,
        request: SearchRequest,
        start: float,
    ) -> QueryResult:
        """Single-node top-k against an explicit snapshot (no batcher)."""
        node, k = int(request.node), int(request.k)
        compiled = self._compile_filter(active, request.filter)
        query = np.asarray(active.stored.features[node], dtype=np.float64)
        with trace_span("select", version=active.version):
            ids, scores = _search(
                active.backend,
                query[np.newaxis],
                k,
                np.array([node]),
                request.params,
                compiled,
            )
        self._cache_put(
            _node_key(active.version, node, k, request.params, request.filter_key()),
            ids[0],
            scores[0],
        )
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, ids[0], scores[0], latency)

    def batch_top_k(
        self, nodes: Sequence[int], k: int = 10, *, nprobe: int | None = None
    ) -> QueryResult:
        """Deprecated shim — use :meth:`search` with ``SearchRequest(nodes=...)``.

        Returns one stacked :class:`QueryResult` with ``ids``/``scores`` of
        shape ``(len(nodes), k)``.  The whole batch is answered from a
        single snapshot, so every row reflects the same version.
        """
        _warn_deprecated("batch_top_k", "SearchRequest(nodes=..., k=...)")
        return self.search(
            SearchRequest(nodes=nodes, k=k, params=SearchParams(nprobe=nprobe))
        )

    def _batch_top_k_on(
        self, active: _ActiveVersion, request: SearchRequest
    ) -> QueryResult:
        start = time.perf_counter()
        k = int(request.k)
        nodes = np.asarray(request.nodes, dtype=np.intp).ravel()
        if nodes.size == 0:
            raise ValueError("batch_top_k needs at least one node")
        for node in (int(nodes.min()), int(nodes.max())):
            self._check_node(active, node)
        compiled = self._compile_filter(active, request.filter)
        filter_key = request.filter_key()

        with trace_span("select", version=active.version, batch=int(nodes.size)):
            if isinstance(active.backend, ShardRouter):
                # The router owns the fan-out: one scatter task per shard on
                # this service's pool.  Wrapping its calls in pool tasks here
                # would have the scatter wait on workers occupied by its own
                # callers — parallelism across shards replaces parallelism
                # across query chunks.
                queries = np.asarray(active.stored.features[nodes], dtype=np.float64)
                ids, scores = _search(
                    active.backend, queries, k, nodes, request.params, compiled
                )
            else:
                n_chunks = min(self.pool.n_threads, nodes.size)
                chunks = np.array_split(nodes, n_chunks)

                def work(_: int, chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
                    queries = np.asarray(active.stored.features[chunk], dtype=np.float64)
                    return _search(
                        active.backend, queries, k, chunk, request.params, compiled
                    )

                parts = self.pool.run_blocks(work, chunks)
                ids = np.vstack([part[0] for part in parts])
                scores = np.vstack([part[1] for part in parts])
        for row, node in enumerate(nodes):
            self._cache_put(
                _node_key(active.version, node, k, request.params, filter_key),
                ids[row],
                scores[row],
            )
        latency = time.perf_counter() - start
        self.stats.record(latency, queries=nodes.size)
        return QueryResult(active.version, ids, scores, latency)

    def similar_by_vector(
        self, vector: np.ndarray, k: int = 10, *, nprobe: int | None = None
    ) -> QueryResult:
        """Deprecated shim — use :meth:`search` with ``SearchRequest(vector=...)``."""
        _warn_deprecated("similar_by_vector", "SearchRequest(vector=..., k=...)")
        return self.search(
            SearchRequest(vector=vector, k=k, params=SearchParams(nprobe=nprobe))
        )

    def _similar_by_vector_on(
        self, active: _ActiveVersion, request: SearchRequest
    ) -> QueryResult:
        start = time.perf_counter()
        k = int(request.k)
        vector = np.asarray(request.vector, dtype=np.float64).ravel()
        if vector.shape[0] != active.backend.dim:
            raise ValueError(
                f"query vector has dim {vector.shape[0]}, expected {active.backend.dim}"
            )
        compiled = self._compile_filter(active, request.filter)
        query = normalize_rows(vector[np.newaxis])[0]
        with trace_span("select", version=active.version):
            ids, scores = _search(
                active.backend, query[np.newaxis], k, None, request.params, compiled
            )
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, ids[0], scores[0], latency)

    # -- filter compilation --------------------------------------------
    def _compile_filter(
        self, active: _ActiveVersion, node_filter: NodeFilter | None
    ) -> CompiledFilter | None:
        """Compile a request's filter against one snapshot, with caching.

        The compiled mask is pure derived data keyed by
        ``(version, filter key)``: attribute predicates resolve through
        the version's Eq. (21) affinities and partition selectors through
        its shard layout, so a swap can never serve a stale mask — the
        new version simply misses.  No-op filters compile to ``None`` so
        the fast path stays the unfiltered one.
        """
        if node_filter is None or node_filter.is_noop:
            return None
        cache_key = (active.version, node_filter.key())
        with self._filter_lock:
            hit = self._filter_cache.get(cache_key)
            if hit is not None:
                self._filter_cache.move_to_end(cache_key)
                return hit
        compiled = node_filter.compile(
            active.stored.n_nodes,
            attribute_scores=self._attribute_scores_for(active),
            partition_of=(
                self._partition_map(active) if node_filter.partitions else None
            ),
        )
        with self._filter_lock:
            self._filter_cache[cache_key] = compiled
            self._filter_cache.move_to_end(cache_key)
            while len(self._filter_cache) > _FILTER_CACHE_SIZE:
                self._filter_cache.popitem(last=False)
        return compiled

    @staticmethod
    def _attribute_scores_for(active: _ActiveVersion):
        """A resolver mapping an attribute id to its per-node affinities.

        Scores are the paper's Eq. (21) affinity — the same quantity
        :meth:`top_nodes_for_attribute` ranks by — so an attribute
        predicate ``{"attribute": r, "min_weight": w}`` keeps exactly the
        nodes that rank at affinity ``w`` or above for ``r``.
        """

        def scores(attribute: int) -> np.ndarray:
            stored = active.stored
            if not 0 <= attribute < stored.n_attributes:
                raise ValueError(
                    f"filter attribute {attribute} out of range "
                    f"[0, {stored.n_attributes})"
                )
            y_row = np.asarray(stored.y[attribute], dtype=np.float64)
            return np.asarray(stored.x_forward) @ y_row + (
                np.asarray(stored.x_backward) @ y_row
            )

        return scores

    @staticmethod
    def _partition_map(active: _ActiveVersion) -> np.ndarray | None:
        """Node → partition id, or ``None`` when the store is unsharded.

        Partitions are the sharded layout's shard ids — the tenant /
        placement unit the store actually has.  An unsharded deployment
        has no partitions, so a partition selector fails filter
        compilation with a ``ValueError`` (surfaced as ``invalid_filter``
        on the wire); ``describe()`` advertises the capability so clients
        can know before sending.
        """
        if isinstance(active.backend, ShardRouter):
            n = active.stored.n_nodes
            shard, _ = active.backend.partitioner.shard_and_local(np.arange(n))
            return shard
        return None

    def top_attributes(self, node: int, k: int = 10) -> QueryResult:
        """Attributes with the highest Eq. (21) affinity to ``node``.

        Scores are ``(Xf[v] + Xb[v]) · Y[r]`` over all attributes ``r`` —
        the attribute-side query the paper's inference task ranks by.
        """
        start = time.perf_counter()
        active = self._snapshot()
        self._check_node(active, node)
        key = (active.version, "attr", int(node), int(k), None)
        hit = self._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        stored = active.stored
        combined = np.asarray(stored.x_forward[node]) + np.asarray(stored.x_backward[node])
        scores = stored.y @ combined
        top = top_k_sorted_indices(scores, k)
        self._cache_put(key, top, scores[top])
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, top, scores[top], latency)

    def top_nodes_for_attribute(self, attribute: int, k: int = 10) -> QueryResult:
        """Nodes with the highest Eq. (21) affinity to ``attribute``."""
        start = time.perf_counter()
        active = self._snapshot()
        stored = active.stored
        if not 0 <= attribute < stored.n_attributes:
            raise IndexError(
                f"attribute {attribute} out of range [0, {stored.n_attributes})"
            )
        key = (active.version, "attr_nodes", int(attribute), int(k), None)
        hit = self._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        y_row = np.asarray(stored.y[attribute], dtype=np.float64)
        scores = stored.x_forward @ y_row + stored.x_backward @ y_row
        top = top_k_sorted_indices(scores, k)
        self._cache_put(key, top, scores[top])
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, top, scores[top], latency)

    # -- introspection / lifecycle -------------------------------------
    def describe(self) -> dict:
        """Serving state, memory accounting, latency counters (JSON-safe).

        The top of the dict is a stable, server-visible schema — the same
        document ``GET /v1/describe`` returns over HTTP (see
        :mod:`repro.serving.http`): ``version`` (the active store version
        id), ``backend_kind`` (one of ``exact``/``ivf``/``pq``/``ivfpq``/
        ``sharded`` — stable across refactors, unlike the class name in
        ``backend``), ``n_shards`` (1 for an unsharded deployment),
        ``n_nodes``, and ``n_attributes``.  Every value is a plain Python
        scalar/list/dict — ``json.dumps(service.describe())`` must never
        trip over a numpy scalar.

        ``memory`` reports the mapped bytes behind every stored array (what
        the OS *could* page in, not resident set; for a sharded snapshot
        the replicated ``y`` counts every segment's copy) plus, for PQ
        backends, the resident code bytes and the compression ratio they
        buy.  A sharded snapshot adds a ``sharding`` section with
        per-shard sizes and the merged per-shard latency view (see
        :meth:`LatencyStats.merge`).  Units there are **per-shard
        searches**: every logical query is scattered to all shards, so
        the merged ``queries`` reads ``n_shards ×`` the service-level
        count — each shard search is still recorded exactly once (the
        streams are disjoint), and cache hits only ever appear in the
        service-level ``latency``.
        """
        active = self._snapshot()
        backend = active.backend
        info = {
            "version": active.version,
            "backend_kind": backend_kind_name(backend),
            "n_shards": (
                backend.n_shards if isinstance(backend, ShardRouter) else 1
            ),
            "n_nodes": active.stored.n_nodes,
            "n_attributes": active.stored.n_attributes,
            # Filter capability advertisement (mirrored by /v1/describe):
            # clients discover which NodeFilter families this deployment
            # honors before sending one.  Partition selectors only exist
            # where the store actually has partitions (a sharded layout).
            "filters": {
                "ids": bool(getattr(backend, "SUPPORTS_FILTER", False)),
                "attributes": bool(getattr(backend, "SUPPORTS_FILTER", False)),
                "partitions": isinstance(backend, ShardRouter),
            },
            "backend": type(backend).__name__,
            # One source of truth for cache state: the ``cache`` dict
            # (entries/capacity/hits/misses/hit_rate) replaces the old
            # top-level cache_entries/cache_size pair, which duplicated
            # it under a second read of the lock.
            "cache": self.cache_info(),
            "latency": self.stats.snapshot(),
        }
        if hasattr(backend, "select_dtype"):  # exact / IVF selector knob
            info["select_dtype"] = backend.select_dtype
        mapped = {
            name: int(getattr(active.stored, name).nbytes)
            for name in _ARRAY_FILES
        }
        if isinstance(active.stored, ShardedStoredEmbedding):
            # The row-partitioned arrays already sum across segments via
            # their gather views, but Y is *replicated* per segment — count
            # every mapped replica so total_mapped_bytes agrees with the
            # per-shard sums reported below.
            mapped["y"] = sum(
                int(segment.y.nbytes) for segment in active.stored.shards
            )
        memory: dict = {
            "mapped_bytes": mapped,
            "total_mapped_bytes": sum(mapped.values()),
        }
        pq_backends = [b for b in _leaf_backends(backend) if isinstance(b, PQBackend)]
        if pq_backends:
            parts = [b.memory_info() for b in pq_backends]
            resident = sum(part["resident_bytes"] for part in parts)
            float_bytes = sum(part["float_bytes"] for part in parts)
            memory["pq"] = {
                "code_bytes": sum(part["code_bytes"] for part in parts),
                "codebook_bytes": sum(part["codebook_bytes"] for part in parts),
                "resident_bytes": resident,
                "float_bytes": float_bytes,
                "compression_ratio": float_bytes / resident if resident else 0.0,
            }
        info["memory"] = memory
        if isinstance(backend, IVFIndex):
            info["ivf"] = {"nlist": backend.nlist, "nprobe": backend.nprobe}
        elif isinstance(backend, IVFPQBackend):
            info["ivf"] = {"nlist": backend.nlist, "nprobe": backend.nprobe}
        if isinstance(backend, ShardRouter):
            stored: ShardedStoredEmbedding = active.stored
            memory["per_shard_bytes"] = [
                sum(
                    int(getattr(segment, name).nbytes) for name in _ARRAY_FILES
                )
                for segment in stored.shards
            ]
            info["sharding"] = {
                "n_shards": backend.n_shards,
                "partition": stored.partitioner.kind,
                "per_shard": [
                    {
                        "shard": shard,
                        "n_nodes": segment.n_nodes,
                        "backend": type(backend.backends[shard]).__name__,
                        "kind": backend_kind_name(backend.backends[shard]),
                        "version": segment.version,
                    }
                    for shard, segment in enumerate(stored.shards)
                ],
                "latency": LatencyStats.merge(backend.shard_stats).snapshot(),
            }
        # The document is a wire schema (shared with ``GET /v1/describe``):
        # scrub any numpy scalar an accessor above may have produced so
        # ``json.dumps`` can never choke on an ``np.int64`` shape value.
        return json_safe(info)

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _snapshot(self) -> _ActiveVersion:
        active = self._active
        if active is None:
            raise RuntimeError("QueryService has no active version")
        return active

    @staticmethod
    def _check_node(active: _ActiveVersion, node: int) -> None:
        n = active.stored.n_nodes
        if not 0 <= node < n:
            raise IndexError(f"node {node} out of range [0, {n})")

    def cache_info(self) -> dict:
        """Result-cache effectiveness counters (lifetime, this process).

        ``hits``/``misses`` count :meth:`top_k`-family lookups against
        the LRU (disabled caches record nothing); exposed through
        :meth:`describe` and the HTTP ``/metrics`` endpoint so the
        cache's effectiveness is observable, not just its size.
        """
        with self._cache_lock:
            hits, misses = self._cache_hit_count, self._cache_miss_count
            entries = len(self._cache)
        lookups = hits + misses
        return {
            "entries": entries,
            "capacity": self._cache_size,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    def _cache_get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        if self._cache_size == 0:
            return None
        with self._cache_lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._cache_hit_count += 1
            else:
                self._cache_miss_count += 1
            return hit

    def _cache_put(self, key: tuple, ids: np.ndarray, scores: np.ndarray) -> None:
        if self._cache_size == 0:
            return
        # Decouple the cache from the arrays handed to callers: a caller
        # mutating its result (or the batch matrix these rows view into)
        # must not silently poison what later queries are served.  Hits
        # return the frozen copies.
        ids = ids.copy()
        scores = scores.copy()
        ids.flags.writeable = False
        scores.flags.writeable = False
        with self._cache_lock:
            self._cache[key] = (ids, scores)
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _execute_microbatch(
        self, requests: list["_BatchRequest"], group_id: int
    ) -> None:
        """Answer a coalesced batch of top_k requests from one snapshot.

        The single ``self._snapshot()`` read below is the coalescing
        consistency contract: every member of the group — whatever
        version was active when each caller *submitted* — is answered
        from this one immutable snapshot, so one group can never mix
        store versions even while ``activate`` races the drain.
        """
        active = self._snapshot()
        # Stamp the group onto every member's trace (cross-thread: the
        # leader annotates its followers' traces — Trace is lock-guarded
        # for exactly this).  The member list makes /debug/traces show
        # who shared the GEMM, joined on request ids.
        member_ids = [
            request.trace.request_id
            for request in requests
            if request.trace is not None
        ]
        for request in requests:
            if request.trace is not None:
                request.trace.annotate(
                    coalesce_group=group_id,
                    coalesce_size=len(requests),
                    coalesce_members=member_ids,
                )
        by_params: dict[tuple, list[_BatchRequest]] = {}
        for request in requests:
            try:
                # Re-validate against *this* snapshot: a version swap between
                # the caller's check and the leader's drain may have shrunk
                # the embedding, and one stale node must fail alone rather
                # than taking down every request coalesced with it.
                self._check_node(active, request.node)
            except IndexError as error:
                request.error = error
                request.event.set()
                continue
            # Group by everything that changes the answer: k, the params
            # tuple, and the filter identity.  Mixing two filters into one
            # backend batch would answer both from whichever mask went in.
            group_key = (
                request.k,
                request.search.params.key(),
                request.search.filter_key(),
            )
            by_params.setdefault(group_key, []).append(request)
        for group in by_params.values():
            start = time.perf_counter()
            spec = group[0].search
            k = group[0].k
            nodes = np.array([request.node for request in group], dtype=np.intp)
            try:
                compiled = self._compile_filter(active, spec.filter)
                queries = np.asarray(active.stored.features[nodes], dtype=np.float64)
                with trace_span(
                    "select",
                    version=active.version,
                    group=group_id,
                    batch=len(group),
                ):
                    ids, scores = _search(
                        active.backend, queries, k, nodes, spec.params, compiled
                    )
            except BaseException as error:  # propagate to every waiter
                for request in group:
                    request.error = error
                    request.event.set()
                continue
            latency = time.perf_counter() - start
            for row, request in enumerate(group):
                self._cache_put(
                    _node_key(
                        active.version,
                        request.node,
                        k,
                        spec.params,
                        spec.filter_key(),
                    ),
                    ids[row],
                    scores[row],
                )
                request.result = QueryResult(
                    active.version,
                    ids[row],
                    scores[row],
                    latency / len(group),
                    group=group_id,
                )
                request.event.set()


class PinnedView:
    """Queries answered from one immutable snapshot of a service.

    Produced by :meth:`QueryService.pin`.  All reads go against the
    snapshot captured at pin time — an :meth:`~QueryService.activate`
    racing this view cannot make two calls through it disagree about the
    version.  Writes (cache fills, latency samples) still land in the
    owning service; cache keys carry the version, so a pinned fill can
    never be served to a caller on a different version.

    The view holds mmapped arrays alive via the snapshot, so it is cheap
    to create per request and safe to drop without cleanup.
    """

    def __init__(self, service: QueryService, active: _ActiveVersion) -> None:
        self._service = service
        self._active = active

    @property
    def version(self) -> str:
        """The pinned store version — constant for the view's lifetime."""
        return self._active.version

    @property
    def n_nodes(self) -> int:
        return self._active.stored.n_nodes

    def search(self, request: SearchRequest) -> QueryResult:
        """Answer one :class:`SearchRequest` from the pinned snapshot.

        The coalescer is always bypassed here (it would answer from the
        snapshot active at drain time, not the pinned one).
        """
        active = self._active
        if request.nodes is not None:
            return self._service._batch_top_k_on(active, request)
        if request.vector is not None:
            return self._service._similar_by_vector_on(active, request)
        start = time.perf_counter()
        node, k = int(request.node), int(request.k)
        self._service._check_node(active, node)
        key = _node_key(
            active.version, node, k, request.params, request.filter_key()
        )
        hit = self._service._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self._service.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        return self._service._top_k_direct(active, request, start)

    def top_k(self, node: int, k: int = 10, *, nprobe: int | None = None) -> QueryResult:
        return self.search(
            SearchRequest(node=node, k=k, params=SearchParams(nprobe=nprobe))
        )

    def batch_top_k(
        self, nodes: Sequence[int], k: int = 10, *, nprobe: int | None = None
    ) -> QueryResult:
        return self.search(
            SearchRequest(nodes=nodes, k=k, params=SearchParams(nprobe=nprobe))
        )

    def similar_by_vector(
        self, vector: np.ndarray, k: int = 10, *, nprobe: int | None = None
    ) -> QueryResult:
        return self.search(
            SearchRequest(vector=vector, k=k, params=SearchParams(nprobe=nprobe))
        )


def _search(
    backend: SearchBackend,
    queries: np.ndarray,
    k: int,
    exclude: np.ndarray | None,
    params: SearchParams,
    node_filter: CompiledFilter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch a search with capability-gated per-request hints.

    Each :class:`SearchParams` field (and the compiled filter) is passed
    only to backends that advertise the matching ``SUPPORTS_*`` class
    attribute; a filter against a backend without filter support is a
    hard error (silently dropping a predicate would return disallowed
    rows), while unsupported tuning hints are ignored by design.
    """
    kwargs: dict = {}
    if node_filter is not None:
        if not getattr(backend, "SUPPORTS_FILTER", False):
            raise ValueError(
                f"backend {type(backend).__name__} does not support "
                "filtered search"
            )
        kwargs["node_filter"] = node_filter
    if getattr(backend, "SUPPORTS_NPROBE", False):
        kwargs["nprobe"] = params.nprobe
    if params.rescore_factor is not None and getattr(
        backend, "SUPPORTS_RESCORE_FACTOR", False
    ):
        kwargs["rescore_factor"] = params.rescore_factor
    if params.select_dtype is not None and getattr(
        backend, "SUPPORTS_SELECT_DTYPE", False
    ):
        kwargs["select_dtype"] = params.select_dtype
    return backend.search(queries, k, exclude=exclude, **kwargs)


def _leaf_backends(backend: SearchBackend) -> list[SearchBackend]:
    """A backend's concrete leaves (a router's shards, else itself)."""
    if isinstance(backend, ShardRouter):
        return list(backend.backends)
    return [backend]


def backend_kind_name(backend: SearchBackend) -> str:
    """The stable wire name of a backend: exact/ivf/pq/ivfpq/sharded.

    ``describe()`` and the HTTP ``/v1/describe`` endpoint report this
    instead of the class name, so renaming a class cannot silently change
    what remote clients key dashboards and routing decisions on.  Note
    the ``isinstance`` order: :class:`IVFPQBackend` subclasses
    :class:`PQBackend`, so the more specific kind must win.
    """
    if isinstance(backend, ShardRouter):
        return "sharded"
    if isinstance(backend, IVFPQBackend):
        return "ivfpq"
    if isinstance(backend, PQBackend):
        return "pq"
    if isinstance(backend, IVFIndex):
        return "ivf"
    if isinstance(backend, ExactBackend):
        return "exact"
    return type(backend).__name__.lower()


def json_safe(value):
    """Recursively convert numpy scalars/arrays to plain Python types.

    ``np.float64`` subclasses ``float`` and squeaks through ``json.dumps``,
    but ``np.int64``/``np.bool_`` do not — and shape/accounting code grows
    them easily.  Applied to every document that crosses the wire schema
    boundary (``describe()``, HTTP responses).
    """
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, np.ndarray):
        return [json_safe(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass
class _BatchRequest:
    node: int
    k: int
    # The full SearchRequest spec (params + filter) this member carries;
    # the drain groups members whose spec keys match.
    search: SearchRequest
    event: threading.Event = field(default_factory=threading.Event)
    result: QueryResult | None = None
    error: BaseException | None = None
    # The submitting request's trace, captured at submit time so the
    # leader (a different thread) can stamp the coalesce group onto it.
    trace: object | None = None


class _MicroBatcher:
    """Leader/follower coalescing of concurrent single queries.

    The first thread to submit becomes the leader: it waits out the
    window (or is woken early once ``max_batch`` requests queued), then
    drains everything that queued up meanwhile and executes it as one
    batch.  Followers block on a per-request event.  Payoff is one
    backend batch (and one snapshot read) per burst instead of one per
    request.  Every drained batch gets a monotonically increasing group
    id, passed to ``execute`` so results can carry it — the externally
    observable handle for "these answers shared one snapshot".
    """

    def __init__(self, window_s: float, execute, *, max_batch: int | None = None) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._window_s = window_s
        self._execute = execute
        self._max_batch = max_batch
        self._lock = threading.Lock()
        self._pending: list[_BatchRequest] = []
        self._has_leader = False
        self._wake = threading.Event()
        self._next_group = 0
        self._members = 0

    def info(self) -> dict:
        """Occupancy counters for /metrics: groups run, members, queue depth."""
        with self._lock:
            return {
                "groups": self._next_group,
                "members": self._members,
                "pending": len(self._pending),
            }

    def submit(self, node: int, k: int, search: SearchRequest) -> QueryResult:
        request = _BatchRequest(node=node, k=k, search=search, trace=current_trace())
        with self._lock:
            self._members += 1
            self._pending.append(request)
            is_leader = not self._has_leader
            if is_leader:
                self._has_leader = True
                self._wake.clear()
            full = (
                self._max_batch is not None
                and len(self._pending) >= self._max_batch
            )
        if full and not is_leader:
            # Wake the leader early: the batch is as large as it is
            # allowed to get, further waiting only adds latency.  (A
            # set() that races a drain is harmless — the next leader
            # clears the event when it claims the slot.)
            self._wake.set()
        if is_leader:
            try:
                try:
                    if not full:
                        self._wake.wait(self._window_s)
                finally:
                    # Even if the wait is interrupted (KeyboardInterrupt in
                    # the leading thread), the leadership slot must be freed
                    # and the queue drained, or every later submit() would
                    # become a follower blocking on an event nobody will set.
                    with self._lock:
                        batch, self._pending = self._pending, []
                        self._has_leader = False
                # max_batch bounds the *executed* batch, not just the
                # wake: requests that piled up past it (arrivals during
                # the wake race, heavy concurrency) run as consecutive
                # bounded groups, so the configured GEMM size is a real
                # ceiling.  Each chunk is its own group (one snapshot
                # read per _execute call).
                chunk = self._max_batch or len(batch) or 1
                for start in range(0, len(batch), chunk):
                    with self._lock:
                        group_id = self._next_group
                        self._next_group += 1
                    self._execute(batch[start : start + chunk], group_id)
            except BaseException as error:
                # _execute reports per-group search errors itself; this
                # catches everything outside that handling (the snapshot
                # read, an interrupted wait) so followers always wake —
                # including members of chunks never reached.
                for queued in batch:
                    if not queued.event.is_set():
                        queued.error = error
                        queued.event.set()
                raise
        request.event.wait()
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result
