"""The in-memory query half of the serving split: ``QueryService``.

A :class:`QueryService` serves cosine top-k (node side) and Eq. (21)
affinity (attribute side) queries from the *active version* of an
:class:`~repro.serving.store.EmbeddingStore`, through a pluggable
:class:`~repro.serving.index.SearchBackend` (IVF or exact).

Concurrency model — how a version swap can never serve a torn result:
all state needed to answer a query (version name, mmapped arrays, search
backend) lives in one immutable ``_ActiveVersion`` snapshot object, and
every query reads ``self._active`` exactly once.  :meth:`activate`
publishes a fully constructed snapshot with a single reference assignment,
so a query thread sees either the old version or the new one, end to end —
never the new backend with the old matrix.  The result cache is keyed by
``(version, node, k, nprobe)``, so entries can never bleed across versions
either; rollback re-activates an older version and its keys simply miss.

Throughput comes from three places:

- ``batch_top_k`` fans a node batch out over a persistent
  :class:`~repro.parallel.pool.WorkerPool` in contiguous chunks;
- an optional micro-batcher (``batch_window_s > 0``) coalesces *concurrent*
  single-node ``top_k`` calls into one backend batch: the first arrival
  becomes the leader, sleeps out the window, and executes everything that
  queued up behind it against one consistent snapshot;
- an LRU result cache absorbs repeated queries entirely.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.parallel.pool import WorkerPool
from repro.search.knn import normalize_rows, top_k_sorted_indices
from repro.serving.index import IVFIndex, SearchBackend, make_backend
from repro.serving.stats import LatencyStats
from repro.serving.store import EmbeddingStore, StoredEmbedding


@dataclass(frozen=True)
class QueryResult:
    """One answered query (or one stacked batch): ids and similarities.

    ``version`` names the store version that produced the answer, so
    callers can detect which side of a swap they were served from.
    """

    version: str
    ids: np.ndarray
    scores: np.ndarray
    latency_s: float
    cached: bool = False


@dataclass(frozen=True)
class _ActiveVersion:
    """Immutable serving snapshot; swapped atomically by ``activate``."""

    version: str
    stored: StoredEmbedding
    backend: SearchBackend


class QueryService:
    """Query server over the latest (or a pinned) store version.

    Parameters
    ----------
    store:
        The :class:`EmbeddingStore` to serve from.
    backend:
        ``"ivf"``, ``"exact"``, or ``"auto"`` (IVF above
        :data:`repro.serving.index.AUTO_EXACT_THRESHOLD` vectors).
    nlist / nprobe / seed:
        IVF construction parameters (see :class:`IVFIndex`).
    cache_size:
        LRU entries kept across all versions (0 disables caching).
    n_threads:
        Workers in the persistent pool used by :meth:`batch_top_k`.
    batch_window_s:
        Micro-batching window for concurrent :meth:`top_k` calls;
        ``0`` (default) answers immediately.
    version:
        Pin an explicit store version instead of ``latest()``.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        *,
        backend: str = "auto",
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int | None = 0,
        cache_size: int = 4096,
        n_threads: int = 1,
        batch_window_s: float = 0.0,
        version: str | None = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._store = store
        self._backend_kind = backend
        self._nlist = nlist
        self._nprobe = nprobe
        self._seed = seed
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self.stats = LatencyStats()
        self.pool = WorkerPool(max(1, n_threads))
        self._batcher = (
            _MicroBatcher(batch_window_s, self._execute_microbatch)
            if batch_window_s > 0
            else None
        )
        self._active: _ActiveVersion | None = None
        self.activate(version)

    # -- version management --------------------------------------------
    @property
    def version(self) -> str:
        """The currently served store version."""
        return self._snapshot().version

    @property
    def backend(self) -> SearchBackend:
        return self._snapshot().backend

    def activate(self, version: str | None = None, *, index: SearchBackend | None = None) -> str:
        """Build and atomically swap in a serving snapshot for ``version``.

        ``version=None`` follows the store's ``LATEST`` pointer.  ``index``
        lets a refresher hand over an incrementally rebuilt backend (its
        ``features`` must belong to the version being activated); otherwise
        a backend is constructed from the stored ``features`` matrix.
        Queries in flight keep the snapshot they started with.
        """
        with self._swap_lock:
            stored = self._store.open(version)
            backend = index
            if backend is None:
                backend = make_backend(
                    stored.features,
                    self._backend_kind,
                    nlist=self._nlist,
                    nprobe=self._nprobe,
                    seed=self._seed,
                )
            self._active = _ActiveVersion(
                version=stored.version, stored=stored, backend=backend
            )
            return stored.version

    def refresh_to_latest(self) -> str:
        """Re-activate if the store's ``LATEST`` moved; returns the version."""
        latest = self._store.latest()
        current = self._snapshot()
        if latest is not None and latest != current.version:
            return self.activate(latest)
        return current.version

    # -- queries -------------------------------------------------------
    def top_k(self, node: int, k: int = 10, *, nprobe: int | None = None) -> QueryResult:
        """The ``k`` nodes most similar to ``node`` under the active version."""
        start = time.perf_counter()
        active = self._snapshot()
        self._check_node(active, node)
        key = (active.version, "node", int(node), int(k), nprobe)
        hit = self._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        if self._batcher is not None:
            result = self._batcher.submit(int(node), int(k), nprobe)
            # The caller's latency includes the coalescing window it slept
            # out, not just its share of the backend batch — report what the
            # client actually experienced or batch_window_s tuning is blind.
            latency = time.perf_counter() - start
            self.stats.record(latency)
            return replace(result, latency_s=latency)
        query = np.asarray(active.stored.features[node], dtype=np.float64)
        ids, scores = _search(active.backend, query[np.newaxis], k, np.array([node]), nprobe)
        self._cache_put(key, ids[0], scores[0])
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, ids[0], scores[0], latency)

    def batch_top_k(
        self, nodes: Sequence[int], k: int = 10, *, nprobe: int | None = None
    ) -> QueryResult:
        """Top-k for many nodes at once, fanned out over the worker pool.

        Returns one stacked :class:`QueryResult` with ``ids``/``scores`` of
        shape ``(len(nodes), k)``.  The whole batch is answered from a
        single snapshot, so every row reflects the same version.
        """
        start = time.perf_counter()
        active = self._snapshot()
        nodes = np.asarray(nodes, dtype=np.intp).ravel()
        if nodes.size == 0:
            raise ValueError("batch_top_k needs at least one node")
        for node in (int(nodes.min()), int(nodes.max())):
            self._check_node(active, node)

        n_chunks = min(self.pool.n_threads, nodes.size)
        chunks = np.array_split(nodes, n_chunks)

        def work(_: int, chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            queries = np.asarray(active.stored.features[chunk], dtype=np.float64)
            return _search(active.backend, queries, k, chunk, nprobe)

        parts = self.pool.run_blocks(work, chunks)
        ids = np.vstack([part[0] for part in parts])
        scores = np.vstack([part[1] for part in parts])
        for row, node in enumerate(nodes):
            self._cache_put(
                (active.version, "node", int(node), int(k), nprobe),
                ids[row],
                scores[row],
            )
        latency = time.perf_counter() - start
        self.stats.record(latency, queries=nodes.size)
        return QueryResult(active.version, ids, scores, latency)

    def similar_by_vector(
        self, vector: np.ndarray, k: int = 10, *, nprobe: int | None = None
    ) -> QueryResult:
        """Top-k nodes for an arbitrary query vector (normalized here)."""
        start = time.perf_counter()
        active = self._snapshot()
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != active.backend.dim:
            raise ValueError(
                f"query vector has dim {vector.shape[0]}, expected {active.backend.dim}"
            )
        query = normalize_rows(vector[np.newaxis])[0]
        ids, scores = _search(active.backend, query[np.newaxis], k, None, nprobe)
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, ids[0], scores[0], latency)

    def top_attributes(self, node: int, k: int = 10) -> QueryResult:
        """Attributes with the highest Eq. (21) affinity to ``node``.

        Scores are ``(Xf[v] + Xb[v]) · Y[r]`` over all attributes ``r`` —
        the attribute-side query the paper's inference task ranks by.
        """
        start = time.perf_counter()
        active = self._snapshot()
        self._check_node(active, node)
        key = (active.version, "attr", int(node), int(k), None)
        hit = self._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        stored = active.stored
        combined = np.asarray(stored.x_forward[node]) + np.asarray(stored.x_backward[node])
        scores = stored.y @ combined
        top = top_k_sorted_indices(scores, k)
        self._cache_put(key, top, scores[top])
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, top, scores[top], latency)

    def top_nodes_for_attribute(self, attribute: int, k: int = 10) -> QueryResult:
        """Nodes with the highest Eq. (21) affinity to ``attribute``."""
        start = time.perf_counter()
        active = self._snapshot()
        stored = active.stored
        if not 0 <= attribute < stored.n_attributes:
            raise IndexError(
                f"attribute {attribute} out of range [0, {stored.n_attributes})"
            )
        key = (active.version, "attr_nodes", int(attribute), int(k), None)
        hit = self._cache_get(key)
        if hit is not None:
            latency = time.perf_counter() - start
            self.stats.record(latency, cached=True)
            return QueryResult(active.version, hit[0], hit[1], latency, cached=True)
        y_row = np.asarray(stored.y[attribute], dtype=np.float64)
        scores = stored.x_forward @ y_row + stored.x_backward @ y_row
        top = top_k_sorted_indices(scores, k)
        self._cache_put(key, top, scores[top])
        latency = time.perf_counter() - start
        self.stats.record(latency)
        return QueryResult(active.version, top, scores[top], latency)

    # -- introspection / lifecycle -------------------------------------
    def describe(self) -> dict:
        """Serving state + latency counters, JSON-serializable."""
        active = self._snapshot()
        backend = active.backend
        info = {
            "version": active.version,
            "n_nodes": active.stored.n_nodes,
            "n_attributes": active.stored.n_attributes,
            "backend": type(backend).__name__,
            "cache_entries": len(self._cache),
            "cache_size": self._cache_size,
            "latency": self.stats.snapshot(),
        }
        if isinstance(backend, IVFIndex):
            info["ivf"] = {"nlist": backend.nlist, "nprobe": backend.nprobe}
        return info

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _snapshot(self) -> _ActiveVersion:
        active = self._active
        if active is None:
            raise RuntimeError("QueryService has no active version")
        return active

    @staticmethod
    def _check_node(active: _ActiveVersion, node: int) -> None:
        n = active.stored.n_nodes
        if not 0 <= node < n:
            raise IndexError(f"node {node} out of range [0, {n})")

    def _cache_get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        if self._cache_size == 0:
            return None
        with self._cache_lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
            return hit

    def _cache_put(self, key: tuple, ids: np.ndarray, scores: np.ndarray) -> None:
        if self._cache_size == 0:
            return
        # Decouple the cache from the arrays handed to callers: a caller
        # mutating its result (or the batch matrix these rows view into)
        # must not silently poison what later queries are served.  Hits
        # return the frozen copies.
        ids = ids.copy()
        scores = scores.copy()
        ids.flags.writeable = False
        scores.flags.writeable = False
        with self._cache_lock:
            self._cache[key] = (ids, scores)
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _execute_microbatch(self, requests: list["_BatchRequest"]) -> None:
        """Answer a coalesced batch of top_k requests from one snapshot."""
        active = self._snapshot()
        by_params: dict[tuple[int, int | None], list[_BatchRequest]] = {}
        for request in requests:
            try:
                # Re-validate against *this* snapshot: a version swap between
                # the caller's check and the leader's drain may have shrunk
                # the embedding, and one stale node must fail alone rather
                # than taking down every request coalesced with it.
                self._check_node(active, request.node)
            except IndexError as error:
                request.error = error
                request.event.set()
                continue
            by_params.setdefault((request.k, request.nprobe), []).append(request)
        for (k, nprobe), group in by_params.items():
            start = time.perf_counter()
            nodes = np.array([request.node for request in group], dtype=np.intp)
            try:
                queries = np.asarray(active.stored.features[nodes], dtype=np.float64)
                ids, scores = _search(active.backend, queries, k, nodes, nprobe)
            except BaseException as error:  # propagate to every waiter
                for request in group:
                    request.error = error
                    request.event.set()
                continue
            latency = time.perf_counter() - start
            for row, request in enumerate(group):
                self._cache_put(
                    (active.version, "node", request.node, k, nprobe),
                    ids[row],
                    scores[row],
                )
                request.result = QueryResult(
                    active.version, ids[row], scores[row], latency / len(group)
                )
                request.event.set()


def _search(
    backend: SearchBackend,
    queries: np.ndarray,
    k: int,
    exclude: np.ndarray | None,
    nprobe: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(backend, IVFIndex):
        return backend.search(queries, k, exclude=exclude, nprobe=nprobe)
    return backend.search(queries, k, exclude=exclude)


@dataclass
class _BatchRequest:
    node: int
    k: int
    nprobe: int | None
    event: threading.Event = field(default_factory=threading.Event)
    result: QueryResult | None = None
    error: BaseException | None = None


class _MicroBatcher:
    """Leader/follower coalescing of concurrent single queries.

    The first thread to submit becomes the leader: it sleeps out the
    window, then drains everything that queued up meanwhile and executes
    it as one batch.  Followers block on a per-request event.  Payoff is
    one backend batch (and one snapshot read) per burst instead of one
    per request.
    """

    def __init__(self, window_s: float, execute) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self._window_s = window_s
        self._execute = execute
        self._lock = threading.Lock()
        self._pending: list[_BatchRequest] = []
        self._has_leader = False

    def submit(self, node: int, k: int, nprobe: int | None) -> QueryResult:
        request = _BatchRequest(node=node, k=k, nprobe=nprobe)
        with self._lock:
            self._pending.append(request)
            is_leader = not self._has_leader
            if is_leader:
                self._has_leader = True
        if is_leader:
            try:
                try:
                    time.sleep(self._window_s)
                finally:
                    # Even if the sleep is interrupted (KeyboardInterrupt in
                    # the leading thread), the leadership slot must be freed
                    # and the queue drained, or every later submit() would
                    # become a follower blocking on an event nobody will set.
                    with self._lock:
                        batch, self._pending = self._pending, []
                        self._has_leader = False
                self._execute(batch)
            except BaseException as error:
                # _execute reports per-group search errors itself; this
                # catches everything outside that handling (the snapshot
                # read, an interrupted sleep) so followers always wake.
                for queued in batch:
                    if not queued.event.is_set():
                        queued.error = error
                        queued.event.set()
                raise
        request.event.wait()
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result
