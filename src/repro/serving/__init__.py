"""Embedding serving: versioned store, ANN index, query service, refresh.

The subsystem that turns a trained :class:`~repro.core.pane.PANEEmbedding`
into something that answers similarity queries under load:

- :class:`EmbeddingStore` — durable, versioned, memory-mapped storage with
  atomic publish and rollback (``store.py``);
- :class:`IVFIndex` / :class:`ExactBackend` — approximate and brute-force
  search behind one :class:`SearchBackend` interface (``index.py``);
- :class:`QueryService` — batched, cached, latency-tracked query serving
  with atomic version swaps (``service.py``);
- :class:`OnlineRefresher` — delta update → republish → incremental index
  rebuild → swap, without downtime (``refresh.py``);
- :mod:`~repro.serving.sharding` — multi-segment sharded stores, PQ
  compression, and the scatter-gather :class:`ShardRouter`
  (``sharding/``);
- :mod:`~repro.serving.http` — the stdlib HTTP front-end
  (:class:`~repro.serving.http.EmbeddingServer`) and its retrying,
  replica-fanning :class:`~repro.serving.http.ServingClient`
  (``http/``; imported lazily — ``from repro.serving.http import ...``);
- :mod:`~repro.serving.wal` — the durable write path: append-only
  :class:`~repro.serving.wal.DeltaLog`,
  :class:`~repro.serving.wal.IngestPipeline`, and the background
  :class:`~repro.serving.wal.Compactor` (``wal/``; imported lazily —
  ``from repro.serving.wal import ...``).

See ``docs/SERVING.md`` for the operational guide.
"""

from repro.serving.index import (
    AUTO_EXACT_THRESHOLD,
    ExactBackend,
    IVFIndex,
    IVFRebuildStats,
    SearchBackend,
    make_backend,
    resolve_kind,
)
from repro.serving.refresh import OnlineRefresher, RefreshReport
from repro.serving.service import (
    PinnedView,
    QueryResult,
    QueryService,
    backend_kind_name,
    json_safe,
)
from repro.serving.sharding import (
    IVFPQBackend,
    Partitioner,
    PQBackend,
    PQCodec,
    ShardedEmbeddingStore,
    ShardedStoredEmbedding,
    ShardRouter,
)
from repro.serving.stats import LatencyStats
from repro.serving.store import EmbeddingStore, StoredEmbedding, search_features

__all__ = [
    "AUTO_EXACT_THRESHOLD",
    "EmbeddingStore",
    "ExactBackend",
    "IVFIndex",
    "IVFPQBackend",
    "IVFRebuildStats",
    "LatencyStats",
    "OnlineRefresher",
    "PQBackend",
    "PQCodec",
    "Partitioner",
    "PinnedView",
    "QueryResult",
    "QueryService",
    "RefreshReport",
    "SearchBackend",
    "ShardRouter",
    "ShardedEmbeddingStore",
    "ShardedStoredEmbedding",
    "StoredEmbedding",
    "backend_kind_name",
    "json_safe",
    "make_backend",
    "resolve_kind",
    "search_features",
]
