"""Embedding serving: versioned store, ANN index, query service, refresh.

The subsystem that turns a trained :class:`~repro.core.pane.PANEEmbedding`
into something that answers similarity queries under load:

- :class:`EmbeddingStore` — durable, versioned, memory-mapped storage with
  atomic publish and rollback (``store.py``);
- :class:`IVFIndex` / :class:`ExactBackend` — approximate and brute-force
  search behind one :class:`SearchBackend` interface (``index.py``);
- :class:`QueryService` — batched, cached, latency-tracked query serving
  with atomic version swaps (``service.py``);
- :class:`OnlineRefresher` — delta update → republish → incremental index
  rebuild → swap, without downtime (``refresh.py``).

See ``docs/SERVING.md`` for the operational guide.
"""

from repro.serving.index import (
    AUTO_EXACT_THRESHOLD,
    ExactBackend,
    IVFIndex,
    IVFRebuildStats,
    SearchBackend,
    make_backend,
)
from repro.serving.refresh import OnlineRefresher, RefreshReport
from repro.serving.service import QueryResult, QueryService
from repro.serving.stats import LatencyStats
from repro.serving.store import EmbeddingStore, StoredEmbedding, search_features

__all__ = [
    "AUTO_EXACT_THRESHOLD",
    "EmbeddingStore",
    "ExactBackend",
    "IVFIndex",
    "IVFRebuildStats",
    "LatencyStats",
    "OnlineRefresher",
    "QueryResult",
    "QueryService",
    "RefreshReport",
    "SearchBackend",
    "StoredEmbedding",
    "make_backend",
    "search_features",
]
