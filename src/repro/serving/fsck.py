"""Store integrity checking and crash recovery (``repro fsck``).

The publish protocol makes a *completed* publish atomic, but a publisher
killed mid-publish still leaves debris behind — an abandoned ``.tmp-``
staging directory, a version renamed into place with ``LATEST`` never
advanced — and bytes on disk can rot underneath a published version
(truncated copy, bit flips, a manifest edited by hand).  This module is
the recovery half of the durability story:

- :func:`verify_version` validates one published version end to end:
  the manifest parses and matches the directory, every array file's
  ``.npy`` header agrees with the manifest's recorded shape/dtype, and
  the file's byte length equals exactly what the header promises — a
  truncated ``features.npy`` is caught *before* a query process maps it.
- :func:`fsck` sweeps a whole store root (plain or sharded): every
  version is verified, orphaned staging debris is found, and the
  ``LATEST`` pointer is checked against the set of *clean* versions.
  With ``repair=True`` it quarantines corrupt versions (moved under
  ``<root>/quarantine/``, never deleted), removes staging debris, and
  repoints ``LATEST`` at the newest version that verifies clean.
- :class:`StoreCorruptionError` is the structured refusal
  :class:`~repro.serving.service.QueryService` raises instead of
  serving a version that fails verification.

Exit-code contract (the ``repro fsck`` CLI maps
:meth:`FsckReport.exit_code` straight through): ``0`` clean, ``1``
issues found and every one of them is repairable (and was repaired when
``repair=True``), ``2`` unrecoverable — the store cannot serve even
after repair (no clean version survives, or the root is not a store).
"""

from __future__ import annotations

import json
import math
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.serving.store import (
    _ARRAY_FILES,
    MANIFEST_SCHEMA,
    STAGING_PREFIX,
    EmbeddingStore,
)

QUARANTINE_DIR = "quarantine"

# Staging-debris prefixes fsck recognizes: the current ``.tmp-`` publish
# prefix, the pre-fsck ``.staging.`` spelling (stores published by older
# code must still be sweepable), and ``atomic_write``'s ``.<name>.*.tmp``
# temp files.
_ORPHAN_PREFIXES = (STAGING_PREFIX, ".staging.")


class StoreCorruptionError(RuntimeError):
    """A store version failed verification and must not be served.

    Carries the failing version and the issue list so callers (the HTTP
    refresh handler, the CLI) can surface a structured error instead of
    whatever exception a half-mapped array would eventually raise.
    """

    def __init__(self, root, version: str, issues: "list[Issue]") -> None:
        summary = "; ".join(issue.detail for issue in issues[:3])
        more = f" (+{len(issues) - 3} more)" if len(issues) > 3 else ""
        super().__init__(
            f"store version {version!r} at {root} fails verification: "
            f"{summary}{more}"
        )
        self.root = str(root)
        self.version = version
        self.issues = issues


@dataclass(frozen=True)
class Issue:
    """One integrity finding.

    ``code`` is stable and machine-readable (``orphan_staging``,
    ``bad_manifest``, ``bad_array``, ``corrupt_index``, ``bad_latest``,
    ``not_a_store``); ``detail`` says what exactly is wrong;
    ``repairable`` says whether :func:`fsck` with ``repair=True`` can
    bring the store back to a clean, servable state past this issue.
    """

    code: str
    path: str
    detail: str
    repairable: bool = True
    version: str | None = None

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "detail": self.detail,
            "repairable": self.repairable,
            "version": self.version,
        }


@dataclass
class FsckReport:
    """What one :func:`fsck` sweep found (and, with repair, did)."""

    root: str
    issues: list[Issue] = field(default_factory=list)
    clean_versions: list[str] = field(default_factory=list)
    corrupt_versions: list[str] = field(default_factory=list)
    actions: list[str] = field(default_factory=list)  # repair log, human-readable
    latest: str | None = None
    repaired: bool = False  # repair ran and handled every repairable issue

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def unrecoverable(self) -> bool:
        """No clean version survives a store that had versions, or worse."""
        if any(not issue.repairable for issue in self.issues):
            return True
        return bool(self.corrupt_versions) and not self.clean_versions

    def exit_code(self) -> int:
        """The ``repro fsck`` contract: 0 clean / 1 repaired / 2 unrecoverable."""
        if self.unrecoverable:
            return 2
        return 0 if self.clean else 1

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "clean": self.clean,
            "unrecoverable": self.unrecoverable,
            "exit_code": self.exit_code(),
            "latest": self.latest,
            "clean_versions": list(self.clean_versions),
            "corrupt_versions": list(self.corrupt_versions),
            "issues": [issue.as_dict() for issue in self.issues],
            "actions": list(self.actions),
            "repaired": self.repaired,
        }


# -- single-version verification ---------------------------------------
def _read_npy_header(path: Path) -> tuple[tuple[int, ...], np.dtype, int]:
    """Parse a ``.npy`` header: (shape, dtype, data offset).

    Raises ``ValueError`` on any malformation — bad magic, unsupported
    format version, unparsable header dict.
    """
    with open(path, "rb") as handle:
        version = np.lib.format.read_magic(handle)
        readers = {
            (1, 0): np.lib.format.read_array_header_1_0,
            (2, 0): np.lib.format.read_array_header_2_0,
        }
        reader = readers.get(version)
        if reader is None:
            raise ValueError(f"unsupported .npy format version {version}")
        shape, fortran_order, dtype = reader(handle)
        if fortran_order:
            raise ValueError("fortran-order arrays are never published")
        return shape, dtype, handle.tell()


def verify_version(store: EmbeddingStore, version: str) -> list[Issue]:
    """Integrity issues for one published version (empty list = clean).

    Checks are header/metadata-level only — no array data is read — so a
    verification pass costs stats and a few KB of headers, cheap enough
    to run on every :meth:`QueryService.activate`.
    """
    directory = store.root / "versions" / version
    issues: list[Issue] = []

    def issue(code: str, path: Path, detail: str) -> None:
        issues.append(
            Issue(code=code, path=str(path), detail=detail, version=version)
        )

    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        issue("bad_manifest", manifest_path, f"{version}: manifest.json missing")
        return issues
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        issue("bad_manifest", manifest_path, f"{version}: manifest unreadable: {error}")
        return issues
    if not isinstance(manifest, dict) or manifest.get("schema") != MANIFEST_SCHEMA:
        issue(
            "bad_manifest", manifest_path,
            f"{version}: manifest schema is {manifest.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA!r}",
        )
        return issues
    if manifest.get("version") != version:
        issue(
            "bad_manifest", manifest_path,
            f"{version}: manifest names version {manifest.get('version')!r}",
        )
    recorded = manifest.get("arrays")
    if not isinstance(recorded, dict):
        issue("bad_manifest", manifest_path, f"{version}: manifest has no arrays table")
        return issues

    for name in _ARRAY_FILES:
        array_path = directory / f"{name}.npy"
        spec = recorded.get(name)
        if spec is None:
            issue(
                "bad_manifest", manifest_path,
                f"{version}: manifest does not record array {name!r}",
            )
            continue
        if not array_path.is_file():
            issue("bad_array", array_path, f"{version}: {name}.npy missing")
            continue
        try:
            shape, dtype, offset = _read_npy_header(array_path)
        except (OSError, ValueError) as error:
            issue(
                "bad_array", array_path,
                f"{version}: {name}.npy header unreadable: {error}",
            )
            continue
        if list(shape) != list(spec.get("shape", [])) or str(dtype) != spec.get(
            "dtype"
        ):
            issue(
                "bad_array", array_path,
                f"{version}: {name}.npy is {dtype} {list(shape)}, manifest "
                f"records {spec.get('dtype')} {spec.get('shape')}",
            )
            continue
        expected = offset + dtype.itemsize * math.prod(shape)
        actual = array_path.stat().st_size
        if actual != expected:
            kind = "truncated" if actual < expected else "oversized"
            issue(
                "bad_array", array_path,
                f"{version}: {name}.npy {kind}: {actual} bytes on disk, "
                f"header promises {expected}",
            )

    # Index artifacts are derived data (deleting one only costs a
    # rebuild), but a torn .npz would still crash activation with an
    # opaque zipfile error — flag it so repair can GC it.
    import zipfile

    for artifact in sorted(directory.glob("index_*.npz")):
        if not zipfile.is_zipfile(artifact):
            issue(
                "corrupt_index", artifact,
                f"{version}: index artifact {artifact.name} is not a readable "
                "archive (derived data; repair deletes it)",
            )
    return issues


# -- whole-store sweep -------------------------------------------------
def find_orphans(root: Path) -> list[Path]:
    """Staging debris under ``root``: abandoned publish/atomic-write temps."""
    if not root.is_dir():
        return []
    orphans = []
    for entry in sorted(root.iterdir()):
        name = entry.name
        if name.startswith(_ORPHAN_PREFIXES):
            orphans.append(entry)
        elif name.startswith(".") and name.endswith(".tmp") and entry.is_file():
            orphans.append(entry)  # atomic_write temp left by a kill
    return orphans


def _quarantine(root: Path, target: Path, report: FsckReport) -> None:
    """Move ``target`` under ``<root>/quarantine/`` (never delete data)."""
    quarantine = root / QUARANTINE_DIR
    quarantine.mkdir(exist_ok=True)
    destination = quarantine / target.name
    suffix = 0
    while destination.exists():
        suffix += 1
        destination = quarantine / f"{target.name}.{suffix}"
    target.rename(destination)
    report.actions.append(f"quarantined {target.name} -> {destination.relative_to(root)}")


def _fsck_plain(store: EmbeddingStore, *, repair: bool) -> FsckReport:
    root = store.root
    report = FsckReport(root=str(root))
    if not (root / "versions").is_dir():
        report.issues.append(
            Issue(
                code="not_a_store",
                path=str(root),
                detail=f"{root} has no versions/ directory",
                repairable=False,
            )
        )
        return report

    for orphan in find_orphans(root):
        report.issues.append(
            Issue(
                code="orphan_staging",
                path=str(orphan),
                detail=f"abandoned staging debris {orphan.name} "
                "(publisher killed mid-publish)",
            )
        )
        if repair:
            if orphan.is_dir():
                shutil.rmtree(orphan, ignore_errors=True)
            else:
                orphan.unlink(missing_ok=True)
            report.actions.append(f"removed staging debris {orphan.name}")

    for version in store.versions():
        issues = verify_version(store, version)
        # A corrupt-but-GC-able index artifact alone does not condemn the
        # version: the arrays are intact, only derived data needs repair.
        fatal = [issue for issue in issues if issue.code != "corrupt_index"]
        report.issues.extend(issues)
        if fatal:
            report.corrupt_versions.append(version)
            if repair:
                _quarantine(root, root / "versions" / version, report)
        else:
            report.clean_versions.append(version)
            if repair:
                for issue in issues:  # corrupt_index only
                    Path(issue.path).unlink(missing_ok=True)
                    report.actions.append(
                        f"deleted corrupt index artifact {Path(issue.path).name}"
                    )

    _check_latest(store, report, repair=repair)
    _check_datasets(store, report, repair=repair)
    report.repaired = repair and not report.unrecoverable and bool(report.actions)
    return report


def _check_datasets(store, report: FsckReport, *, repair: bool) -> None:
    """Validate the dataset registry (``datasets.json``) against the store.

    Two failure shapes: an unreadable/ill-schemed registry file (repair
    quarantines it — losing aliases is recoverable, serving garbage is
    not), and a *dangling* dataset whose pinned version is gone (repair
    drops the name, so GC protection reflects versions that exist).
    """
    from repro.serving.datasets import DatasetError, DatasetRegistry

    registry = DatasetRegistry(store)
    if not registry.path.exists():
        return
    try:
        registry.load()
    except DatasetError as error:
        report.issues.append(
            Issue(code="bad_datasets", path=str(registry.path), detail=str(error))
        )
        if repair:
            _quarantine(Path(report.root), registry.path, report)
        return
    for name, version in sorted(registry.dangling().items()):
        report.issues.append(
            Issue(
                code="dataset_dangling",
                path=str(registry.path),
                detail=f"dataset {name!r} pins missing version {version!r}",
                version=version,
            )
        )
        if repair:
            registry.remove(name)
            report.actions.append(
                f"dropped dangling dataset {name!r} (version {version!r} is gone)"
            )


def _check_latest(store, report: FsckReport, *, repair: bool) -> None:
    """Validate (and with ``repair`` fix) the ``LATEST`` pointer.

    Shared by the plain and sharded sweeps: both stores point a one-line
    ``LATEST`` file at a version name, and the repair is the same —
    repoint at the newest version that verified clean, or remove the
    pointer when nothing clean remains.
    """
    root = Path(report.root)
    pointer = root / "LATEST"
    latest = store.latest()
    report.latest = latest
    ok = (
        latest in report.clean_versions
        if latest is not None
        else not report.clean_versions  # empty store: no pointer is fine
    )
    if ok:
        return
    if latest is None:
        detail = "LATEST pointer missing but clean versions exist"
    elif latest in report.corrupt_versions:
        detail = f"LATEST points at corrupt version {latest!r}"
    else:
        detail = f"LATEST points at nonexistent version {latest!r}"
    report.issues.append(
        Issue(code="bad_latest", path=str(pointer), detail=detail)
    )
    if not repair:
        return
    if report.clean_versions:
        newest = report.clean_versions[-1]
        store.set_latest(newest)
        report.latest = newest
        report.actions.append(f"repointed LATEST at {newest}")
    elif pointer.exists():
        pointer.unlink()
        report.latest = None
        report.actions.append("removed dangling LATEST pointer")


def _fsck_sharded(store, *, repair: bool) -> FsckReport:
    """Sweep a sharded root: segments first, then the logical layer.

    A logical version is clean iff every segment version it names
    verified clean in its segment store; a corrupt logical version's
    manifest is quarantined (the segment sweeps already quarantined the
    bad segment data itself).
    """
    from repro.serving.sharding.store import ShardedEmbeddingStore

    assert isinstance(store, ShardedEmbeddingStore)
    root = store.root
    report = FsckReport(root=str(root))

    segment_clean: list[set[str]] = []
    for shard in range(store.n_shards):
        segment_report = _fsck_plain(store.segment_store(shard), repair=repair)
        # Segment LATEST pointers are unused (logical manifests pin exact
        # segment versions), so a missing one is not an issue here.
        report.issues.extend(
            issue
            for issue in segment_report.issues
            if issue.code != "bad_latest"
        )
        report.actions.extend(
            f"shard-{shard:04d}: {action}" for action in segment_report.actions
        )
        segment_clean.append(set(segment_report.clean_versions))

    for orphan in find_orphans(root):
        report.issues.append(
            Issue(
                code="orphan_staging",
                path=str(orphan),
                detail=f"abandoned staging debris {orphan.name}",
            )
        )
        if repair:
            if orphan.is_dir():
                shutil.rmtree(orphan, ignore_errors=True)
            else:
                orphan.unlink(missing_ok=True)
            report.actions.append(f"removed staging debris {orphan.name}")

    for version in store.versions():
        manifest_path = root / "versions" / f"{version}.json"
        try:
            manifest = store.manifest(version)
            entries = manifest["shards"]
            broken = [
                entry
                for entry in entries
                if entry["version"] not in segment_clean[entry["shard"]]
            ]
        except (OSError, ValueError, KeyError, IndexError, TypeError) as error:
            report.issues.append(
                Issue(
                    code="bad_manifest",
                    path=str(manifest_path),
                    detail=f"{version}: logical manifest unreadable: {error}",
                    version=version,
                )
            )
            broken = None
        if broken:
            for entry in broken:
                report.issues.append(
                    Issue(
                        code="bad_manifest",
                        path=str(manifest_path),
                        detail=(
                            f"{version}: names segment version "
                            f"{entry['version']!r} on shard {entry['shard']} "
                            "which is missing or corrupt"
                        ),
                        version=version,
                    )
                )
        if broken or broken is None:
            report.corrupt_versions.append(version)
            if repair:
                _quarantine(root, manifest_path, report)
        else:
            report.clean_versions.append(version)

    _check_latest(store, report, repair=repair)
    report.repaired = repair and not report.unrecoverable and bool(report.actions)
    return report


def _journal_repairs(journal, report: FsckReport, sweep: str) -> None:
    """Record the repairs a sweep made in the ops event journal."""
    if journal is None or not report.actions:
        return
    journal.emit(
        "fsck_repair",
        sweep=sweep,
        root=report.root,
        actions=list(report.actions),
        issues=len(report.issues),
        repaired=report.repaired,
    )


def fsck(root, *, repair: bool = False, journal=None) -> FsckReport:
    """Sweep a store root (plain or sharded auto-detected) for damage.

    ``repair=False`` only reports; ``repair=True`` additionally removes
    staging debris, quarantines corrupt versions under
    ``<root>/quarantine/`` and repairs the ``LATEST`` pointer.  Never
    deletes version data — quarantined directories can be inspected or
    restored by hand.  Repairs taken are appended to ``journal`` (an
    :class:`~repro.serving.obs.journal.EventJournal`) when one is given.
    """
    from repro.serving.sharding.store import ShardedEmbeddingStore

    root = Path(root)
    if ShardedEmbeddingStore.is_sharded_root(root):
        report = _fsck_sharded(ShardedEmbeddingStore(root), repair=repair)
        _journal_repairs(journal, report, "store")
        return report
    if not (root / "versions").is_dir():
        # Don't let EmbeddingStore.__init__ mkdir a store skeleton into a
        # path that plainly isn't one — report it instead.
        report = FsckReport(root=str(root))
        report.issues.append(
            Issue(
                code="not_a_store",
                path=str(root),
                detail=f"{root} is not an embedding store root",
                repairable=False,
            )
        )
        return report
    report = _fsck_plain(EmbeddingStore(root), repair=repair)
    _journal_repairs(journal, report, "store")
    return report


# -- delta-log (WAL) sweep ---------------------------------------------
def fsck_wal(root, *, repair: bool = False, journal=None) -> FsckReport:
    """Sweep a delta-log directory (``repro fsck --wal``) for damage.

    Reuses the store sweep's report/issue machinery and exit contract:
    ``0`` clean, ``1`` repairable damage (repaired with ``repair=True``),
    ``2`` the log cannot support recovery even after repair.  Issue codes:

    - ``torn_segment`` — a segment ends mid-record (writer killed during
      an append).  Repair truncates at the last valid record, exactly
      what :class:`~repro.serving.wal.log.DeltaLog` does on open; fsck
      makes the same recovery available offline and for *non-tail*
      segments the open path refuses to touch.
    - ``bad_lsn`` — the LSN chain breaks: a record out of sequence
      inside a segment (repair truncates before it), a gap between
      segments, or a log that starts after its own checkpoint (both
      unrepairable: the missing records are simply gone).
    - ``bad_header`` — a segment file that is not a WAL segment at all;
      repair quarantines it (never deletes).
    - ``epoch_regression`` — a segment's fencing epoch is *lower* than
      its predecessor's (terms only ever go up; a mix like this means
      segments from two histories were interleaved).  Repair
      quarantines the regressed segment and everything after it.
    - ``diverged_tail`` — a ``DIVERGED`` marker left by a fenced
      standby: every record at or past ``first_diverged_lsn`` belongs
      to a dead term and was never acked under the new one.  Repair
      quarantines a byte-exact copy of the diverged suffix, truncates
      the boundary segment before the first diverged record (keeping
      every replicated record below it), and clears the marker.
    - ``bad_checkpoint`` / ``not_a_wal`` — unrecoverable as marked.

    Segments after the first damaged-and-cut point are unreachable (the
    chain is broken); repair quarantines them under
    ``<root>/quarantine/``.
    """
    from repro.serving.wal.compactor import BASE_GRAPH_FILE, CHECKPOINT_FILE
    from repro.serving.wal.log import scan_segment

    root = Path(root)
    report = FsckReport(root=str(root))
    segments = sorted(root.glob("*.wal")) if root.is_dir() else []
    checkpoint_path = root / CHECKPOINT_FILE
    if not root.is_dir() or (not segments and not checkpoint_path.exists()):
        report.issues.append(
            Issue(
                code="not_a_wal",
                path=str(root),
                detail=f"{root} is not a delta-log directory",
                repairable=False,
            )
        )
        return report

    checkpoint_lsn = 0
    if checkpoint_path.exists():
        try:
            checkpoint = json.loads(checkpoint_path.read_text())
            checkpoint_lsn = int(checkpoint["lsn"])
            base = checkpoint["graph"]
        except (OSError, ValueError, KeyError, TypeError) as error:
            report.issues.append(
                Issue(
                    code="bad_checkpoint",
                    path=str(checkpoint_path),
                    detail=f"checkpoint unreadable: {error}",
                    repairable=False,
                )
            )
        else:
            if not (root / base).is_file():
                report.issues.append(
                    Issue(
                        code="bad_checkpoint",
                        path=str(root / base),
                        detail=f"checkpoint names missing base graph {base!r}",
                        repairable=False,
                    )
                )
    elif (root / BASE_GRAPH_FILE).is_file():
        report.issues.append(
            Issue(
                code="bad_checkpoint",
                path=str(checkpoint_path),
                detail=f"{BASE_GRAPH_FILE} present but CHECKPOINT missing",
                repairable=False,
            )
        )

    expected: int | None = None  # next LSN the chain must continue at
    last_epoch = 0  # fencing terms must be monotone across the chain
    scanned: list = []  # (path, info) of surviving segments, in order
    chain_broken = False
    for position, path in enumerate(segments):
        name = path.name
        if chain_broken:
            # Everything past a cut/quarantine point is unreachable:
            # replay stops at the break, so these records cannot be
            # reached in order again.
            report.corrupt_versions.append(name)
            report.issues.append(
                Issue(
                    code="bad_lsn",
                    path=str(path),
                    detail=f"{name}: unreachable past a damaged predecessor",
                )
            )
            if repair:
                _quarantine(root, path, report)
            continue
        records, info = scan_segment(path)
        del records
        if info.error is not None and info.error.startswith("bad_header"):
            report.corrupt_versions.append(name)
            report.issues.append(
                Issue(code="bad_header", path=str(path), detail=f"{name}: {info.error}")
            )
            if repair:
                _quarantine(root, path, report)
            chain_broken = True
            continue
        if info.epoch < last_epoch:
            report.corrupt_versions.append(name)
            report.issues.append(
                Issue(
                    code="epoch_regression",
                    path=str(path),
                    detail=(
                        f"{name}: epoch {info.epoch} regresses from "
                        f"{last_epoch} — fencing terms only ever go up"
                    ),
                )
            )
            if repair:
                _quarantine(root, path, report)
            chain_broken = True
            continue
        last_epoch = info.epoch
        if expected is None and checkpoint_lsn and info.first_lsn > checkpoint_lsn + 1:
            report.issues.append(
                Issue(
                    code="bad_lsn",
                    path=str(path),
                    detail=(
                        f"{name}: log starts at LSN {info.first_lsn} but the "
                        f"checkpoint covers only through {checkpoint_lsn} — "
                        f"records {checkpoint_lsn + 1}..{info.first_lsn - 1} "
                        "are lost"
                    ),
                    repairable=False,
                )
            )
        elif expected is not None and info.first_lsn != expected:
            report.corrupt_versions.append(name)
            report.issues.append(
                Issue(
                    code="bad_lsn",
                    path=str(path),
                    detail=(
                        f"{name}: first LSN is {info.first_lsn}, the chain "
                        f"expected {expected}"
                    ),
                    repairable=False,
                )
            )
            if repair:
                _quarantine(root, path, report)
            chain_broken = True
            continue
        if info.error is not None:
            code = (
                "torn_segment" if info.error.startswith("torn_tail") else "bad_lsn"
            )
            report.issues.append(
                Issue(
                    code=code,
                    path=str(path),
                    detail=(
                        f"{name}: {info.error}; {info.n_records} valid "
                        f"record(s) survive up to byte {info.valid_bytes}"
                    ),
                )
            )
            if repair:
                with open(path, "r+b") as handle:
                    handle.truncate(info.valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                report.actions.append(
                    f"truncated {name} at byte {info.valid_bytes} "
                    f"({info.n_records} records kept)"
                )
            if position != len(segments) - 1:
                chain_broken = True  # records after the cut are unreachable
        report.clean_versions.append(name)
        scanned.append((path, info))
        expected = info.first_lsn + info.n_records
        report.latest = None if expected <= 1 else f"lsn={expected - 1}"

    _check_diverged_tail(root, report, scanned, repair=repair)

    report.repaired = repair and not report.unrecoverable and bool(report.actions)
    _journal_repairs(journal, report, "wal")
    return report


def _check_diverged_tail(
    root: Path, report: FsckReport, scanned: list, *, repair: bool
) -> None:
    """Honor a standby's ``DIVERGED`` marker (see ``wal/replication.py``).

    The marker pins ``first_diverged_lsn``: the standby held records at
    and past that LSN from an epoch the new primary's history does not
    contain.  Everything *below* it was replicated under a live term
    and must survive repair bit-identically; everything at/past it is
    quarantined (full segments moved, the boundary segment copied then
    truncated before the first diverged record) so the node can rejoin
    as a standby of the new primary.
    """
    import shutil

    from repro.serving.wal.replication import (
        clear_diverged_marker,
        read_diverged_marker,
    )

    marker = read_diverged_marker(root)
    if marker is None:
        return
    boundary = int(marker["first_diverged_lsn"])
    report.issues.append(
        Issue(
            code="diverged_tail",
            path=str(root / "DIVERGED"),
            detail=(
                f"records from LSN {boundary} on belong to fenced epoch "
                f"{marker.get('local_epoch')} (primary moved to epoch "
                f"{marker.get('primary_epoch')}); they were never acked "
                "under the new term"
            ),
        )
    )
    if not repair:
        return
    for path, info in scanned:
        if not path.is_file():
            continue  # already quarantined by an earlier issue
        seg_last = info.first_lsn + info.n_records - 1
        if info.first_lsn >= boundary:
            _quarantine(root, path, report)
        elif seg_last >= boundary:
            # Boundary falls inside this segment: preserve the diverged
            # suffix in quarantine, then cut the live file byte-exactly
            # before record `boundary`.
            quarantine = root / QUARANTINE_DIR
            quarantine.mkdir(exist_ok=True)
            copy = quarantine / f"{path.name}.diverged"
            shutil.copyfile(path, copy)
            cut = info.record_offset(boundary)
            with open(path, "r+b") as handle:
                handle.truncate(cut)
                handle.flush()
                os.fsync(handle.fileno())
            report.actions.append(
                f"truncated {path.name} at byte {cut} (records "
                f"{boundary}.. moved to {copy.relative_to(root)})"
            )
    _drop_diverged_epochs(root, boundary, report)
    clear_diverged_marker(root)
    report.actions.append("cleared DIVERGED marker")


def _drop_diverged_epochs(root: Path, boundary: int, report: FsckReport) -> None:
    """Rewrite ``EPOCHS`` without terms that began inside the cut tail.

    An epoch whose start LSN sits at/past the divergence boundary lived
    entirely in the quarantined suffix; leaving it in the history would
    make the reopened log claim a term it no longer holds records for
    (and skew every future fencing-boundary computation).
    """
    from repro.serving.wal.log import EPOCHS_FILE

    path = root / EPOCHS_FILE
    try:
        raw = json.loads(path.read_text())
        history = [
            entry
            for entry in raw.get("history", [])
            if int(entry["start_lsn"]) < boundary
        ]
    except (OSError, ValueError, KeyError, TypeError):
        return  # absent/unreadable: DeltaLog rebuilds it from segments
    if len(history) == len(raw.get("history", [])):
        return
    raw["history"] = history or [{"epoch": 1, "start_lsn": 1}]
    path.write_text(json.dumps(raw))
    report.actions.append(
        f"dropped {EPOCHS_FILE} entries at/past LSN {boundary}"
    )


def verify_open_target(store, version: str | None) -> None:
    """Refuse (raise) if the version a service is about to open is damaged.

    ``version=None`` resolves through the store's ``LATEST`` pointer; a
    store with no versions at all passes (the caller's ``open`` raises
    its usual ``FileNotFoundError``).  Raises
    :class:`StoreCorruptionError` listing every issue found.
    """
    from repro.serving.sharding.store import ShardedEmbeddingStore

    target = version if version is not None else store.latest()
    if target is None:
        return
    if isinstance(store, ShardedEmbeddingStore):
        try:
            manifest = store.manifest(target)
            entries = manifest["shards"]
        except FileNotFoundError:
            return  # open() raises the canonical missing-version error
        except (ValueError, KeyError, TypeError) as error:
            raise StoreCorruptionError(
                store.root,
                target,
                [
                    Issue(
                        code="bad_manifest",
                        path=str(store.root / "versions" / f"{target}.json"),
                        detail=f"{target}: logical manifest unreadable: {error}",
                        version=target,
                    )
                ],
            )
        issues = []
        for entry in entries:
            segment = store.segment_store(entry["shard"])
            if not (segment.root / "versions" / entry["version"]).is_dir():
                issues.append(
                    Issue(
                        code="bad_manifest",
                        path=str(segment.root),
                        detail=(
                            f"{target}: segment version {entry['version']!r} "
                            f"missing on shard {entry['shard']}"
                        ),
                        version=target,
                    )
                )
            else:
                issues.extend(verify_version(segment, entry["version"]))
    else:
        if not (store.root / "versions" / target).is_dir():
            return  # open() raises the canonical missing-version error
        issues = verify_version(store, target)
    fatal = [issue for issue in issues if issue.code != "corrupt_index"]
    if fatal:
        raise StoreCorruptionError(store.root, target, fatal)
