"""Wire protocol for the HTTP serving front-end.

One module owns what crosses the process boundary — request validation,
the structured error envelope, and the result encoding — so the server
(:mod:`repro.serving.http.server`) and the client
(:mod:`repro.serving.http.client`) cannot drift apart.

Design notes:

- **Bit-exact floats.** Scores are transmitted as JSON numbers.  Python
  serializes a float via ``repr`` (shortest round-trip form) and parses
  it back to the identical IEEE-754 bits, so exact top-k over HTTP is
  *bit-identical* to the in-process answer — the property the CI server
  smoke asserts.  The one non-finite value the engine produces, the
  ``-inf`` score of an id ``-1`` padding slot, is encoded as JSON
  ``null`` (standard JSON has no ``Infinity``), and decoded back.
- **Structured errors.** Every non-2xx response carries
  ``{"error": {"code", "message", "details"}}``.  ``code`` is a stable
  machine-readable string (``invalid_request``, ``node_not_found``,
  ``refresh_in_progress``, ``draining``, ...); the HTTP status carries
  the class (400 validation, 404 missing resource, 409 conflict,
  503 unavailable/draining).
"""

from __future__ import annotations

import json
import math
from typing import Any, Sequence

import numpy as np

PROTOCOL_SCHEMA = "repro.serving.http/v1"

# Stable endpoint paths (the server routes on these; the client targets them).
TOPK = "/v1/topk"
TOPK_BATCH = "/v1/topk:batch"
SIMILAR = "/v1/similar_by_vector"
DESCRIBE = "/v1/describe"
HEALTHZ = "/healthz"
METRICS = "/metrics"
REFRESH = "/admin/refresh"

# Endpoints that only read the active snapshot: safe for a client to
# retry on another replica after a connection error or a 503.
READ_ENDPOINTS = frozenset({TOPK, TOPK_BATCH, SIMILAR, DESCRIBE, HEALTHZ, METRICS})


class ApiError(Exception):
    """A protocol-level failure with a wire representation.

    Raised by request validators and endpoint handlers; the server turns
    it into the structured error JSON, the client re-raises it from the
    parsed body — so both sides of the wire speak the same exception.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: dict | None = None,
    ) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.details = details or {}

    def body(self) -> dict:
        return {
            "error": {
                "code": self.code,
                "message": self.message,
                "details": self.details,
            }
        }

    @classmethod
    def from_body(cls, status: int, body: dict) -> "ApiError":
        error = body.get("error", {}) if isinstance(body, dict) else {}
        return cls(
            status,
            error.get("code", "unknown"),
            error.get("message", "unknown error"),
            error.get("details") or {},
        )


def parse_json_body(raw: bytes) -> dict:
    """Decode a request/response body; empty bytes mean ``{}``."""
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ApiError(400, "invalid_json", f"body is not valid JSON: {error}")
    if not isinstance(body, dict):
        raise ApiError(
            400, "invalid_request", "body must be a JSON object",
            {"got": type(body).__name__},
        )
    return body


def dump_json(payload: dict) -> bytes:
    """Serialize a response payload (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":"), allow_nan=False).encode(
        "utf-8"
    )


# -- field validators --------------------------------------------------
def require_int(
    body: dict,
    name: str,
    *,
    default: int | None = None,
    required: bool = False,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int | None:
    value = body.get(name)
    if value is None:
        if required:
            raise ApiError(400, "invalid_request", f"missing field {name!r}")
        return default
    # bool subclasses int; `"node": true` must not pass as node 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be an integer",
            {name: value},
        )
    if minimum is not None and value < minimum:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be >= {minimum}",
            {name: value},
        )
    if maximum is not None and value > maximum:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be <= {maximum}",
            {name: value},
        )
    return value


def require_int_list(body: dict, name: str, *, max_items: int) -> list[int]:
    value = body.get(name)
    if not isinstance(value, list) or not value:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be a non-empty list"
        )
    if len(value) > max_items:
        raise ApiError(
            400, "invalid_request",
            f"field {name!r} exceeds the {max_items}-item limit",
            {"items": len(value)},
        )
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only integers", {name: item},
            )
    return value


def require_float_list(body: dict, name: str, *, max_items: int) -> list[float]:
    value = body.get(name)
    if not isinstance(value, list) or not value:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be a non-empty list"
        )
    if len(value) > max_items:
        raise ApiError(
            400, "invalid_request",
            f"field {name!r} exceeds the {max_items}-item limit",
            {"items": len(value)},
        )
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only numbers", {name: item},
            )
        if not math.isfinite(item):
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only finite numbers",
            )
        out.append(float(item))
    return out


def reject_unknown_fields(body: dict, allowed: Sequence[str]) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ApiError(
            400, "invalid_request", "unknown request fields",
            {"unknown": unknown, "allowed": sorted(allowed)},
        )


# -- result encoding ---------------------------------------------------
def encode_scores(scores: np.ndarray) -> list:
    """Float scores → JSON list; ``-inf`` padding becomes ``null``."""
    return [None if s == -np.inf else s for s in scores.tolist()]


def decode_scores(values: Sequence[Any]) -> np.ndarray:
    """JSON score list → float64 array; ``null`` becomes ``-inf``."""
    return np.array(
        [-np.inf if v is None else float(v) for v in values], dtype=np.float64
    )


def encode_result(result) -> dict:
    """A single :class:`~repro.serving.service.QueryResult` row → wire dict."""
    return {
        "version": result.version,
        "ids": [int(i) for i in result.ids.tolist()],
        "scores": encode_scores(result.scores),
        "cached": bool(result.cached),
        "latency_s": float(result.latency_s),
    }


def encode_batch_result(result) -> dict:
    """A stacked batch :class:`QueryResult` → wire dict (row-major)."""
    return {
        "version": result.version,
        "ids": [[int(i) for i in row] for row in result.ids.tolist()],
        "scores": [encode_scores(row) for row in np.atleast_2d(result.scores)],
        "latency_s": float(result.latency_s),
    }
