"""Wire protocol for the HTTP serving front-end.

One module owns what crosses the process boundary — request validation,
the structured error envelope, and the result encoding — so the server
(:mod:`repro.serving.http.server`) and the client
(:mod:`repro.serving.http.client`) cannot drift apart.

Design notes:

- **Bit-exact floats.** Scores are transmitted as JSON numbers.  Python
  serializes a float via ``repr`` (shortest round-trip form) and parses
  it back to the identical IEEE-754 bits, so exact top-k over HTTP is
  *bit-identical* to the in-process answer — the property the CI server
  smoke asserts.  The one non-finite value the engine produces, the
  ``-inf`` score of an id ``-1`` padding slot, is encoded as JSON
  ``null`` (standard JSON has no ``Infinity``), and decoded back.
- **Structured errors.** Every non-2xx response carries
  ``{"error": {"code", "message", "details"}}``.  ``code`` is a stable
  machine-readable string (``invalid_request``, ``node_not_found``,
  ``refresh_in_progress``, ``draining``, ...); the HTTP status carries
  the class (400 validation, 404 missing resource, 409 conflict,
  503 unavailable/draining).
- **Binary frames.** The three data endpoints also speak a raw binary
  frame (:data:`BINARY_CONTENT_TYPE`, negotiated via ``Accept`` /
  ``Content-Type``; JSON stays the default and the compatibility
  surface).  A frame is a tiny JSON header for the scalar fields plus
  the raw little-endian bytes of every array — float64 scores cross the
  wire as their exact IEEE-754 bits, so HTTP↔in-process bit-identity
  holds *by construction* rather than by ``repr`` round-trip, and the
  per-element float formatting/parsing cost disappears.  Errors are
  always JSON, whatever the request spoke.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Sequence

import numpy as np

from repro.search.knn import FilterError, NodeFilter

PROTOCOL_SCHEMA = "repro.serving.http/v1"

# Stable endpoint paths (the server routes on these; the client targets them).
TOPK = "/v1/topk"
TOPK_BATCH = "/v1/topk:batch"
SIMILAR = "/v1/similar_by_vector"
DESCRIBE = "/v1/describe"
UPSERT = "/v1/upsert"
REPLICATE = "/v1/replicate"
HEALTHZ = "/healthz"
METRICS = "/metrics"
REFRESH = "/admin/refresh"
PROMOTE = "/admin/promote"
TRACES = "/debug/traces"

# Endpoints that only read the active snapshot: safe for a client to
# retry on another replica after a connection error or a 503.  UPSERT is
# deliberately absent: an append may have become durable even when the
# ack was lost, so the client never retries it automatically.
READ_ENDPOINTS = frozenset(
    {TOPK, TOPK_BATCH, SIMILAR, DESCRIBE, HEALTHZ, METRICS, TRACES}
)

# Endpoints whose requests/responses carry vectors or id/score arrays —
# the only ones worth (and capable of) speaking the binary frame format.
DATA_ENDPOINTS = frozenset({TOPK, TOPK_BATCH, SIMILAR, UPSERT})

# The negotiated media type for binary frames.  A client *opts in* by
# listing it in ``Accept`` (responses) or using it as the request
# ``Content-Type`` (bodies); a server that predates it simply keeps
# answering JSON, which every client must accept.
BINARY_CONTENT_TYPE = "application/x-repro-frame"
JSON_CONTENT_TYPE = "application/json"

# Request correlation: the client sends one id per *logical* request in
# this header (the same id on every retry/failover attempt); the server
# echoes it on every response and stamps it into every error envelope
# and trace, so one id follows a request across client attempts, the
# handling worker's /debug/traces, and the slow-query log.
REQUEST_ID_HEADER = "X-Request-Id"

# Deadline propagation: the client sends its *remaining* per-request
# budget (milliseconds, recomputed before every attempt) in this header;
# a server that sees the budget already spent sheds the request with a
# structured 503 ``deadline_exceeded`` instead of burning a GEMM on an
# answer nobody is waiting for.
DEADLINE_HEADER = "X-Deadline-Ms"

# Read-freshness: servers with a write path stamp the ``applied_lsn`` of
# the snapshot that answered a data read into this response header, so a
# client's ``min_lsn=`` guard can reject replies from a replica (or a
# freshly promoted standby) that has not yet folded the caller's own
# acked writes.
LSN_HEADER = "X-Lsn-Served"

# The replication feed's response media type: a finite sequence of
# CRC-guarded binary frames (see :mod:`repro.serving.wal.replication`).
REPLICATION_CONTENT_TYPE = "application/x-repro-wal"

_FRAME_MAGIC = b"RPF1"
_FRAME_DTYPES = ("<i8", "<f8")  # the wire is explicitly little-endian 64-bit
_MAX_FRAME_HEADER_BYTES = 1 << 20
_MAX_FRAME_ARRAYS = 16


class ApiError(Exception):
    """A protocol-level failure with a wire representation.

    Raised by request validators and endpoint handlers; the server turns
    it into the structured error JSON, the client re-raises it from the
    parsed body — so both sides of the wire speak the same exception.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: dict | None = None,
        request_id: str | None = None,
    ) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.details = details or {}
        # The correlation id of the failing request.  Handlers raise
        # without it; the server's dispatch stamps it before the body is
        # written, so *every* wire error envelope carries the id the
        # response header echoes (the regression test for this iterates
        # the error paths).
        self.request_id = request_id

    def body(self) -> dict:
        return {
            "error": {
                "code": self.code,
                "message": self.message,
                "details": self.details,
                "request_id": self.request_id,
            }
        }

    @classmethod
    def from_body(cls, status: int, body: dict) -> "ApiError":
        error = body.get("error", {}) if isinstance(body, dict) else {}
        return cls(
            status,
            error.get("code", "unknown"),
            error.get("message", "unknown error"),
            error.get("details") or {},
            error.get("request_id"),
        )


def parse_json_body(raw: bytes) -> dict:
    """Decode a request/response body; empty bytes mean ``{}``."""
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ApiError(400, "invalid_json", f"body is not valid JSON: {error}")
    if not isinstance(body, dict):
        raise ApiError(
            400, "invalid_request", "body must be a JSON object",
            {"got": type(body).__name__},
        )
    return body


def dump_json(payload: dict) -> bytes:
    """Serialize a response payload (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":"), allow_nan=False).encode(
        "utf-8"
    )


# -- binary frames -----------------------------------------------------
# Layout:  b"RPF1" | u32 header_len (LE) | header JSON | raw array bytes.
# The header carries the scalar fields plus an ``arrays`` list of
# ``{"name", "dtype", "shape"}`` descriptors; the array payloads follow
# concatenated in descriptor order, C-contiguous, little-endian.  Only
# ``<i8`` (ids/nodes) and ``<f8`` (vectors/scores) are legal on the
# wire, so a frame is unambiguous regardless of either side's platform.


def encode_frame(header: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize scalar fields + named arrays into one binary frame."""
    descriptors = []
    blobs = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        if array.dtype.kind == "f":
            wire = array.astype("<f8", copy=False)
        elif array.dtype.kind in "iu":
            wire = array.astype("<i8", copy=False)
        else:
            raise ValueError(f"array {name!r} has unframeable dtype {array.dtype}")
        descriptors.append(
            {"name": name, "dtype": wire.dtype.str, "shape": list(wire.shape)}
        )
        blobs.append(wire.tobytes())
    head = dict(header)
    head["arrays"] = descriptors
    head_bytes = dump_json(head)
    return b"".join(
        [_FRAME_MAGIC, struct.pack("<I", len(head_bytes)), head_bytes, *blobs]
    )


def _frame_error(message: str, details: dict | None = None) -> ApiError:
    return ApiError(400, "invalid_frame", message, details)


def decode_frame(raw: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Parse a binary frame into (header dict, name → array).

    Every malformation — bad magic, truncated header, unknown dtype,
    byte count that disagrees with the declared shapes — raises
    :class:`ApiError` with the stable code ``invalid_frame``, so a
    client feeding garbage gets the same structured 400 envelope a
    malformed JSON body would.
    """
    if len(raw) < 8 or raw[:4] != _FRAME_MAGIC:
        raise _frame_error("not a binary frame (bad magic)")
    (header_len,) = struct.unpack("<I", raw[4:8])
    if header_len > _MAX_FRAME_HEADER_BYTES or 8 + header_len > len(raw):
        raise _frame_error(
            "frame header length out of bounds", {"header_len": header_len}
        )
    try:
        header = json.loads(raw[8 : 8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _frame_error(f"frame header is not valid JSON: {error}")
    if not isinstance(header, dict):
        raise _frame_error("frame header must be a JSON object")
    descriptors = header.pop("arrays", [])
    if not isinstance(descriptors, list) or len(descriptors) > _MAX_FRAME_ARRAYS:
        raise _frame_error("frame 'arrays' must be a short descriptor list")
    arrays: dict[str, np.ndarray] = {}
    offset = 8 + header_len
    for descriptor in descriptors:
        if (
            not isinstance(descriptor, dict)
            or not isinstance(descriptor.get("name"), str)
            or descriptor.get("dtype") not in _FRAME_DTYPES
            or not isinstance(descriptor.get("shape"), list)
        ):
            raise _frame_error("malformed array descriptor", {"got": descriptor})
        shape = descriptor["shape"]
        if len(shape) > 2 or not all(
            isinstance(extent, int) and 0 <= extent <= 2**32 for extent in shape
        ):
            raise _frame_error("array shape must be 1-D or 2-D non-negative ints")
        count = math.prod(shape)  # python ints: no overflow games via shape
        nbytes = count * 8
        if offset + nbytes > len(raw):
            raise _frame_error(
                "frame truncated: array bytes exceed the body",
                {"array": descriptor["name"]},
            )
        arrays[descriptor["name"]] = np.frombuffer(
            raw, dtype=descriptor["dtype"], count=count, offset=offset
        ).reshape(shape)
        offset += nbytes
    if offset != len(raw):
        raise _frame_error(
            "frame has trailing bytes past the declared arrays",
            {"extra_bytes": len(raw) - offset},
        )
    return header, arrays


def decode_frame_body(raw: bytes) -> dict:
    """A decoded frame as one request-body dict (header fields + arrays).

    The server-side mirror of :func:`parse_json_body`: handlers see one
    flat dict either way, with array-valued fields as ndarrays instead
    of JSON lists.  A name collision between a header field and an array
    would silently shadow one of them — refuse instead.
    """
    header, arrays = decode_frame(raw)
    overlap = sorted(set(header) & set(arrays))
    if overlap:
        raise _frame_error("field appears as both header and array", {"names": overlap})
    header.update(arrays)
    return header


# -- field validators --------------------------------------------------
def require_int(
    body: dict,
    name: str,
    *,
    default: int | None = None,
    required: bool = False,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int | None:
    value = body.get(name)
    if value is None:
        if required:
            raise ApiError(400, "invalid_request", f"missing field {name!r}")
        return default
    # bool subclasses int; `"node": true` must not pass as node 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be an integer",
            {name: value},
        )
    if minimum is not None and value < minimum:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be >= {minimum}",
            {name: value},
        )
    if maximum is not None and value > maximum:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be <= {maximum}",
            {name: value},
        )
    return value


def require_int_list(body: dict, name: str, *, max_items: int) -> list[int]:
    value = body.get(name)
    if not isinstance(value, list) or not value:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be a non-empty list"
        )
    if len(value) > max_items:
        raise ApiError(
            400, "invalid_request",
            f"field {name!r} exceeds the {max_items}-item limit",
            {"items": len(value)},
        )
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only integers", {name: item},
            )
    return value


def require_float_list(body: dict, name: str, *, max_items: int) -> list[float]:
    value = body.get(name)
    if not isinstance(value, list) or not value:
        raise ApiError(
            400, "invalid_request", f"field {name!r} must be a non-empty list"
        )
    if len(value) > max_items:
        raise ApiError(
            400, "invalid_request",
            f"field {name!r} exceeds the {max_items}-item limit",
            {"items": len(value)},
        )
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only numbers", {name: item},
            )
        if not math.isfinite(item):
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only finite numbers",
            )
        out.append(float(item))
    return out


def require_vector_field(body: dict, name: str, *, max_items: int) -> np.ndarray:
    """A float vector field from either wire format → 1-D float64 array.

    JSON bodies carry it as a number list (validated element-wise);
    binary frames deliver an ndarray directly — validate shape, dtype
    and finiteness vectorized, without a per-element Python loop.
    """
    value = body.get(name)
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must be a float64 array",
                {"dtype": str(value.dtype)},
            )
        if value.ndim != 1 or value.size == 0:
            raise ApiError(
                400, "invalid_request", f"field {name!r} must be a non-empty vector"
            )
        if value.size > max_items:
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} exceeds the {max_items}-item limit",
                {"items": int(value.size)},
            )
        if not np.isfinite(value).all():
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must contain only finite numbers",
            )
        return value
    return np.asarray(
        require_float_list(body, name, max_items=max_items), dtype=np.float64
    )


def require_node_field(body: dict, name: str, *, max_items: int) -> np.ndarray:
    """A node-id list field from either wire format → 1-D intp array."""
    value = body.get(name)
    if isinstance(value, np.ndarray):
        if value.dtype.kind != "i":
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must be an integer array",
                {"dtype": str(value.dtype)},
            )
        if value.ndim != 1 or value.size == 0:
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} must be a non-empty id list",
            )
        if value.size > max_items:
            raise ApiError(
                400, "invalid_request",
                f"field {name!r} exceeds the {max_items}-item limit",
                {"items": int(value.size)},
            )
        return value.astype(np.intp, copy=False)
    return np.asarray(
        require_int_list(body, name, max_items=max_items), dtype=np.intp
    )


#: Cap on ids per filter family (allow / deny / partitions) on the wire.
MAX_FILTER_IDS = 65536

#: The optional predicate/tuning fields every data endpoint accepts in
#: addition to its own shape fields.  ``filter_allow``/``filter_deny``
#: are the binary-frame spelling of large id sets: raw ``<i8`` arrays
#: instead of JSON integer lists (they merge into the ``filter`` object
#: server-side and are rejected on JSON bodies).
SEARCH_OPTION_FIELDS = ("filter", "params", "filter_allow", "filter_deny")


def parse_filter_field(body: dict) -> NodeFilter | None:
    """The request's ``"filter"`` object (+ frame id arrays) → NodeFilter.

    Accepts the JSON object form on both wire formats; binary frames may
    additionally (or instead) carry ``filter_allow`` / ``filter_deny``
    as raw ``<i8`` arrays, which merge into the object's ``allow`` /
    ``deny`` families.  Any malformation raises :class:`ApiError` with
    the stable ``invalid_filter`` code.  Returns ``None`` when the
    request carries no constraint (absent or no-op filter), so the
    service's unfiltered fast path stays untouched.
    """
    obj = body.get("filter")
    frame_allow = body.get("filter_allow")
    frame_deny = body.get("filter_deny")
    if obj is None and frame_allow is None and frame_deny is None:
        return None
    if obj is not None and not isinstance(obj, dict):
        raise ApiError(
            400, "invalid_filter", "field 'filter' must be an object",
            {"got": type(obj).__name__},
        )
    spec = dict(obj or {})
    for name, array in (("allow", frame_allow), ("deny", frame_deny)):
        if array is None:
            continue
        if not isinstance(array, (np.ndarray, list)):
            raise ApiError(
                400, "invalid_filter",
                f"field 'filter_{name}' must be an id array or list",
                {"got": type(array).__name__},
            )
        if isinstance(array, np.ndarray) and array.ndim != 1:
            raise ApiError(
                400, "invalid_filter", f"field 'filter_{name}' must be 1-D",
                {"shape": list(array.shape)},
            )
        if name in spec:
            raise ApiError(
                400, "invalid_filter",
                f"filter.{name} and the filter_{name} array are mutually "
                "exclusive",
            )
        spec[name] = array
    try:
        node_filter = NodeFilter.from_json(spec)
    except FilterError as error:
        raise ApiError(400, "invalid_filter", str(error))
    for name, ids in (
        ("allow", node_filter.allow),
        ("deny", node_filter.deny),
        ("partitions", node_filter.partitions),
    ):
        if ids is not None and len(ids) > MAX_FILTER_IDS:
            raise ApiError(
                400, "invalid_filter",
                f"filter {name!r} exceeds the {MAX_FILTER_IDS}-id limit",
                {"items": len(ids)},
            )
    return None if node_filter.is_noop else node_filter


def parse_params_field(body: dict, *, legacy_nprobe: int | None = None):
    """The request's ``"params"`` object → SearchParams.

    ``legacy_nprobe`` is the pre-existing top-level ``"nprobe"`` field,
    kept for old clients; it must agree with ``params.nprobe`` when both
    are sent.  Malformed params are an ``invalid_request`` (they predate
    no capability — unlike filters they have no dedicated error code).
    """
    from repro.serving.service import SearchParams

    obj = body.get("params")
    if obj is None:
        return SearchParams(nprobe=legacy_nprobe)
    try:
        params = SearchParams.from_json(obj)
    except ValueError as error:
        raise ApiError(400, "invalid_request", str(error))
    if legacy_nprobe is not None:
        if params.nprobe is not None and params.nprobe != legacy_nprobe:
            raise ApiError(
                400, "invalid_request",
                "'nprobe' and 'params.nprobe' disagree",
                {"nprobe": legacy_nprobe, "params.nprobe": params.nprobe},
            )
        params = SearchParams(
            nprobe=legacy_nprobe,
            rescore_factor=params.rescore_factor,
            select_dtype=params.select_dtype,
        )
    return params


def encode_filter(
    node_filter, *, binary: bool = False
) -> tuple[dict, dict[str, np.ndarray]]:
    """A filter's wire parts: (JSON body fields, binary-frame arrays).

    The client-side mirror of :func:`parse_filter_field`.  JSON bodies
    carry the whole object under ``"filter"``; binary frames move the
    (potentially large) ``allow``/``deny`` id sets out of the JSON
    header into raw ``filter_allow``/``filter_deny`` arrays.
    """
    if node_filter is None:
        return {}, {}
    obj = (
        node_filter.to_json()
        if isinstance(node_filter, NodeFilter)
        else dict(node_filter)
    )
    if not binary:
        return ({"filter": obj} if obj else {}), {}
    arrays: dict[str, np.ndarray] = {}
    for name in ("allow", "deny"):
        ids = obj.pop(name, None)
        if ids is not None:
            arrays[f"filter_{name}"] = np.asarray(ids, dtype=np.int64)
    return ({"filter": obj} if obj else {}), arrays


def reject_unknown_fields(body: dict, allowed: Sequence[str]) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ApiError(
            400, "invalid_request", "unknown request fields",
            {"unknown": unknown, "allowed": sorted(allowed)},
        )


# -- result encoding ---------------------------------------------------
def encode_scores(scores: np.ndarray) -> list:
    """Float scores → JSON list; ``-inf`` padding becomes ``null``."""
    return [None if s == -np.inf else s for s in scores.tolist()]


def decode_scores(values: Sequence[Any]) -> np.ndarray:
    """JSON score list → float64 array; ``null`` becomes ``-inf``."""
    return np.array(
        [-np.inf if v is None else float(v) for v in values], dtype=np.float64
    )


def encode_result(result) -> dict:
    """A single :class:`~repro.serving.service.QueryResult` row → wire dict."""
    payload = {
        "version": result.version,
        "ids": [int(i) for i in result.ids.tolist()],
        "scores": encode_scores(result.scores),
        "cached": bool(result.cached),
        "latency_s": float(result.latency_s),
    }
    if getattr(result, "group", None) is not None:
        payload["group"] = int(result.group)
    return payload


def encode_batch_result(result) -> dict:
    """A stacked batch :class:`QueryResult` → wire dict (row-major)."""
    return {
        "version": result.version,
        "ids": [[int(i) for i in row] for row in result.ids.tolist()],
        "scores": [encode_scores(row) for row in np.atleast_2d(result.scores)],
        "latency_s": float(result.latency_s),
    }


class ResultPayload:
    """A data-endpoint answer before a wire format is chosen.

    Handlers return one of these; the dispatch layer encodes it as JSON
    (:meth:`to_json`, the compatibility default) or as a binary frame
    (:meth:`to_frame`) depending on what the request's ``Accept``
    negotiated.  One object, two encodings — the response content can
    never differ between formats except in representation.
    """

    def __init__(self, result) -> None:
        self.result = result

    def to_json(self) -> dict:
        if self.result.ids.ndim == 1:
            return encode_result(self.result)
        return encode_batch_result(self.result)

    def to_frame(self) -> bytes:
        result = self.result
        header: dict = {
            "version": result.version,
            "latency_s": float(result.latency_s),
        }
        if result.ids.ndim == 1:
            header["cached"] = bool(result.cached)
        if getattr(result, "group", None) is not None:
            header["group"] = int(result.group)
        # Raw float64 score bytes: -inf padding needs no null mapping,
        # and bit-identity with the in-process answer is structural.
        return encode_frame(
            header, {"ids": result.ids, "scores": result.scores}
        )


def parse_result_payload(payload: dict) -> tuple:
    """Normalize a JSON or frame-decoded response into result arrays.

    Returns ``(version, ids, scores, server_latency_s, cached, group)``
    with ``ids`` as intp and ``scores`` as float64 ndarrays, whichever
    wire format delivered them — the client's single decoding path.
    """
    ids = payload["ids"]
    scores = payload["scores"]
    if isinstance(ids, np.ndarray):
        ids = ids.astype(np.intp, copy=False)
        scores = np.asarray(scores, dtype=np.float64)
    elif ids and isinstance(ids[0], list):
        ids = np.asarray(ids, dtype=np.intp)
        scores = np.vstack([decode_scores(row) for row in scores])
    else:
        ids = np.asarray(ids, dtype=np.intp)
        scores = decode_scores(scores)
    return (
        payload["version"],
        ids,
        scores,
        float(payload["latency_s"]),
        bool(payload.get("cached", False)),
        payload.get("group"),
    )
