"""HTTP serving front-end: server, wire protocol, client, load generator.

The network layer over :class:`~repro.serving.service.QueryService`:

- :class:`EmbeddingServer` — threaded stdlib HTTP server with JSON
  endpoints, structured errors, and graceful drain (``server.py``);
- :mod:`~repro.serving.http.protocol` — the wire schema both sides
  share: validation, error envelope, bit-exact score encoding;
- :class:`ServingClient` — retrying, replica-fanning client with
  :meth:`~repro.serving.stats.LatencyStats.merge` fan-in stats
  (``client.py``);
- :func:`run_load` — the closed-loop load generator behind
  ``repro bench-http`` and ``benchmarks/bench_http.py`` (``loadgen.py``);
- :class:`Supervisor` — the pre-fork multi-process tier: one shared
  listen socket, N worker processes, health checks, backoff restarts,
  a crash-loop breaker, rolling drain, and aggregated admin endpoints
  (``supervisor.py``).

Everything is standard library + numpy — no new dependencies.
"""

from repro.serving.http.client import (
    DeadlineExceeded,
    HTTPQueryResult,
    ServingClient,
    ServingUnavailable,
)
from repro.serving.http.loadgen import LoadReport, run_load
from repro.serving.http.protocol import PROTOCOL_SCHEMA, ApiError
from repro.serving.http.server import EmbeddingServer
from repro.serving.http.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "ApiError",
    "DeadlineExceeded",
    "EmbeddingServer",
    "HTTPQueryResult",
    "LoadReport",
    "PROTOCOL_SCHEMA",
    "ServingClient",
    "ServingUnavailable",
    "Supervisor",
    "SupervisorConfig",
    "run_load",
]
