"""HTTP serving front-end: server, wire protocol, client, load generator.

The network layer over :class:`~repro.serving.service.QueryService`:

- :class:`EmbeddingServer` — threaded stdlib HTTP server with JSON
  endpoints, structured errors, and graceful drain (``server.py``);
- :mod:`~repro.serving.http.protocol` — the wire schema both sides
  share: validation, error envelope, bit-exact score encoding;
- :class:`ServingClient` — retrying, replica-fanning client with
  :meth:`~repro.serving.stats.LatencyStats.merge` fan-in stats
  (``client.py``);
- :func:`run_load` — the closed-loop load generator behind
  ``repro bench-http`` and ``benchmarks/bench_http.py`` (``loadgen.py``).

Everything is standard library + numpy — no new dependencies.
"""

from repro.serving.http.client import (
    HTTPQueryResult,
    ServingClient,
    ServingUnavailable,
)
from repro.serving.http.loadgen import LoadReport, run_load
from repro.serving.http.protocol import PROTOCOL_SCHEMA, ApiError
from repro.serving.http.server import EmbeddingServer

__all__ = [
    "ApiError",
    "EmbeddingServer",
    "HTTPQueryResult",
    "LoadReport",
    "PROTOCOL_SCHEMA",
    "ServingClient",
    "ServingUnavailable",
    "run_load",
]
