"""HTTP client for the embedding server: retries, replicas, fan-out.

:class:`ServingClient` is the reference consumer of the wire protocol in
:mod:`repro.serving.http.protocol`:

- **Idempotent-read retries.**  Every read endpoint (top-k, describe,
  health, metrics) only reads an immutable snapshot server-side, so a
  connection error or a 503 (a draining replica) is safely retried on
  the next replica with a small backoff.  ``/admin/refresh`` mutates
  serving state and is never retried — a timeout there must surface to
  the caller, who knows whether re-applying is safe.
- **Replica fan-out.**  ``batch_top_k`` splits a node batch into
  contiguous chunks, one per healthy replica, issues them concurrently,
  and reassembles the rows in caller order.  Replicas must answer from
  the same store version (the chunks are one logical batch); a version
  skew — one replica mid-swap — raises ``replica_version_skew`` so the
  caller can retry the batch rather than silently mixing versions.
- **Fan-in stats.**  One :class:`~repro.serving.stats.LatencyStats` per
  replica, merged on demand with :meth:`LatencyStats.merge` — the same
  disjoint-stream fan-in the shard router uses, one level up.
"""

from __future__ import annotations

import http.client
import threading
import time
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import urlsplit

import numpy as np

from repro.serving.http import protocol
from repro.serving.http.protocol import ApiError
from repro.serving.stats import LatencyStats


class ServingUnavailable(ApiError):
    """No replica could answer: connection failures / 503s all around."""

    def __init__(self, message: str, details: dict | None = None) -> None:
        super().__init__(503, "unavailable", message, details)


@dataclass(frozen=True)
class HTTPQueryResult:
    """A query answer as observed by the client.

    ``latency_s`` is the client-side wall time (network included);
    ``server_latency_s`` is what the server measured for the backend
    work, so the gap between the two is the wire + queueing cost.
    """

    version: str
    ids: np.ndarray
    scores: np.ndarray
    latency_s: float
    server_latency_s: float
    cached: bool = False


class _Replica:
    """One base URL plus its private latency stream."""

    def __init__(self, base_url: str) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme != "http":
            raise ValueError(f"only http:// replicas are supported, got {base_url!r}")
        if split.hostname is None:
            raise ValueError(f"replica URL needs a host: {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        # A path component is a mount prefix (reverse proxy); endpoint
        # paths are appended to it.
        self.prefix = split.path.rstrip("/")
        self.base_url = f"http://{self.host}:{self.port}{self.prefix}"
        self.stats = LatencyStats()

    def request(
        self, method: str, path: str, body: dict | None, timeout_s: float
    ) -> tuple[int, dict]:
        """One HTTP exchange; returns (status, parsed JSON body).

        A fresh connection per request keeps the replica object safe to
        share across fan-out threads (http.client connections are not).
        """
        payload = protocol.dump_json(body) if body is not None else None
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )
        start = time.perf_counter()
        try:
            headers = {"Accept": "application/json", "Connection": "close"}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            connection.request(
                method, self.prefix + path, body=payload, headers=headers
            )
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        self.stats.record(time.perf_counter() - start)
        return status, protocol.parse_json_body(raw)


class ServingClient:
    """Client over one or more :class:`EmbeddingServer` replicas.

    Parameters
    ----------
    base_urls:
        One URL or a sequence (``"http://127.0.0.1:8080"`` or
        ``"127.0.0.1:8080"``).  Order seeds the preference; reads rotate
        onto later replicas when earlier ones fail.
    timeout_s / retries / backoff_s:
        Per-request socket timeout; extra attempts per *read* request
        beyond the first (spread across replicas); sleep between
        attempts, doubled each retry.
    """

    def __init__(
        self,
        base_urls: str | Sequence[str],
        *,
        timeout_s: float = 10.0,
        retries: int = 2,
        backoff_s: float = 0.05,
    ) -> None:
        if isinstance(base_urls, str):
            base_urls = [base_urls]
        if not base_urls:
            raise ValueError("ServingClient needs at least one replica URL")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.replicas = [_Replica(url) for url in base_urls]
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s

    # -- plumbing ------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def stats(self) -> dict:
        """The merged per-replica latency view (disjoint-stream fan-in)."""
        merged = LatencyStats.merge([r.stats for r in self.replicas])
        return {
            "replicas": {
                r.base_url: r.stats.snapshot() for r in self.replicas
            },
            "merged": merged.snapshot(),
        }

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        prefer: int = 0,
    ) -> dict:
        """Issue a request, retrying reads across replicas.

        ``prefer`` rotates the replica order so fan-out chunks spread
        across replicas instead of all hammering the first.  Retryable
        outcomes — connection errors, timeouts, 503 — move on to the
        next replica; protocol errors (4xx) raise immediately, they
        would fail identically everywhere.  Non-read endpoints get
        exactly one attempt on the preferred replica.
        """
        idempotent = path in protocol.READ_ENDPOINTS
        attempts = 1 + (self.retries if idempotent else 0)
        prefer %= len(self.replicas)
        candidates = self.replicas[prefer:] + self.replicas[:prefer]
        failures: dict[str, str] = {}
        last_503: ApiError | None = None
        backoff = self.backoff_s
        for attempt in range(attempts):
            target = candidates[attempt % len(candidates)]
            try:
                status, payload = target.request(
                    method, path, body, self.timeout_s
                )
            except (OSError, http.client.HTTPException) as error:
                failures[target.base_url] = f"{type(error).__name__}: {error}"
                if not idempotent:
                    raise ServingUnavailable(
                        f"{path} failed and is not retryable", failures
                    ) from error
            else:
                if status < 400:
                    return payload
                error = ApiError.from_body(status, payload)
                if status != 503:
                    raise error
                last_503 = error
                failures[target.base_url] = f"503 {error.code}"
            if attempt + 1 < attempts and backoff > 0:
                time.sleep(backoff)
                backoff *= 2
        if last_503 is not None:
            # The server's structured refusal (e.g. ``draining``) beats a
            # generic wrapper — callers can branch on its code.
            raise last_503
        raise ServingUnavailable(
            f"all {attempts} attempt(s) at {path} failed", failures
        )

    # -- read endpoints ------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", protocol.HEALTHZ)

    def describe(self) -> dict:
        return self._request("GET", protocol.DESCRIBE)

    def metrics(self) -> dict:
        return self._request("GET", protocol.METRICS)

    def top_k(
        self, node: int, k: int = 10, *, nprobe: int | None = None
    ) -> HTTPQueryResult:
        start = time.perf_counter()
        body = {"node": int(node), "k": int(k)}
        if nprobe is not None:
            body["nprobe"] = int(nprobe)
        payload = self._request("POST", protocol.TOPK, body)
        return HTTPQueryResult(
            version=payload["version"],
            ids=np.asarray(payload["ids"], dtype=np.intp),
            scores=protocol.decode_scores(payload["scores"]),
            latency_s=time.perf_counter() - start,
            server_latency_s=float(payload["latency_s"]),
            cached=bool(payload.get("cached", False)),
        )

    def similar_by_vector(
        self,
        vector: np.ndarray | Sequence[float],
        k: int = 10,
        *,
        nprobe: int | None = None,
    ) -> HTTPQueryResult:
        start = time.perf_counter()
        body = {
            "vector": [float(x) for x in np.asarray(vector).ravel().tolist()],
            "k": int(k),
        }
        if nprobe is not None:
            body["nprobe"] = int(nprobe)
        payload = self._request("POST", protocol.SIMILAR, body)
        return HTTPQueryResult(
            version=payload["version"],
            ids=np.asarray(payload["ids"], dtype=np.intp),
            scores=protocol.decode_scores(payload["scores"]),
            latency_s=time.perf_counter() - start,
            server_latency_s=float(payload["latency_s"]),
        )

    def batch_top_k(
        self, nodes: Sequence[int], k: int = 10, *, nprobe: int | None = None
    ) -> HTTPQueryResult:
        """Top-k for a node batch, fanned out across the replicas.

        The batch is split into ``min(n_replicas, len(nodes))`` contiguous
        chunks issued concurrently (one thread per chunk, each pinned to
        its own replica but free to fail over); rows come back in caller
        order.  All chunks must be answered from the same store version —
        a mid-swap skew raises ``replica_version_skew`` instead of
        returning rows that mix versions.
        """
        start = time.perf_counter()
        nodes = [int(node) for node in np.asarray(nodes, dtype=np.intp).ravel()]
        if not nodes:
            raise ValueError("batch_top_k needs at least one node")

        def submit(chunk: list[int], prefer: int) -> dict:
            body = {"nodes": chunk, "k": int(k)}
            if nprobe is not None:
                body["nprobe"] = int(nprobe)
            return self._request(
                "POST", protocol.TOPK_BATCH, body, prefer=prefer
            )

        n_chunks = min(len(self.replicas), len(nodes))
        if n_chunks == 1:
            payloads = [submit(nodes, 0)]
        else:
            chunks = [
                [int(node) for node in part]
                for part in np.array_split(nodes, n_chunks)
            ]
            payloads: list[dict | None] = [None] * n_chunks
            errors: list[BaseException | None] = [None] * n_chunks

            def work(index: int) -> None:
                # Preferred replica per chunk spreads the load; retries
                # inside _request still fail over to the full set.
                try:
                    payloads[index] = submit(chunks[index], index)
                except BaseException as error:  # re-raised on the caller
                    errors[index] = error

            threads = [
                threading.Thread(target=work, args=(i,), daemon=True)
                for i in range(n_chunks)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for error in errors:
                if error is not None:
                    raise error

        versions = {payload["version"] for payload in payloads}
        if len(versions) > 1:
            raise ApiError(
                409, "replica_version_skew",
                "batch chunks were answered from different store versions",
                {"versions": sorted(versions)},
            )
        ids = np.vstack(
            [np.asarray(payload["ids"], dtype=np.intp) for payload in payloads]
        )
        scores = np.vstack(
            [
                np.vstack([protocol.decode_scores(row) for row in payload["scores"]])
                for payload in payloads
            ]
        )
        return HTTPQueryResult(
            version=next(iter(versions)),
            ids=ids,
            scores=scores,
            latency_s=time.perf_counter() - start,
            # Chunks ran concurrently on different replicas: the slowest
            # one is the server-side critical path (summing would put
            # server time above the client wall clock).
            server_latency_s=float(
                max(payload["latency_s"] for payload in payloads)
            ),
        )

    # -- admin ---------------------------------------------------------
    def refresh(
        self, *, version: str | None = None, delta: dict | None = None
    ) -> dict:
        """Drive ``POST /admin/refresh`` (never retried — not idempotent)."""
        if version is not None and delta is not None:
            raise ValueError("pass either version or delta, not both")
        body: dict = {}
        if version is not None:
            body["version"] = version
        if delta is not None:
            body["delta"] = delta
        return self._request("POST", protocol.REFRESH, body)
