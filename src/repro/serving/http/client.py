"""HTTP client for the embedding server: retries, replicas, fan-out.

:class:`ServingClient` is the reference consumer of the wire protocol in
:mod:`repro.serving.http.protocol`:

- **Idempotent-read retries.**  Every read endpoint (top-k, describe,
  health, metrics) only reads an immutable snapshot server-side, so a
  connection error or a 503 (a draining replica) is safely retried on
  the next replica with a small backoff.  ``/admin/refresh`` mutates
  serving state and is never retried — a timeout there must surface to
  the caller, who knows whether re-applying is safe.
- **Keep-alive reuse.**  Each replica keeps a small pool of idle
  ``HTTPConnection`` objects; a request checks one out, exchanges, and
  returns it unless the server asked to close.  No TCP handshake per
  request — the single biggest fixed cost of the old
  connection-per-request scheme.  Non-idempotent requests always use a
  fresh connection, so a stale pooled socket can never fail a refresh.
- **Binary wire negotiation** (``wire="auto"``, the default).  Data
  requests advertise the binary frame format in ``Accept``; a JSON-only
  server ignores that and answers JSON (which the client always
  accepts), while a binary-capable server answers raw frames.  Once a
  replica has demonstrated it speaks binary, request *bodies* (query
  vectors, node batches) upgrade to frames too — so the client works
  unchanged against old servers, with zero extra round trips.
  ``wire="json"`` pins the legacy behavior; ``wire="binary"`` sends
  frames from the first request (for servers known to be current).
- **Replica fan-out.**  ``batch_top_k`` splits a node batch into
  contiguous chunks, one per healthy replica, issues them concurrently,
  and reassembles the rows in caller order.  Replicas must answer from
  the same store version (the chunks are one logical batch); a version
  skew — one replica mid-swap — raises ``replica_version_skew`` so the
  caller can retry the batch rather than silently mixing versions.
- **Fan-in stats.**  One :class:`~repro.serving.stats.LatencyStats` per
  replica, merged on demand with :meth:`LatencyStats.merge` — the same
  disjoint-stream fan-in the shard router uses, one level up.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import urlsplit

import numpy as np

from repro.search.knn import NodeFilter
from repro.serving.http import protocol
from repro.serving.http.protocol import ApiError
from repro.serving.obs.trace import new_request_id
from repro.serving.stats import LatencyStats


def _merge_search_options(body: dict, node_filter, params) -> None:
    """Fold ``filter=`` / ``params=`` kwargs into a request body.

    Accepts the in-process objects (:class:`NodeFilter`,
    ``SearchParams``) or their plain JSON-object forms.  The encoded
    objects ride in the JSON body or the binary frame *header*
    unchanged, so one encoding serves both wire formats — old servers
    reject the unknown fields with a structured 400, which surfaces
    cleanly instead of being silently dropped.
    """
    if node_filter is not None:
        obj = (
            node_filter.to_json()
            if isinstance(node_filter, NodeFilter)
            else dict(node_filter)
        )
        if obj:
            body["filter"] = obj
    if params is not None:
        obj = params.to_json() if hasattr(params, "to_json") else dict(params)
        if obj:
            body["params"] = obj


class ServingUnavailable(ApiError):
    """No replica could answer: connection failures / 503s all around."""

    def __init__(self, message: str, details: dict | None = None) -> None:
        super().__init__(503, "unavailable", message, details)


# Structured 503 codes after which re-sending an upsert is provably safe:
# each is raised *before* the append touches the log (log_full's LogFull
# check, the draining gate, and the pre-dispatch deadline shed all
# precede the first byte written), so a retry can never double-apply.
# Anything else on the write path — a torn connection, wal_write_failed,
# replication_timeout — may have become durable and is never retried.
_SAFE_UPSERT_RETRY_CODES = frozenset({"log_full", "draining", "deadline_exceeded"})


class DeadlineExceeded(ApiError):
    """The caller's per-request budget ran out before any replica answered.

    Distinct from :class:`ServingUnavailable`: the replicas may be fine —
    it is *this request's* time that is spent.  Retrying immediately with
    the same budget is reasonable; waiting longer needs a bigger budget.
    """

    def __init__(self, message: str, details: dict | None = None) -> None:
        super().__init__(504, "deadline_exceeded", message, details)


@dataclass(frozen=True)
class HTTPQueryResult:
    """A query answer as observed by the client.

    ``latency_s`` is the client-side wall time (network included);
    ``server_latency_s`` is what the server measured for the backend
    work, so the gap between the two is the wire + queueing cost.
    ``queries`` is how many logical queries the request carried (the
    batch size; 1 for single-node requests), making
    :attr:`per_query_latency_s` directly comparable between single and
    batch rows.  ``group`` is the server's coalescing group id when the
    answer came out of a coalesced batch (``None`` otherwise) — all
    members of one group are guaranteed to share a ``version``.
    """

    version: str
    ids: np.ndarray
    scores: np.ndarray
    latency_s: float
    server_latency_s: float
    cached: bool = False
    queries: int = 1
    group: int | None = None

    @property
    def per_query_latency_s(self) -> float:
        """Client wall time amortized over the request's logical queries."""
        return self.latency_s / max(1, self.queries)


# Idle keep-alive connections kept per replica.  Sized for the client's
# realistic concurrency (loadgen workers, batch fan-out threads); excess
# connections are simply closed on release.
_POOL_SIZE = 16


class _Replica:
    """One base URL plus its connection pool and private latency stream."""

    def __init__(self, base_url: str) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme != "http":
            raise ValueError(f"only http:// replicas are supported, got {base_url!r}")
        if split.hostname is None:
            raise ValueError(f"replica URL needs a host: {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        # A path component is a mount prefix (reverse proxy); endpoint
        # paths are appended to it.
        self.prefix = split.path.rstrip("/")
        self.base_url = f"http://{self.host}:{self.port}{self.prefix}"
        self.stats = LatencyStats()
        # Has this replica ever answered with a binary frame?  Once yes,
        # request bodies may upgrade to frames too (wire="auto").
        self.binary_seen = False
        self._idle: list[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        self._closed = False

    def _acquire(
        self, timeout_s: float, fresh: bool
    ) -> tuple[http.client.HTTPConnection, bool]:
        """A connection plus whether it came from the pool (= may be stale)."""
        if not fresh:
            with self._pool_lock:
                if self._idle:
                    return self._idle.pop(), True
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )
        connection.connect()
        # Request bodies also go out as multiple small writes; without
        # TCP_NODELAY each exchange can stall ~40 ms behind the peer's
        # delayed ACK (Nagle), which dominates every latency number.
        connection.sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        return connection, False

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            # close() must be final: a request that was in flight when the
            # pool drained would otherwise resurrect its socket into the
            # empty pool, leaking it (and a server handler thread) forever.
            if not self._closed and len(self._idle) < _POOL_SIZE:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        with self._pool_lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for connection in idle:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None,
        content_type: str,
        accept: str,
        timeout_s: float,
        *,
        fresh: bool = False,
        extra_headers: dict | None = None,
    ) -> tuple[int, dict, int | None]:
        """One HTTP exchange; returns (status, payload, lsn_served).

        ``lsn_served`` is the server's ``X-Lsn-Served`` read-freshness
        stamp (``None`` when the server did not send one — no write
        path, or a non-data endpoint).

        Pops an idle keep-alive connection (or dials a new one) and
        returns it to the pool unless the exchange failed or the server
        signalled close.  Checkout semantics keep the replica safe to
        share across fan-out threads — a connection is only ever used by
        the thread that holds it.  ``fresh=True`` (non-idempotent
        requests) always dials: a pooled socket must never be the reason
        a refresh fails.

        A *pooled* connection may have been closed by the server while
        idle (handler timeout, drain) — the standard keep-alive hazard.
        An exchange that fails on one is transparently redialed once on
        a fresh connection here, so staleness never consumes one of the
        caller's retry attempts: with several stale sockets queued up, a
        retry loop burning one attempt per stale socket could exhaust
        itself against a perfectly healthy server.  (Only idempotent
        requests ever use the pool, so re-sending is safe.)

        The response parses by its ``Content-Type``: binary frames are
        decoded to a payload dict with ndarray fields (and mark the
        replica binary-capable); anything else parses as JSON.
        """
        start = time.perf_counter()
        while True:
            connection, pooled = self._acquire(timeout_s, fresh)
            reusable = False
            try:
                if pooled and connection.sock is not None:
                    # A pooled socket keeps the timeout it was dialed
                    # with; deadline-capped attempts need *this*
                    # attempt's budget.  (A dead pooled socket raises
                    # here and takes the stale-redial path below.)
                    connection.sock.settimeout(timeout_s)
                headers = {"Accept": accept}
                if extra_headers:
                    headers.update(extra_headers)
                if body is not None:
                    headers["Content-Type"] = content_type
                connection.request(
                    method, self.prefix + path, body=body, headers=headers
                )
                response = connection.getresponse()
                raw = response.read()
                status = response.status
                response_type = (
                    (response.getheader("Content-Type") or "")
                    .split(";")[0]
                    .strip()
                )
                lsn_header = response.getheader(protocol.LSN_HEADER)
                reusable = not response.will_close
            except (OSError, http.client.HTTPException):
                connection.close()
                if pooled:
                    continue  # stale keep-alive socket: redial, don't charge
                raise
            else:
                if reusable:
                    self._release(connection)
                else:
                    connection.close()
            break
        self.stats.record(time.perf_counter() - start)
        try:
            lsn_served = int(lsn_header) if lsn_header is not None else None
        except ValueError:
            lsn_served = None
        if response_type == protocol.BINARY_CONTENT_TYPE:
            self.binary_seen = True
            return status, protocol.decode_frame_body(raw), lsn_served
        return status, protocol.parse_json_body(raw), lsn_served


class ServingClient:
    """Client over one or more :class:`EmbeddingServer` replicas.

    Parameters
    ----------
    base_urls:
        One URL or a sequence (``"http://127.0.0.1:8080"`` or
        ``"127.0.0.1:8080"``).  Order seeds the preference; reads rotate
        onto later replicas when earlier ones fail.
    timeout_s / retries / backoff_s:
        Per-request socket timeout; extra attempts per *read* request
        beyond the first (spread across replicas); sleep between
        attempts, doubled each retry.
    wire:
        ``"auto"`` (default) negotiates the binary frame format per
        replica and falls back to JSON against servers that predate it;
        ``"json"`` pins the legacy JSON wire; ``"binary"`` sends frames
        from the first request (fails against JSON-only servers).
    """

    def __init__(
        self,
        base_urls: str | Sequence[str],
        *,
        timeout_s: float = 10.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        wire: str = "auto",
    ) -> None:
        if isinstance(base_urls, str):
            base_urls = [base_urls]
        if not base_urls:
            raise ValueError("ServingClient needs at least one replica URL")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if wire not in ("auto", "json", "binary"):
            raise ValueError(
                f"wire must be 'auto', 'json' or 'binary', got {wire!r}"
            )
        self.replicas = [_Replica(url) for url in base_urls]
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.wire = wire
        # The fencing token: the highest WAL epoch any replica has shown
        # us (upsert acks, promote responses).  A *write* answered by a
        # server on an older epoch than this is a superseded primary —
        # the ack is surfaced as stale_epoch, never silently trusted.
        self._epoch_lock = threading.Lock()
        self._max_epoch_seen = 0
        # Client-side attempt log: one entry per *logical* request, with
        # the request id every attempt carried — the client half of the
        # server's /debug/traces (same id, both sides).
        self._trace_lock = threading.Lock()
        self._trace_ring: deque[dict] = deque(maxlen=64)

    def request_trace(self) -> list[dict]:
        """Recent logical requests (newest first): id, path, attempts."""
        with self._trace_lock:
            return list(reversed(self._trace_ring))

    # -- plumbing ------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def close(self) -> None:
        """Drop pooled keep-alive connections (idempotent, final).

        Requests still in flight on other threads complete normally but
        their connections are closed on release instead of re-pooled —
        after ``close()`` the client never holds a socket open.  Further
        requests still work (each dials a fresh connection).
        """
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """The merged per-replica latency view (disjoint-stream fan-in)."""
        merged = LatencyStats.merge([r.stats for r in self.replicas])
        return {
            "replicas": {
                r.base_url: r.stats.snapshot() for r in self.replicas
            },
            "merged": merged.snapshot(),
        }

    @property
    def max_epoch_seen(self) -> int:
        with self._epoch_lock:
            return self._max_epoch_seen

    def _check_epoch(self, payload: dict, *, write: bool) -> None:
        """Track the fencing token; reject writes from a stale epoch."""
        epoch = payload.get("epoch") if isinstance(payload, dict) else None
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1:
            return
        with self._epoch_lock:
            if epoch > self._max_epoch_seen:
                self._max_epoch_seen = epoch
                return
            stale = write and epoch < self._max_epoch_seen
            max_seen = self._max_epoch_seen
        if stale:
            raise ApiError(
                409, "stale_epoch",
                f"write was answered by a server at epoch {epoch}, but this "
                f"client has already seen epoch {max_seen}; the server is a "
                "superseded primary and its ack must not be trusted",
                {"epoch": epoch, "max_epoch_seen": max_seen},
            )

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        arrays: "dict[str, np.ndarray] | None" = None,
        prefer: int = 0,
        timeout_s: float | None = None,
        min_lsn: int | None = None,
    ) -> dict:
        """Issue a request, retrying reads across replicas.

        ``prefer`` rotates the replica order so fan-out chunks spread
        across replicas instead of all hammering the first.  Retryable
        outcomes — connection errors, timeouts, 503 — move on to the
        next replica; protocol errors (4xx) raise immediately, they
        would fail identically everywhere.  Non-read endpoints get
        exactly one attempt on the preferred replica (and a fresh
        connection — never a possibly-stale pooled one).

        ``timeout_s`` is a *total* per-request budget shared by every
        retry/failover attempt (``None`` keeps the legacy behavior: the
        client-level ``timeout_s`` bounds each attempt independently).
        With a budget set, each attempt's socket timeout is capped to
        what remains, the remaining budget rides along as
        ``X-Deadline-Ms`` so the server can shed an already-dead request,
        and exhaustion raises :class:`DeadlineExceeded`.

        ``arrays`` carries the request's array-valued fields (query
        vector, node batch).  Encoding is chosen per target replica:
        a binary frame when this client (and that replica) speak binary,
        else JSON with the arrays as number lists.
        """
        idempotent = path in protocol.READ_ENDPOINTS
        data = path in protocol.DATA_ENDPOINTS
        # Upserts get retry attempts too, but only consume them on the
        # provably-safe structured 503s (_SAFE_UPSERT_RETRY_CODES) —
        # transport errors and other statuses still raise immediately.
        retryable = idempotent or path == protocol.UPSERT
        attempts = 1 + (self.retries if retryable else 0)
        prefer %= len(self.replicas)
        candidates = self.replicas[prefer:] + self.replicas[:prefer]
        failures: dict[str, str] = {}
        last_503: ApiError | None = None
        backoff = self.backoff_s
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        accept = (
            f"{protocol.BINARY_CONTENT_TYPE}, {protocol.JSON_CONTENT_TYPE}"
            if data and self.wire != "json"
            else protocol.JSON_CONTENT_TYPE
        )
        # One id per *logical* request: every retry/failover attempt
        # re-sends the same X-Request-Id, so server-side traces and logs
        # across replicas join on one key.
        request_id = new_request_id()
        attempt_log: list[dict] = []
        try:
            for attempt in range(attempts):
                attempt_timeout = self.timeout_s
                extra_headers = {protocol.REQUEST_ID_HEADER: request_id}
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"budget of {timeout_s}s spent before {path} was answered"
                            f" ({attempt} attempt(s) made)",
                            failures,
                        )
                    attempt_timeout = min(self.timeout_s, remaining)
                    if data:
                        extra_headers[protocol.DEADLINE_HEADER] = (
                            f"{remaining * 1e3:.1f}"
                        )
                target = candidates[attempt % len(candidates)]
                send_binary = (
                    data
                    and (
                        self.wire == "binary"
                        or (self.wire == "auto" and target.binary_seen)
                    )
                )
                if body is None and not arrays:
                    encoded, content_type = None, protocol.JSON_CONTENT_TYPE
                elif send_binary:
                    encoded = protocol.encode_frame(body or {}, arrays or {})
                    content_type = protocol.BINARY_CONTENT_TYPE
                else:
                    merged = dict(body or {})
                    for name, array in (arrays or {}).items():
                        merged[name] = array.tolist()
                    encoded = protocol.dump_json(merged)
                    content_type = protocol.JSON_CONTENT_TYPE
                retry_after: float | None = None
                try:
                    status, payload, lsn_served = target.request(
                        method,
                        path,
                        encoded,
                        content_type,
                        accept,
                        attempt_timeout,
                        fresh=not idempotent,
                        extra_headers=extra_headers,
                    )
                except (OSError, http.client.HTTPException) as error:
                    failures[target.base_url] = f"{type(error).__name__}: {error}"
                    attempt_log.append(
                        {
                            "attempt": attempt,
                            "replica": target.base_url,
                            "error": f"{type(error).__name__}: {error}",
                        }
                    )
                    if not idempotent:
                        # Transport errors on a write are ambiguous — the
                        # server may or may not have applied it.  Never retry.
                        raise ServingUnavailable(
                            f"{path} failed and is not retryable", failures
                        ) from error
                else:
                    if status < 400:
                        if min_lsn is not None and (
                            lsn_served is None or lsn_served < min_lsn
                        ):
                            # Read-your-writes guard: this replica answered
                            # from state older than the caller's floor.  Try
                            # another replica; the final error is a structured
                            # retryable 503 so callers can back off and retry.
                            failures[target.base_url] = (
                                f"stale read (lsn_served={lsn_served},"
                                f" min_lsn={min_lsn})"
                            )
                            attempt_log.append(
                                {
                                    "attempt": attempt,
                                    "replica": target.base_url,
                                    "status": status,
                                    "stale_lsn_served": lsn_served,
                                }
                            )
                            last_503 = ApiError(
                                503,
                                "stale_read",
                                f"{path} answered at lsn {lsn_served},"
                                f" below the requested floor {min_lsn}",
                                details={
                                    "required_min_lsn": int(min_lsn),
                                    "lsn_served": lsn_served,
                                },
                            )
                        else:
                            attempt_log.append(
                                {
                                    "attempt": attempt,
                                    "replica": target.base_url,
                                    "status": status,
                                }
                            )
                            self._check_epoch(
                                payload,
                                write=path
                                in (protocol.UPSERT, protocol.PROMOTE),
                            )
                            return payload
                    else:
                        error = ApiError.from_body(status, payload)
                        attempt_log.append(
                            {
                                "attempt": attempt,
                                "replica": target.base_url,
                                "status": status,
                                "code": error.code,
                            }
                        )
                        if status != 503:
                            raise error
                        if (
                            not idempotent
                            and error.code not in _SAFE_UPSERT_RETRY_CODES
                        ):
                            # A 503 we can't prove was raised before the log
                            # write — retrying could double-apply.
                            raise error
                        last_503 = error
                        failures[target.base_url] = f"503 {error.code}"
                        hint = error.details.get("retry_after_s")
                        if isinstance(hint, (int, float)) and hint >= 0:
                            retry_after = float(hint)
                if attempt + 1 < attempts:
                    # The server's retry_after_s hint (e.g. from a 503
                    # log_full while the compactor drains) overrides the
                    # client's own exponential schedule for this sleep.
                    sleep = retry_after if retry_after is not None else backoff
                    if deadline is not None:
                        # Never sleep past the budget; the expiry check at the
                        # top of the loop turns a spent budget into the error.
                        sleep = min(
                            sleep, max(0.0, deadline - time.perf_counter())
                        )
                    if sleep > 0:
                        time.sleep(sleep)
                    backoff *= 2
            if deadline is not None and deadline - time.perf_counter() <= 0:
                raise DeadlineExceeded(
                    f"budget of {timeout_s}s spent before {path} was answered"
                    f" ({attempts} attempt(s) made)",
                    failures,
                )
            if last_503 is not None:
                # The server's structured refusal (e.g. ``draining``) beats a
                # generic wrapper — callers can branch on its code.
                raise last_503
            raise ServingUnavailable(
                f"all {attempts} attempt(s) at {path} failed", failures
            )
        finally:
            with self._trace_lock:
                self._trace_ring.append(
                    {
                        "request_id": request_id,
                        "method": method,
                        "path": path,
                        "attempts": attempt_log,
                    }
                )

    # -- read endpoints ------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", protocol.HEALTHZ)

    def describe(self) -> dict:
        return self._request("GET", protocol.DESCRIBE)

    def metrics(self) -> dict:
        return self._request("GET", protocol.METRICS)

    def top_k(
        self,
        node: int,
        k: int = 10,
        *,
        nprobe: int | None = None,
        filter: NodeFilter | dict | None = None,
        params: dict | None = None,
        timeout_s: float | None = None,
        min_lsn: int | None = None,
    ) -> HTTPQueryResult:
        start = time.perf_counter()
        body = {"node": int(node), "k": int(k)}
        if nprobe is not None:
            body["nprobe"] = int(nprobe)
        _merge_search_options(body, filter, params)
        payload = self._request(
            "POST", protocol.TOPK, body, timeout_s=timeout_s, min_lsn=min_lsn
        )
        version, ids, scores, server_latency, cached, group = (
            protocol.parse_result_payload(payload)
        )
        return HTTPQueryResult(
            version=version,
            ids=ids,
            scores=scores,
            latency_s=time.perf_counter() - start,
            server_latency_s=server_latency,
            cached=cached,
            group=group,
        )

    def similar_by_vector(
        self,
        vector: np.ndarray | Sequence[float],
        k: int = 10,
        *,
        nprobe: int | None = None,
        filter: NodeFilter | dict | None = None,
        params: dict | None = None,
        timeout_s: float | None = None,
        min_lsn: int | None = None,
    ) -> HTTPQueryResult:
        start = time.perf_counter()
        body: dict = {"k": int(k)}
        if nprobe is not None:
            body["nprobe"] = int(nprobe)
        _merge_search_options(body, filter, params)
        query = np.asarray(vector, dtype=np.float64).ravel()
        payload = self._request(
            "POST", protocol.SIMILAR, body,
            arrays={"vector": query}, timeout_s=timeout_s, min_lsn=min_lsn,
        )
        version, ids, scores, server_latency, _, group = (
            protocol.parse_result_payload(payload)
        )
        return HTTPQueryResult(
            version=version,
            ids=ids,
            scores=scores,
            latency_s=time.perf_counter() - start,
            server_latency_s=server_latency,
            group=group,
        )

    def batch_top_k(
        self,
        nodes: Sequence[int],
        k: int = 10,
        *,
        nprobe: int | None = None,
        filter: NodeFilter | dict | None = None,
        params: dict | None = None,
        timeout_s: float | None = None,
        min_lsn: int | None = None,
    ) -> HTTPQueryResult:
        """Top-k for a node batch, fanned out across the replicas.

        The batch is split into ``min(n_replicas, len(nodes))`` contiguous
        chunks issued concurrently (one thread per chunk, each pinned to
        its own replica but free to fail over); rows come back in caller
        order.  All chunks must be answered from the same store version —
        a mid-swap skew raises ``replica_version_skew`` instead of
        returning rows that mix versions.
        """
        start = time.perf_counter()
        nodes = np.asarray(nodes, dtype=np.intp).ravel()
        if nodes.size == 0:
            raise ValueError("batch_top_k needs at least one node")

        def submit(chunk: np.ndarray, prefer: int) -> dict:
            body: dict = {"k": int(k)}
            if nprobe is not None:
                body["nprobe"] = int(nprobe)
            _merge_search_options(body, filter, params)
            return self._request(
                "POST", protocol.TOPK_BATCH, body,
                arrays={"nodes": chunk}, prefer=prefer, timeout_s=timeout_s,
                min_lsn=min_lsn,
            )

        n_chunks = min(len(self.replicas), int(nodes.size))
        if n_chunks == 1:
            payloads = [submit(nodes, 0)]
        else:
            chunks = np.array_split(nodes, n_chunks)
            payloads: list[dict | None] = [None] * n_chunks
            errors: list[BaseException | None] = [None] * n_chunks

            def work(index: int) -> None:
                # Preferred replica per chunk spreads the load; retries
                # inside _request still fail over to the full set.
                try:
                    payloads[index] = submit(chunks[index], index)
                except BaseException as error:  # re-raised on the caller
                    errors[index] = error

            threads = [
                threading.Thread(target=work, args=(i,), daemon=True)
                for i in range(n_chunks)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for error in errors:
                if error is not None:
                    raise error

        versions = {payload["version"] for payload in payloads}
        if len(versions) > 1:
            raise ApiError(
                409, "replica_version_skew",
                "batch chunks were answered from different store versions",
                {"versions": sorted(versions)},
            )
        parts = [protocol.parse_result_payload(payload) for payload in payloads]
        ids = np.vstack([part[1] for part in parts])
        scores = np.vstack([part[2] for part in parts])
        return HTTPQueryResult(
            version=next(iter(versions)),
            ids=ids,
            scores=scores,
            latency_s=time.perf_counter() - start,
            # Chunks ran concurrently on different replicas: the slowest
            # one is the server-side critical path (summing would put
            # server time above the client wall clock).
            server_latency_s=float(max(part[3] for part in parts)),
            queries=int(nodes.size),
        )

    # -- write path ----------------------------------------------------
    def upsert(
        self,
        *,
        add_edges=None,
        remove_edges=None,
        add_associations=None,
        remove_associations=None,
        timeout_s: float | None = None,
    ) -> dict:
        """Durably append graph changes via ``POST /v1/upsert``.

        Non-idempotent, so retries are restricted to the structured
        503s the server provably raised *before* touching the log
        (``log_full``, ``draining``, ``deadline_exceeded``) — those
        cannot double-apply, and the server's ``retry_after_s`` hint
        paces the resend.  Any other failure gets exactly one attempt,
        on a fresh connection.  A connection error here does *not*
        mean the write was lost — the append may have become durable
        before the ack died — so callers reconcile through
        ``lsn_durable`` (``healthz``/``describe``) instead of blindly
        resending.

        Returns the server's ack, e.g. ``{"lsn": 42, "first_lsn": 41,
        "events": 2, "durable": true, "lsn_served": 17}``; the named
        LSNs are fsync'd before the ack is sent.  Arrays ride the
        binary frame format when negotiated, JSON otherwise.
        """
        arrays: dict[str, np.ndarray] = {}
        if add_edges is not None:
            arrays["add_edges"] = np.asarray(
                add_edges, dtype=np.int64
            ).reshape(-1, 2)
        if remove_edges is not None:
            arrays["remove_edges"] = np.asarray(
                remove_edges, dtype=np.int64
            ).reshape(-1, 2)
        if add_associations is not None:
            arrays["add_associations"] = np.asarray(
                add_associations, dtype=np.float64
            ).reshape(-1, 3)
        if remove_associations is not None:
            arrays["remove_associations"] = np.asarray(
                remove_associations, dtype=np.int64
            ).reshape(-1, 2)
        if not arrays:
            raise ValueError("upsert requires at least one change")
        return self._request(
            "POST", protocol.UPSERT, {}, arrays=arrays, timeout_s=timeout_s
        )

    # -- admin ---------------------------------------------------------
    def refresh(
        self, *, version: str | None = None, delta: dict | None = None
    ) -> dict:
        """Drive ``POST /admin/refresh`` (never retried — not idempotent)."""
        if version is not None and delta is not None:
            raise ValueError("pass either version or delta, not both")
        body: dict = {}
        if version is not None:
            body["version"] = version
        if delta is not None:
            body["delta"] = delta
        return self._request("POST", protocol.REFRESH, body)

    def promote(self, *, epoch: int | None = None, prefer: int = 0) -> dict:
        """Promote a standby via ``POST /admin/promote`` (one attempt).

        ``prefer`` picks which replica to promote (the usual rotation —
        during failover the dead primary is skipped by pointing this at
        the surviving standby).  ``epoch`` forces a specific new term;
        by default the server bumps past every epoch it has seen.  The
        ack's epoch becomes this client's fencing floor, so replies
        from a not-yet-fenced stale primary raise ``stale_epoch``
        rather than silently accepting un-replicated writes.
        """
        body: dict = {}
        if epoch is not None:
            body["epoch"] = int(epoch)
        return self._request(
            "POST", protocol.PROMOTE, body, prefer=prefer
        )
