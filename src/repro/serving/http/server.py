"""Threaded HTTP server over a :class:`~repro.serving.service.QueryService`.

:class:`EmbeddingServer` puts the in-process serving stack behind a
network boundary with nothing but the standard library: a
``ThreadingHTTPServer`` whose handler threads answer JSON endpoints
against snapshot-pinned views of the query service.

Endpoints (see :mod:`repro.serving.http.protocol` for the wire schema):

==========================  ====================================================
``GET  /healthz``           liveness + active version (503 while draining)
``GET  /v1/describe``       the stable ``QueryService.describe()`` document
``GET  /metrics``           service/per-shard/per-endpoint ``LatencyStats``
``POST /v1/topk``           ``{node, k?, nprobe?}`` → ids/scores
``POST /v1/topk:batch``     ``{nodes, k?, nprobe?}`` → row-major ids/scores
``POST /v1/similar_by_vector``  ``{vector, k?, nprobe?}`` → ids/scores
``POST /v1/upsert``         ``{add_edges?, remove_edges?, add_associations?,
                            remove_associations?}`` → durable LSN (requires a
                            WAL ``IngestPipeline``; acked only after fsync)
``POST /admin/refresh``     ``{}`` → follow LATEST; ``{version}`` → pin;
                            ``{delta}`` → drive the attached
                            :class:`~repro.serving.refresh.OnlineRefresher`
==========================  ====================================================

Concurrency: every request handler runs in its own thread and pins one
immutable service snapshot (:meth:`QueryService.pin`) for its whole
lifetime, so a concurrent ``/admin/refresh`` swap can never hand a
request the new backend with the old matrix.  The service's cache,
stats, and worker pool are all lock-protected / snapshot-immutable, so
handler threads need no locking of their own.

Graceful drain: :meth:`EmbeddingServer.close` (and SIGTERM under
:meth:`run`) stops accepting connections, answers requests that arrive
on already-open keep-alive connections with 503 ``draining``, and waits
up to ``drain_timeout_s`` for requests already *executing* to finish —
in-flight work completes with its real status, never a 500.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from repro.serving.faults import InjectedFault
from repro.serving.fsck import StoreCorruptionError
from repro.serving.http import protocol
from repro.serving.http.protocol import ApiError
from repro.serving.obs import metrics as obs_metrics
from repro.serving.obs import trace as obs_trace
from repro.serving.obs.metrics import MetricsRegistry
from repro.serving.obs.trace import TraceBuffer, trace_span
from repro.serving.refresh import OnlineRefresher
from repro.search.knn import FilterError
from repro.serving.service import QueryService, SearchRequest, json_safe
from repro.serving.sharding.router import ShardRouter
from repro.serving.stats import LatencyStats
from repro.serving.wal.log import LogFull, LogWriteError
from repro.serving.wal.replication import (
    FeedRejected,
    ReplicationHub,
    build_feed,
    check_feed_request,
)

# Request-size guards: a validation error must cost a bounded amount of
# work, not an unbounded np.asarray over attacker-sized JSON.
MAX_BODY_BYTES = 8 << 20
MAX_BATCH_NODES = 8192
MAX_VECTOR_DIM = 65536
MAX_K = 65536


class EmbeddingServer:
    """A stdlib HTTP front-end over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The query service to expose.  The server never closes it — the
        owner that built it does.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port`).
    refresher:
        Optional :class:`OnlineRefresher` wired to the same service;
        with it attached, ``POST /admin/refresh`` accepts a ``delta``
        document and drives the full update → publish → swap flow.
        Without it, refresh is limited to following/pinning published
        store versions.
    drain_timeout_s:
        How long :meth:`close` waits for in-flight requests.
    coalesce_window_s / coalesce_max_batch:
        ``coalesce_window_s > 0`` turns on the admission coalescer:
        concurrent single-query ``POST /v1/topk`` handler threads merge
        into one ``batch_top_k`` GEMM against a single snapshot (the
        leader/follower :meth:`QueryService.make_coalescer` machinery).
        The window bounds how long the first arrival waits for company;
        ``coalesce_max_batch`` wakes the leader early once that many
        queued.  Every response from a coalesced group carries the same
        ``group`` id and — by construction, one snapshot per group — the
        same ``version``.  Batch/vector endpoints and cache hits bypass
        the coalescer.
    binary:
        Speak the binary frame format when a request negotiates it
        (``Accept``/``Content-Type``; see
        :mod:`repro.serving.http.protocol`).  ``False`` pins the server
        to JSON-only (the pre-binary wire surface): binary request
        bodies get a structured 415 and ``Accept`` preferences are
        ignored.

    Examples
    --------
    >>> with EmbeddingServer(service) as server:      # doctest: +SKIP
    ...     client = ServingClient(server.url)
    ...     client.top_k(0, k=5)
    """

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        refresher: OnlineRefresher | None = None,
        drain_timeout_s: float = 10.0,
        coalesce_window_s: float = 0.0,
        coalesce_max_batch: int = 64,
        binary: bool = True,
        log: bool = False,
        socket_fd: int | None = None,
        reuse_port: bool = False,
        worker_id: int | None = None,
        faults=None,
        stats_for: "EmbeddingServer | None" = None,
        ingest=None,
        compactor=None,
        replicator=None,
        ack_replicas: int = 0,
        ack_timeout_s: float = 5.0,
        obs: bool = True,
        slow_query_ms: float = 0.0,
        slow_log=None,
        journal=None,
        trace_capacity: int = 256,
    ) -> None:
        self.service = service
        self.refresher = refresher
        # The write path: an IngestPipeline makes POST /v1/upsert live
        # (acked after fsync) and surfaces lsn_durable/lsn_served; the
        # optional Compactor reference is observability-only.
        self.ingest = ingest
        self.compactor = compactor
        # Replication roles.  A primary (any server with a WAL) serves
        # the feed and tracks standby acks through a ReplicationHub so
        # `--ack-replicas N` can make upsert acks semi-synchronous.  A
        # standby carries a StandbyReplicator and refuses writes with
        # 409 not_primary until handle_promote flips it.
        self.replicator = replicator
        self.ack_replicas = int(ack_replicas)
        self.ack_timeout_s = float(ack_timeout_s)
        self.hub = ReplicationHub(journal=journal) if ingest is not None else None
        self._promoted = False
        self._promote_lock = threading.Lock()
        self.drain_timeout_s = drain_timeout_s
        self.binary_wire = binary
        self.worker_id = worker_id
        self.faults = faults
        # A worker's admin server reports *for* its data server: health
        # and metrics must describe the traffic-carrying surface, not the
        # loopback side-channel they arrive on.
        self.stats_for = stats_for
        self.coalesce_window_s = coalesce_window_s
        self.coalesce_max_batch = coalesce_max_batch
        self._coalescer = (
            service.make_coalescer(coalesce_window_s, max_batch=coalesce_max_batch)
            if coalesce_window_s > 0
            else None
        )
        self.log_requests = log
        self._drain_logged = False
        self._draining = False
        self._in_flight = 0
        self._flight_lock = threading.Lock()
        self._drained = threading.Condition(self._flight_lock)
        self._refresh_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self.endpoint_stats: dict[str, LatencyStats] = {
            path: LatencyStats()
            for path in (
                protocol.TOPK,
                protocol.TOPK_BATCH,
                protocol.SIMILAR,
                protocol.UPSERT,
                protocol.DESCRIBE,
                protocol.HEALTHZ,
                protocol.METRICS,
                protocol.REFRESH,
                protocol.TRACES,
                protocol.REPLICATE,
                protocol.PROMOTE,
            )
        }
        self.error_counts: dict[str, int] = {}
        # Observability surfaces.  A worker's admin server *shares* its
        # data server's registry and trace ring (via stats_for) so the
        # admin /metrics and /debug/traces describe real traffic — but
        # only the owning server records into them (health probes must
        # not dilute the request traces or the http_* series).
        self.journal = journal
        self.slow_query_ms = float(slow_query_ms)
        self._slow_log = slow_log
        if stats_for is not None:
            self.registry = stats_for.registry
            self.trace_buffer = stats_for.trace_buffer
            self._trace_enabled = False
        elif obs:
            self.registry = MetricsRegistry()
            self.trace_buffer = TraceBuffer(trace_capacity)
            self._trace_enabled = True
            self._register_instruments()
        else:
            self.registry = None
            self.trace_buffer = None
            self._trace_enabled = False
        if socket_fd is not None:
            # A supervisor worker: adopt the parent's already-bound,
            # already-listening socket (classic pre-fork accept sharing —
            # every worker blocks in accept() on the same fd, the kernel
            # hands each connection to exactly one of them).
            self._httpd = ThreadingHTTPServer(
                (host, port), _Handler, bind_and_activate=False
            )
            self._httpd.socket.close()
            self._httpd.socket = socket.socket(fileno=socket_fd)
            address = self._httpd.socket.getsockname()
            self._httpd.server_address = address[:2]
            self._httpd.server_name = address[0]
            self._httpd.server_port = address[1]
        elif reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise RuntimeError(
                    "SO_REUSEPORT is not available on this platform; "
                    "use the inherited-socket worker mode instead"
                )
            self._httpd = ThreadingHTTPServer(
                (host, port), _Handler, bind_and_activate=False
            )
            self._httpd.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._httpd.server_bind()
            self._httpd.server_activate()
        else:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        # Handler threads must not block process exit (an idle keep-alive
        # peer would otherwise hang server_close); the drain condition
        # below is what guarantees in-flight *requests* complete.
        self._httpd.daemon_threads = True
        self._httpd.embedding_server = self  # type: ignore[attr-defined]

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def role(self) -> str | None:
        """``primary`` / ``standby`` for servers with a WAL, else None."""
        if self.replicator is not None and not self._promoted:
            return "standby"
        if self.ingest is not None:
            return "primary"
        return None

    @property
    def is_standby(self) -> bool:
        return self.role == "standby"

    @property
    def in_flight(self) -> int:
        with self._flight_lock:
            return self._in_flight

    def start(self) -> "EmbeddingServer":
        """Serve in a background thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="embedding-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def run(self, *, signals: bool = True) -> bool:
        """Serve until SIGTERM/SIGINT, then drain and shut down.

        The accept loop runs in a background thread while the calling
        (main) thread waits on an event the signal handlers set — a
        handler that called :meth:`close` directly would deadlock inside
        ``serve_forever``'s own thread.  Returns :meth:`close`'s verdict:
        ``True`` for a clean drain, ``False`` if in-flight requests were
        still running when ``drain_timeout_s`` expired.
        """
        stop = threading.Event()
        if signals:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, lambda *_: stop.set())
        self.start()
        try:
            stop.wait()
        finally:
            drained = self.close()
        return drained

    def close(self) -> bool:
        """Drain in-flight requests and stop the server.

        Returns ``True`` when every in-flight request finished inside
        ``drain_timeout_s`` (the graceful path), ``False`` on timeout.
        Idempotent.
        """
        self._draining = True
        if self.replicator is not None:
            # Stop tailing before the drain: a replicator mid-append is
            # fine (its log write completes), but a fresh long poll
            # against a dying primary would just burn the drain budget.
            self.replicator.stop(timeout_s=1.0)
        if self._thread is not None:
            # shutdown() handshakes with serve_forever; calling it on a
            # never-started server would wait on an event nothing sets.
            self._httpd.shutdown()  # stop accepting; running handlers continue
        drained = True
        with self._drained:
            deadline_ok = self._drained.wait_for(
                lambda: self._in_flight == 0, timeout=self.drain_timeout_s
            )
            drained = bool(deadline_ok)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=self.drain_timeout_s)
            self._thread = None
        if self.journal is not None and not self._drain_logged:
            self._drain_logged = True
            self.journal.emit(
                "drain",
                drained=drained,
                worker=self.worker_id,
                version=self.service.version,
            )
        return drained

    def __enter__(self) -> "EmbeddingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request accounting --------------------------------------------
    def _enter_request(self) -> bool:
        """Register an in-flight request; ``False`` once draining began."""
        with self._flight_lock:
            if self._draining:
                return False
            self._in_flight += 1
            return True

    def _exit_request(self) -> None:
        with self._drained:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._drained.notify_all()

    def _count_error(self, code: str) -> None:
        with self._flight_lock:
            self.error_counts[code] = self.error_counts.get(code, 0) + 1

    # -- observability --------------------------------------------------
    def _register_instruments(self) -> None:
        """Create the hot-path instruments and the scrape-time mirror.

        The request path pays exactly one counter increment and one
        histogram observation; everything else the registry exposes
        (endpoint latency counters, cache hit/miss, error counts, WAL
        and compactor state) is *mirrored* from the existing structures
        by a collect hook that runs only when someone scrapes.
        """
        reg = self.registry
        self._m_requests = reg.counter(
            "http_requests_total",
            "HTTP requests dispatched, by endpoint",
            ("endpoint",),
        )
        self._m_latency = reg.histogram(
            "http_request_seconds",
            "End-to-end HTTP request latency in seconds",
            ("endpoint",),
        )
        self._m_slow = reg.counter(
            "http_slow_queries_total",
            "Requests slower than --slow-query-ms, by endpoint",
            ("endpoint",),
        )
        reg.add_collect(self._collect_metrics)

    def _collect_metrics(self) -> None:
        reg = self.registry
        reg.gauge("http_in_flight", "Requests currently executing").set(
            self.in_flight
        )
        reg.gauge("http_draining", "1 while the server is draining").set(
            1.0 if self._draining else 0.0
        )
        errors = reg.counter(
            "http_errors_total", "Structured error responses, by code", ("code",)
        )
        with self._flight_lock:
            counts = dict(self.error_counts)
        for code, n in counts.items():
            errors.set_total(n, code=code)
        queries = reg.counter(
            "http_queries_total",
            "Logical queries answered (batch members counted), by endpoint",
            ("endpoint",),
        )
        for path, stats in self.endpoint_stats.items():
            snap = stats.snapshot()
            queries.set_total(snap["queries"], endpoint=path)
        service_snap = self.service.stats.snapshot()
        reg.counter(
            "service_queries_total", "Queries answered by the query service"
        ).set_total(service_snap["queries"])
        reg.counter(
            "service_cache_served_total", "Queries answered from the LRU cache"
        ).set_total(service_snap["cache_hits"])
        cache = self.service.cache_info()
        lookups = reg.counter(
            "cache_lookups_total", "LRU cache lookups, by outcome", ("outcome",)
        )
        lookups.set_total(cache.get("hits", 0), outcome="hit")
        lookups.set_total(cache.get("misses", 0), outcome="miss")
        if self._coalescer is not None:
            info = self._coalescer.info()
            reg.counter(
                "coalesce_groups_total", "Coalesced admission groups executed"
            ).set_total(info["groups"])
            reg.counter(
                "coalesce_members_total", "Requests that joined a coalesced group"
            ).set_total(info["members"])
            reg.gauge(
                "coalesce_pending", "Requests waiting in the coalescer right now"
            ).set(info["pending"])
        if self.ingest is not None:
            counters = dict(self.ingest.counters)
            reg.counter("wal_appends_total", "WAL append batches").set_total(
                counters.get("appends", 0)
            )
            reg.counter("wal_events_total", "WAL events appended").set_total(
                counters.get("events", 0)
            )
            reg.counter(
                "wal_compactions_total", "Compaction folds completed"
            ).set_total(counters.get("compactions", 0))
            reg.counter(
                "wal_records_folded_total", "WAL records folded into snapshots"
            ).set_total(counters.get("records_folded", 0))
            reg.counter(
                "wal_checkpoints_total", "Checkpoints written"
            ).set_total(counters.get("checkpoints", 0))
            reg.counter(
                "wal_log_full_total", "Upserts rejected because the log was full"
            ).set_total(counters.get("log_full_rejections", 0))
            log = self.ingest.log
            reg.counter("wal_fsyncs_total", "WAL fsync calls").set_total(
                getattr(log, "fsyncs", 0)
            )
            reg.counter(
                "wal_fsynced_bytes_total", "Bytes written to the WAL before fsync"
            ).set_total(getattr(log, "fsynced_bytes", 0))
            reg.gauge("wal_log_bytes", "Live WAL size in bytes").set(
                log.size_bytes
            )
            fresh = self.ingest.freshness()
            reg.gauge("ingest_lsn_durable", "Highest fsync-acked LSN").set(
                fresh["lsn_durable"]
            )
            reg.gauge("ingest_lsn_served", "Highest LSN visible to queries").set(
                fresh["lsn_served"]
            )
            reg.gauge(
                "ingest_freshness_lag", "lsn_durable - lsn_served"
            ).set(fresh["lag"])
            reg.gauge(
                "wal_epoch", "Current fencing epoch of the local WAL"
            ).set(self.ingest.log.epoch)
        if self.hub is not None:
            hub = self.hub.status()
            reg.gauge(
                "replication_standbys", "Standbys polling the feed (live)"
            ).set(hub["n_standbys"])
            reg.gauge(
                "replication_min_ack_lsn",
                "Lowest LSN acked by every live standby",
            ).set(hub["min_ack_lsn"])
        if self.replicator is not None:
            status = self.replicator.status()
            reg.gauge(
                "replication_lag",
                "Primary lsn_durable minus this standby's (0 = caught up)",
            ).set(status["lag"] if status["lag"] is not None else -1)
            reg.gauge(
                "replication_connected",
                "1 while the standby is streaming or caught up",
            ).set(1.0 if status["state"] in ("streaming", "caught_up") else 0.0)
            reg.counter(
                "replication_records_total",
                "WAL records replicated from the primary",
            ).set_total(status["records_replicated"])
            reg.counter(
                "replication_bytes_total",
                "WAL payload bytes replicated from the primary",
            ).set_total(status["bytes_replicated"])
            reg.counter(
                "replication_errors_total",
                "Transient replication failures (retried)",
            ).set_total(status["errors"])
        if self.compactor is not None:
            timings = getattr(self.compactor, "timings", None)
            if timings:
                reg.counter(
                    "compactor_fold_seconds_total", "Time spent folding WAL deltas"
                ).set_total(timings.get("fold_seconds", 0.0))
                reg.counter(
                    "compactor_publish_seconds_total",
                    "Time spent publishing folded versions",
                ).set_total(timings.get("publish_seconds", 0.0))
                reg.counter(
                    "compactor_publishes_total", "Versions published by the compactor"
                ).set_total(timings.get("publishes", 0))
            reg.gauge(
                "compactor_alive", "1 while the compactor thread is running"
            ).set(1.0 if self.compactor.is_alive() else 0.0)

    def _finish_trace(self, trace, path: str, status, duration_s: float) -> None:
        """Seal a request trace: counters, ring buffer, slow-query log."""
        trace.finish(status if status is not None else 0)
        self._m_requests.inc(endpoint=path)
        self._m_latency.observe(duration_s, endpoint=path)
        entry = trace.as_dict()
        self.trace_buffer.add(entry)
        if self.slow_query_ms > 0 and duration_s * 1e3 >= self.slow_query_ms:
            self._m_slow.inc(endpoint=path)
            stream = self._slow_log if self._slow_log is not None else sys.stderr
            line = json.dumps(
                {
                    "slow_query": {
                        **entry,
                        "threshold_ms": self.slow_query_ms,
                    }
                },
                separators=(",", ":"),
                default=str,
            )
            try:
                print(line, file=stream, flush=True)
            except (OSError, ValueError):
                pass  # a closed log stream must not fail the request

    def prometheus_text(self) -> str:
        """Render this server's registry as Prometheus text exposition."""
        if self.registry is None:
            raise ApiError(
                406, "not_acceptable",
                "observability is disabled on this server (obs=False)",
            )
        return self.registry.render_text()

    # -- endpoint handlers ---------------------------------------------
    # Each returns (status, payload-dict); ApiError propagates to the
    # handler, which writes the structured error body.
    def handle_healthz(self, _body: dict) -> tuple[int, dict]:
        target = self.stats_for or self
        payload = {
            "status": "ok",
            "version": self.service.version,
            "draining": target._draining,
        }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        if self.ingest is not None:
            fresh = self.ingest.freshness()
            payload["lsn_durable"] = fresh["lsn_durable"]
            payload["lsn_served"] = fresh["lsn_served"]
            payload["freshness_lag"] = fresh["lag"]
            payload["role"] = self.role
            payload["epoch"] = self.ingest.log.epoch
        if self.replicator is not None:
            status = self.replicator.status()
            payload["replication"] = {
                "state": status["state"],
                "lag": status["lag"],
                "primary_url": status["primary_url"],
                "primary_epoch": status["primary_epoch"],
            }
        elif self.hub is not None and self.hub.status()["n_standbys"]:
            payload["replication"] = self.hub.status()
        return 200, payload

    def handle_describe(self, _body: dict) -> tuple[int, dict]:
        info = self.service.describe()
        info["schema"] = protocol.PROTOCOL_SCHEMA
        # Server-level capabilities, so clients/operators can discover
        # the negotiated surfaces without probing.
        info["wire_formats"] = (
            ["json", "binary"] if self.binary_wire else ["json"]
        )
        info["coalescing"] = {
            "enabled": self._coalescer is not None,
            "window_s": self.coalesce_window_s,
            "max_batch": self.coalesce_max_batch,
        }
        if self.worker_id is not None:
            info["worker"] = self.worker_id
        if self.ingest is not None:
            fresh = self.ingest.freshness()
            info["lsn_durable"] = fresh["lsn_durable"]
            info["lsn_served"] = fresh["lsn_served"]
            info["role"] = self.role
            info["epoch"] = self.ingest.log.epoch
            info["ingest"] = {
                **fresh,
                "wal_dir": str(self.ingest.wal_dir),
                "log_bytes": self.ingest.log.size_bytes,
                "log_max_bytes": self.ingest.log.max_bytes,
            }
            info["replication"] = self._replication_status()
        return 200, json_safe(info)

    def _replication_status(self) -> dict:
        """The shared describe/metrics replication document."""
        doc: dict = {"role": self.role}
        if self.ingest is not None:
            doc["epoch"] = self.ingest.log.epoch
            doc["epoch_start_lsn"] = self.ingest.log.epoch_start_lsn
        if self.replicator is not None:
            doc["standby"] = self.replicator.status()
        if self.hub is not None:
            doc["hub"] = self.hub.status()
            doc["ack_replicas"] = self.ack_replicas
        return doc

    def handle_metrics(self, _body: dict) -> tuple[int, dict]:
        target = self.stats_for or self
        per_endpoint = {
            path: stats.snapshot() for path, stats in target.endpoint_stats.items()
        }
        payload = {
            "schema": protocol.PROTOCOL_SCHEMA,
            "server": {
                "worker": self.worker_id,
                "in_flight": target.in_flight,
                "draining": target._draining,
                "endpoints": per_endpoint,
                # All endpoints fan in to one server-level view; endpoint
                # streams are disjoint, exactly what merge() is for.
                "http": LatencyStats.merge(
                    list(target.endpoint_stats.values())
                ).snapshot(),
                "errors": dict(target.error_counts),
            },
            "service": self.service.stats.snapshot(),
            # The LRU's own hit/miss view (the service latency counters
            # above only say how many answers were cache-served, not how
            # often lookups missed — both are needed to judge sizing).
            "cache": self.service.cache_info(),
        }
        backend = self.service.backend
        if isinstance(backend, ShardRouter):
            payload["shards"] = {
                "n_shards": backend.n_shards,
                "per_shard": [s.snapshot() for s in backend.shard_stats],
                "merged": LatencyStats.merge(backend.shard_stats).snapshot(),
            }
        if self.ingest is not None:
            ingest = {
                **self.ingest.freshness(),
                "counters": dict(self.ingest.counters),
                "log_bytes": self.ingest.log.size_bytes,
                "log_max_bytes": self.ingest.log.max_bytes,
            }
            if self.compactor is not None:
                ingest["compactor"] = {
                    "alive": self.compactor.is_alive(),
                    "interval_s": self.compactor.interval_s,
                    "keep_versions": self.compactor.keep_versions,
                    "last_publish": self.compactor.last_publish,
                    "last_error": self.compactor.last_error,
                }
            payload["ingest"] = ingest
            payload["replication"] = self._replication_status()
        if target.registry is not None:
            # The sum-mergeable view: the same families the Prometheus
            # exposition renders, as JSON, so a supervisor can merge
            # worker cells exactly (obs.metrics.merge_dicts).
            payload["registry"] = target.registry.as_dict()
        return 200, json_safe(payload)

    def handle_traces(self, _body: dict) -> tuple[int, dict]:
        target = self.stats_for or self
        if target.trace_buffer is None:
            return 200, {"enabled": False, "total": 0, "traces": []}
        return 200, {
            "enabled": True,
            "capacity": target.trace_buffer.capacity,
            "total": target.trace_buffer.total_added,
            "traces": target.trace_buffer.snapshot(),
        }

    def handle_topk(self, body: dict) -> tuple[int, "protocol.ResultPayload"]:
        protocol.reject_unknown_fields(
            body, ("node", "k", "nprobe") + protocol.SEARCH_OPTION_FIELDS
        )
        node = protocol.require_int(body, "node", required=True, minimum=0)
        k = protocol.require_int(body, "k", default=10, minimum=1, maximum=MAX_K)
        nprobe = protocol.require_int(body, "nprobe", minimum=1)
        request = _parse_search_request(body, node=node, k=k, nprobe=nprobe)
        if self._coalescer is not None:
            # Admission coalescing: this handler thread merges with its
            # concurrent peers into one batch GEMM.  The group executes
            # against a single snapshot read at drain time — the same
            # consistency a PinnedView gives one request, extended to
            # the whole group (every member answers with one version).
            result = _translate_errors(
                lambda: self.service.search(request, coalescer=self._coalescer)
            )
        else:
            with trace_span("pin"):
                view = self.service.pin()
            result = _translate_errors(lambda: view.search(request))
        return 200, protocol.ResultPayload(result)

    def handle_topk_batch(self, body: dict) -> tuple[int, "protocol.ResultPayload"]:
        protocol.reject_unknown_fields(
            body, ("nodes", "k", "nprobe") + protocol.SEARCH_OPTION_FIELDS
        )
        nodes = protocol.require_node_field(
            body, "nodes", max_items=MAX_BATCH_NODES
        )
        k = protocol.require_int(body, "k", default=10, minimum=1, maximum=MAX_K)
        nprobe = protocol.require_int(body, "nprobe", minimum=1)
        if int(nodes.min()) < 0:
            raise ApiError(
                400, "invalid_request", "field 'nodes' must be non-negative"
            )
        request = _parse_search_request(body, nodes=nodes, k=k, nprobe=nprobe)
        with trace_span("pin"):
            view = self.service.pin()
        result = _translate_errors(lambda: view.search(request))
        return 200, protocol.ResultPayload(result)

    def handle_similar(self, body: dict) -> tuple[int, "protocol.ResultPayload"]:
        protocol.reject_unknown_fields(
            body, ("vector", "k", "nprobe") + protocol.SEARCH_OPTION_FIELDS
        )
        vector = protocol.require_vector_field(
            body, "vector", max_items=MAX_VECTOR_DIM
        )
        k = protocol.require_int(body, "k", default=10, minimum=1, maximum=MAX_K)
        nprobe = protocol.require_int(body, "nprobe", minimum=1)
        request = _parse_search_request(
            body, vector=np.asarray(vector, dtype=np.float64), k=k, nprobe=nprobe
        )
        with trace_span("pin"):
            view = self.service.pin()
        result = _translate_errors(lambda: view.search(request))
        return 200, protocol.ResultPayload(result)

    def handle_upsert(self, body: dict) -> tuple[int, dict]:
        if self.is_standby:
            status = self.replicator.status()
            raise ApiError(
                409, "not_primary",
                "this server is a standby replicating from "
                f"{status['primary_url']}; send writes to the primary "
                "(or promote this standby first)",
                {
                    "primary_url": status["primary_url"],
                    "state": status["state"],
                    "epoch": self.ingest.log.epoch if self.ingest else None,
                },
            )
        return apply_upsert(
            self.ingest, body,
            hub=self.hub,
            ack_replicas=self.ack_replicas,
            ack_timeout_s=self.ack_timeout_s,
            epoch=self.ingest.log.epoch if self.ingest is not None else None,
        )

    def handle_promote(self, body: dict) -> tuple[int, dict]:
        """Fenced promotion: stop tailing, bump the epoch, accept writes.

        Safe to call on a primary too (a bare epoch bump re-fences the
        log); the interesting path is a standby taking over after its
        primary died.  The epoch bump is durable *before* the role
        flips, so a revived old primary reconnecting as a standby — or
        replaying its divergent tail — is structurally rejected by epoch
        comparison, never by luck of timing.
        """
        protocol.reject_unknown_fields(body, ("epoch",))
        if self.ingest is None:
            raise ApiError(
                409, "no_write_path",
                "this server has no WAL attached; nothing to promote",
            )
        target = protocol.require_int(body, "epoch", minimum=1)
        with self._promote_lock:
            previous_role = self.role
            if self.replicator is not None:
                # A replicator mid-append finishes against the old epoch
                # or trips EpochFenced after the bump — both safe; the
                # stop only prevents *new* polls.
                self.replicator.stop(timeout_s=2.0)
            log = self.ingest.log
            if self.replicator is not None:
                # Never promote *behind* a primary epoch we already saw.
                seen = self.replicator.status()["primary_epoch"]
                if target is not None and target <= max(log.epoch, seen):
                    raise ApiError(
                        409, "stale_epoch",
                        f"requested epoch {target} does not exceed the "
                        f"highest epoch observed ({max(log.epoch, seen)})",
                        {"epoch": max(log.epoch, seen)},
                    )
                if target is None and seen > log.epoch:
                    target = seen + 1
            try:
                epoch = log.bump_epoch(target)
            except ValueError as error:
                raise ApiError(409, "stale_epoch", str(error), {"epoch": log.epoch})
            self._promoted = True
        if self.journal is not None:
            self.journal.emit(
                "promote",
                epoch=epoch,
                previous_role=previous_role,
                lsn_durable=log.last_lsn,
            )
        return 200, {
            "role": "primary",
            "previous_role": previous_role,
            "epoch": epoch,
            "lsn_durable": log.last_lsn,
        }

    def handle_replicate(self, query: str) -> bytes:
        """The feed: raw WAL records past ``from_lsn`` as binary frames.

        Dispatched outside the JSON routing table because the response
        is the replication wire format, not an envelope — but rejections
        still surface as structured :class:`ApiError` JSON.
        """
        if self.ingest is None:
            raise ApiError(
                409, "no_write_path",
                "this server has no WAL attached; there is no log to replicate",
            )
        return serve_replicate_feed(
            self.ingest.log,
            self.hub,
            query,
            faults=self.faults,
            abort=lambda: self._draining,
        )

    def handle_refresh(self, body: dict) -> tuple[int, dict]:
        protocol.reject_unknown_fields(body, ("version", "delta"))
        if "version" in body and "delta" in body:
            raise ApiError(
                400, "invalid_request",
                "'version' and 'delta' are mutually exclusive",
            )
        if not self._refresh_lock.acquire(blocking=False):
            raise ApiError(
                409, "refresh_in_progress",
                "another refresh is already running; retry after it settles",
            )
        try:
            previous = self.service.version
            if "delta" in body:
                return 200, self._apply_delta_refresh(body["delta"], previous)
            if "version" in body:
                version = body["version"]
                if not isinstance(version, str) or not version:
                    raise ApiError(
                        400, "invalid_request",
                        "field 'version' must be a non-empty string",
                    )
                try:
                    current = self.service.activate(version)
                except FileNotFoundError:
                    raise ApiError(
                        404, "version_not_found",
                        f"store has no version {version!r}",
                        {"version": version},
                    )
                except StoreCorruptionError as error:
                    raise _store_corrupt_error(error)
            else:
                try:
                    current = self.service.refresh_to_latest()
                except StoreCorruptionError as error:
                    raise _store_corrupt_error(error)
            return 200, {
                "previous_version": previous,
                "version": current,
                "swapped": current != previous,
            }
        finally:
            self._refresh_lock.release()

    def _apply_delta_refresh(self, delta_body, previous: str) -> dict:
        if self.refresher is None:
            raise ApiError(
                409, "no_refresher",
                "this server has no OnlineRefresher attached; "
                "publish a version and POST {} or {'version': ...} instead",
            )
        if not isinstance(delta_body, dict):
            raise ApiError(400, "invalid_request", "'delta' must be an object")
        delta = _delta_from_body(delta_body)
        try:
            report = self.refresher.apply(delta)
        except (IndexError, ValueError) as error:
            raise ApiError(
                400, "invalid_request", f"delta rejected: {error}"
            )
        return json_safe(
            {
                "previous_version": previous,
                "version": report.version,
                "swapped": report.version != previous,
                "report": {
                    "n_nodes": report.n_nodes,
                    "n_moved": report.n_moved,
                    "n_lists_rebuilt": report.n_lists_rebuilt,
                    "n_lists_total": report.n_lists_total,
                    "timings": report.timings,
                },
            }
        )


_DELTA_FIELDS = (
    "add_edges",
    "remove_edges",
    "add_associations",
    "remove_associations",
)


def _delta_from_body(body: dict) -> "GraphDelta":
    """Parse the four GraphDelta fields out of a JSON or frame body.

    Shared by ``/admin/refresh`` (nested under ``delta``) and
    ``/v1/upsert`` (top-level).  Frame bodies arrive with the fields
    already decoded to arrays; JSON bodies as nested lists — both land
    on the same validation.
    """
    from repro.dynamic.incremental import GraphDelta

    protocol.reject_unknown_fields(body, _DELTA_FIELDS)

    def as_array(name: str, width: int) -> np.ndarray | None:
        rows = body.get(name)
        if rows is None:
            return None
        try:
            array = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError):
            raise ApiError(
                400, "invalid_request", f"delta field {name!r} is malformed"
            )
        if array.size == 0:
            return None
        if array.ndim != 2 or array.shape[1] != width:
            raise ApiError(
                400, "invalid_request",
                f"delta field {name!r} must be rows of {width} numbers",
                {"shape": list(array.shape)},
            )
        return array

    return GraphDelta(
        add_edges=as_array("add_edges", 2),
        remove_edges=as_array("remove_edges", 2),
        add_associations=as_array("add_associations", 3),
        remove_associations=as_array("remove_associations", 2),
    )


def serve_replicate_feed(
    log, hub, query: str, *, faults=None, abort=None
) -> bytes:
    """Parse a ``GET /v1/replicate`` query and build the binary feed.

    Module-level so the supervisor's admin surface (which owns the log
    in multi-worker mode) serves the identical wire as a single-process
    :class:`EmbeddingServer`.
    """
    params = dict(parse_qsl(query))
    try:
        from_lsn = int(params.get("from_lsn", 0))
        epoch = int(params["epoch"]) if "epoch" in params else None
        wait_s = min(float(params.get("wait_s", 0.0)), 30.0)
        max_records = min(int(params.get("max_records", 4096)), 65536)
    except ValueError:
        raise ApiError(
            400, "invalid_request",
            "replicate query parameters must be numeric",
        )
    if from_lsn < 0 or (epoch is not None and epoch < 1) or max_records < 1:
        raise ApiError(
            400, "invalid_request",
            "replicate query parameters out of range",
        )
    standby_id = params.get("standby_id")
    try:
        # Fencing gate FIRST: a diverged or stale-epoch requester's
        # from_lsn is not a valid ack — counting it could let a
        # semi-sync upsert ack against a standby that does not
        # actually hold the record.
        check_feed_request(log, from_lsn, epoch)
    except FeedRejected as error:
        raise ApiError(409, error.code, str(error), error.details)
    if standby_id and hub is not None:
        # from_lsn is the standby's cumulative ack: everything at or
        # below it is fsync'd over there.  Note it *before* parking
        # so a waiting semi-sync upsert unblocks immediately.
        hub.note_poll(standby_id, from_lsn, durable_lsn=log.last_lsn)
    try:
        return build_feed(
            log,
            from_lsn,
            requester_epoch=epoch,
            max_records=max_records,
            wait_s=wait_s,
            faults=faults,
            abort=abort,
        )
    except FeedRejected as error:
        raise ApiError(409, error.code, str(error), error.details)


def apply_upsert(
    ingest,
    body: dict,
    *,
    hub=None,
    ack_replicas: int = 0,
    ack_timeout_s: float = 5.0,
    epoch: int | None = None,
) -> tuple[int, dict]:
    """Validate, append, fsync, ack — the whole ``/v1/upsert`` contract.

    Module-level so the supervisor's admin surface (which owns the
    pipeline in multi-worker mode) speaks the identical protocol as a
    single-process :class:`EmbeddingServer`.

    With ``ack_replicas > 0`` and a :class:`ReplicationHub`, the ack is
    semi-synchronous: it is withheld until that many standbys confirmed
    the batch's last LSN.  On timeout the append *is* locally durable,
    but the client gets a structured 503 ``replication_timeout`` and no
    ack — so "every acked LSN survives failover" holds by construction.
    """
    if ingest is None:
        raise ApiError(
            409, "no_write_path",
            "this server has no WAL attached; start it with --wal-dir "
            "to accept upserts",
        )
    delta = _delta_from_body(body)
    try:
        with trace_span("append"):
            first, last = ingest.append(delta)
    except ValueError as error:
        raise ApiError(400, "invalid_request", f"upsert rejected: {error}")
    except LogFull as error:
        # Structured backpressure: the log hit its ceiling and only
        # compaction + checkpointing can shrink it.  Raised before the
        # append touched the log, so the 503 is safe to retry; the
        # retry_after_s hint paces the client's resend.
        raise ApiError(
            503, "log_full", str(error),
            {
                "size_bytes": error.size_bytes,
                "max_bytes": error.max_bytes,
                "retry_after_s": 1.0,
            },
        )
    except LogWriteError as error:
        raise ApiError(503, "wal_write_failed", str(error))
    if ack_replicas > 0 and hub is not None:
        with trace_span("replicate"):
            replicated = hub.wait_replicated(
                last, min_replicas=ack_replicas, timeout_s=ack_timeout_s
            )
        if not replicated:
            raise ApiError(
                503, "replication_timeout",
                f"append is durable locally (LSN {last}) but "
                f"{ack_replicas} standby ack(s) did not arrive within "
                f"{ack_timeout_s:g}s; the write was NOT acked",
                {
                    "lsn": last,
                    "required_replicas": ack_replicas,
                    "acked_replicas": hub.acked(last),
                    "retry_after_s": 1.0,
                },
            )
    # The ack: these LSNs are fsync'd — a crash from here on loses
    # nothing the client was told about.  The trace records the acked
    # LSN range so `/debug/traces` ties a request id to durable state.
    obs_trace.annotate(first_lsn=first, lsn=last)
    payload = {
        "first_lsn": first,
        "lsn": last,
        "events": last - first + 1,
        "durable": True,
        "lsn_served": ingest.lsn_served(),
    }
    if epoch is not None:
        # The fencing token: clients track the highest epoch they have
        # seen and refuse to write through a server that regressed.
        payload["epoch"] = epoch
    return 200, json_safe(payload)


def _store_corrupt_error(error: StoreCorruptionError) -> ApiError:
    """A refresh target failing fsck is a 409, not a retryable 503.

    The currently served snapshot is untouched (activation refused before
    the swap), so the server stays healthy — but retrying the refresh
    cannot succeed until an operator runs ``repro fsck --repair``.
    """
    return ApiError(
        409, "store_corrupt", str(error),
        {
            "version": error.version,
            "issues": [issue.as_dict() for issue in error.issues],
        },
    )


def _parse_search_request(
    body: dict,
    *,
    k: int,
    nprobe: int | None,
    node: int | None = None,
    nodes: np.ndarray | None = None,
    vector: np.ndarray | None = None,
) -> SearchRequest:
    """The shared tail of the three data handlers: options → SearchRequest.

    The filter parses to the ``invalid_filter`` wire code, params to
    ``invalid_request`` (with the legacy top-level ``nprobe`` folded in);
    request assembly itself can only fail on programmer error upstream,
    but is translated anyway so a gap surfaces as a 400, not a 500.
    """
    node_filter = protocol.parse_filter_field(body)
    params = protocol.parse_params_field(body, legacy_nprobe=nprobe)
    return _translate_errors(
        lambda: SearchRequest(
            node=node, nodes=nodes, vector=vector, k=k,
            filter=node_filter, params=params,
        )
    )


def _translate_errors(run):
    """Map service-level exceptions onto wire errors.

    ``IndexError`` (node/attribute out of range for the pinned snapshot)
    is a missing resource → 404; :class:`FilterError` (a predicate that
    cannot compile against the active version — unknown attribute,
    partition selector on an unpartitioned store) gets the dedicated
    ``invalid_filter`` code; any other ``ValueError`` (bad k, dim
    mismatch) is a caller mistake → 400.  Everything else propagates to
    the handler's 500 path.
    """
    try:
        return run()
    except IndexError as error:
        raise ApiError(404, "node_not_found", str(error))
    except FilterError as error:
        raise ApiError(400, "invalid_filter", str(error))
    except ValueError as error:
        raise ApiError(400, "invalid_request", str(error))


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`EmbeddingServer`'s handlers."""

    protocol_version = "HTTP/1.1"
    # A peer that stalls mid-request must not pin a handler thread (and
    # the drain wait) forever.
    timeout = 30
    # The response goes out as two writes (header block, body).  With
    # Nagle on, the body write can sit behind the peer's delayed ACK of
    # the header segment — a fixed ~40 ms stall per keep-alive exchange
    # that dwarfs the actual query time.  TCP_NODELAY on both sides
    # (the client sets it too) removes it.
    disable_nagle_algorithm = True

    @property
    def owner(self) -> EmbeddingServer:
        return self.server.embedding_server  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.owner.log_requests:
            super().log_message(format, *args)

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            # Every response — success, error, even the draining 503 —
            # echoes the request id so clients and operators can join
            # logs, traces, and retries on one key.
            self.send_header(protocol.REQUEST_ID_HEADER, request_id)
        lsn_served = getattr(self, "_lsn_served", None)
        if lsn_served is not None:
            # Read-freshness stamp for the client's min_lsn guard.  Read
            # before the snapshot pin, so it is a conservative floor:
            # the data answered is at least this fresh.
            self.send_header(protocol.LSN_HEADER, str(lsn_served))
        self._status_sent = status
        if self.owner.draining or self.close_connection:
            # Tear the connection down once the response is out: while
            # draining a reused connection would only see more 503s, and
            # an error raised before the request body was consumed leaves
            # bytes that would desync the next keep-alive request.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_bytes(
            status, protocol.dump_json(payload), protocol.JSON_CONTENT_TYPE
        )

    def _accepts_binary(self) -> bool:
        """Did the request opt in to binary frame responses?

        Deliberately a substring membership test, not a full
        content-negotiation parser: the only client that sends the
        ``application/x-repro-frame`` token is one that can decode it.
        A JSON-only server ignores the preference entirely — that *is*
        the fallback contract (clients always accept JSON).
        """
        if not self.owner.binary_wire:
            return False
        accept = self.headers.get("Accept") or ""
        return protocol.BINARY_CONTENT_TYPE in accept

    def _safe_send(self, status: int, payload) -> None:
        """Send a response, swallowing a peer that already hung up.

        Accepts either a plain JSON-able dict or a
        :class:`protocol.ResultPayload`, which is encoded as a binary
        frame when the request negotiated it and as JSON otherwise.
        Used on every write in the dispatch paths (success and error):
        a client that gave up mid-exchange must cost one closed
        connection, not a stderr traceback per occurrence — during a
        drain with impatient clients that would flood the log.
        """
        try:
            if isinstance(payload, protocol.ResultPayload):
                if self._accepts_binary():
                    frame = payload.to_frame()
                    if self.owner.faults is not None:
                        # Wire-corruption injection: the client's frame
                        # decoder must catch the damage, not crash on it.
                        frame = self.owner.faults.corrupt_frame(frame)
                    self._send_bytes(
                        status, frame, protocol.BINARY_CONTENT_TYPE
                    )
                else:
                    self._send_json(status, payload.to_json())
            else:
                self._send_json(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _read_body(self) -> bytes:
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are never consumed by this server, so the
            # same keep-alive desync as an unread Content-Length body
            # applies: refuse and tear the connection down.
            self.close_connection = True
            raise ApiError(
                411, "length_required",
                "Transfer-Encoding is not supported; send Content-Length",
            )
        length = self.headers.get("Content-Length")
        if length is None:
            return b""
        try:
            length = int(length)
        except ValueError:
            # The declared body cannot be skipped, so a keep-alive reuse
            # would parse its bytes as the next request line — tear the
            # connection down with the error response.
            self.close_connection = True
            raise ApiError(400, "invalid_request", "bad Content-Length header")
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True  # unread body poisons keep-alive
            raise ApiError(
                413, "payload_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
                {"content_length": length},
            )
        try:
            raw = self.rfile.read(length)
        except OSError as error:  # stalled peer hit the handler timeout
            self.close_connection = True
            raise ApiError(
                400, "invalid_request", f"request body read failed: {error}"
            )
        if len(raw) != length:
            # A short read means the connection is mid-body: any bytes
            # that arrive later would be parsed as the next request.
            self.close_connection = True
            raise ApiError(
                400, "invalid_request",
                f"request body truncated ({len(raw)}/{length} bytes)",
            )
        return raw

    def _check_deadline(self, path: str, start: float) -> None:
        """Shed a data request whose client-propagated deadline passed.

        The client sends its *remaining* retry budget in
        ``X-Deadline-Ms``; by the time this handler runs, that budget
        minus our own elapsed time is what's left.  If nothing is, the
        caller has already given up (or is about to) — answering 503
        ``deadline_exceeded`` now costs a header parse instead of a GEMM
        whose result nobody reads.
        """
        if path not in protocol.DATA_ENDPOINTS:
            return
        header = self.headers.get(protocol.DEADLINE_HEADER)
        if header is None:
            return
        try:
            budget_ms = float(header)
        except ValueError:
            raise ApiError(
                400, "invalid_request",
                f"bad {protocol.DEADLINE_HEADER} header: {header!r}",
            )
        elapsed_ms = (time.perf_counter() - start) * 1e3
        if budget_ms - elapsed_ms <= 0:
            raise ApiError(
                503, "deadline_exceeded",
                "request deadline passed before execution began",
                {"budget_ms": budget_ms, "elapsed_ms": round(elapsed_ms, 3)},
            )

    def _parse_body(self, raw: bytes, path: str) -> dict:
        """Decode the request body by its declared Content-Type.

        Binary frames are accepted on the data endpoints of a
        binary-capable server; everything else parses as JSON (the
        compatibility default — an absent or unknown Content-Type is
        treated as JSON exactly as before the binary wire existed).
        """
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        if content_type == protocol.BINARY_CONTENT_TYPE:
            if not self.owner.binary_wire or path not in protocol.DATA_ENDPOINTS:
                raise ApiError(
                    415, "unsupported_media_type",
                    f"binary frames are not accepted on {path!r} by this server",
                )
            return protocol.decode_frame_body(raw)
        return protocol.parse_json_body(raw)

    # -- routing -------------------------------------------------------
    _GET_ROUTES = {
        protocol.HEALTHZ: EmbeddingServer.handle_healthz,
        protocol.DESCRIBE: EmbeddingServer.handle_describe,
        protocol.METRICS: EmbeddingServer.handle_metrics,
        protocol.TRACES: EmbeddingServer.handle_traces,
        # Dispatched specially (query string in, binary frames out) but
        # listed here so method routing (404/405) treats it uniformly.
        protocol.REPLICATE: EmbeddingServer.handle_replicate,
    }
    _POST_ROUTES = {
        protocol.TOPK: EmbeddingServer.handle_topk,
        protocol.TOPK_BATCH: EmbeddingServer.handle_topk_batch,
        protocol.SIMILAR: EmbeddingServer.handle_similar,
        protocol.UPSERT: EmbeddingServer.handle_upsert,
        protocol.REFRESH: EmbeddingServer.handle_refresh,
        protocol.PROMOTE: EmbeddingServer.handle_promote,
    }

    def do_GET(self) -> None:
        self._dispatch(self._GET_ROUTES, self._POST_ROUTES)

    def do_POST(self) -> None:
        self._dispatch(self._POST_ROUTES, self._GET_ROUTES)

    def do_HEAD(self) -> None:
        # Load balancers commonly probe with HEAD; answer exactly like
        # GET minus the body (_send_json skips the write, the headers
        # still carry the real Content-Length).
        self._dispatch(self._GET_ROUTES, self._POST_ROUTES)

    def _unsupported_method(self) -> None:
        # The contract is JSON envelopes on *every* response — without
        # these handlers the stdlib would answer PUT/DELETE/... with an
        # HTML 501 page.  A body (PUT) may be unread: close after.
        # Runs through the same draining gate and error accounting as
        # routed requests, so a draining server answers 503 uniformly
        # and /metrics error counts do not depend on the verb used.
        owner = self.owner
        self.close_connection = True
        self._assign_request_id()
        if not owner._enter_request():
            self._safe_send(
                503,
                ApiError(
                    503, "draining",
                    "server is draining; retry against another replica",
                    request_id=self._request_id,
                ).body(),
            )
            return
        try:
            owner._count_error("method_not_allowed")
            self._safe_send(
                405,
                ApiError(
                    405, "method_not_allowed",
                    f"{self.command} is not supported by this API",
                    request_id=self._request_id,
                ).body(),
            )
        finally:
            owner._exit_request()

    do_PUT = do_DELETE = do_PATCH = do_OPTIONS = _unsupported_method

    def _assign_request_id(self) -> str:
        """Adopt the caller's ``X-Request-Id`` or mint one."""
        supplied = obs_trace.clean_request_id(
            self.headers.get(protocol.REQUEST_ID_HEADER)
        )
        self._request_id = supplied or obs_trace.new_request_id()
        return self._request_id

    def _accepts_prometheus(self) -> bool:
        """Did ``GET /metrics`` ask for the text exposition format?"""
        accept = self.headers.get("Accept") or ""
        return "text/plain" in accept

    def _dispatch(self, routes: dict, other_method_routes: dict) -> None:
        owner = self.owner
        path = urlsplit(self.path).path
        request_id = self._assign_request_id()
        if not owner._enter_request():
            body = ApiError(
                503, "draining",
                "server is draining; retry against another replica",
                request_id=request_id,
            ).body()
            if path == protocol.HEALTHZ and self.command == "GET":
                # Health probes still get the documented body shape (with
                # draining=true) alongside the error envelope, so an LB
                # can tell "draining" from "dead" without parsing errors.
                body.update(
                    status="draining",
                    version=owner.service.version,
                    draining=True,
                )
            self._safe_send(503, body)
            return
        start = time.perf_counter()
        # Tracing: only the server that owns the observability surfaces
        # traces its requests (an admin side-channel sharing them via
        # stats_for exposes them without polluting them with probes).
        trace = None
        token = None
        if owner._trace_enabled:
            trace = obs_trace.Trace(request_id, path, method=self.command)
            token = obs_trace.set_current(trace)
        self._status_sent = None
        self._lsn_served = None
        if owner.ingest is not None and path in (
            protocol.TOPK, protocol.TOPK_BATCH, protocol.SIMILAR,
        ):
            try:
                self._lsn_served = owner.ingest.lsn_served()
            except Exception:
                pass  # freshness stamping must never fail a read
        try:
            try:
                if owner.faults is not None and path in protocol.DATA_ENDPOINTS:
                    # Injection point: stall this handler or crash the
                    # process mid-request.  Only data endpoints count
                    # toward kill-after-N — a supervisor's health probes
                    # must never be what pulls the trigger.
                    owner.faults.on_request()
                # Consume the declared body before any routing decision:
                # a 404/405 sent with the body still unread would leave
                # its bytes to be parsed as the next keep-alive request.
                with trace_span("parse") as parse_span:
                    raw = self._read_body()
                    if parse_span is not None:
                        parse_span.meta["bytes"] = len(raw)
                self._check_deadline(path, start)
                route = routes.get(path)
                if route is None:
                    if path in other_method_routes:
                        raise ApiError(
                            405, "method_not_allowed",
                            f"{self.command} is not supported on {path}",
                        )
                    raise ApiError(
                        404, "unknown_endpoint", f"no endpoint at {path!r}"
                    )
                if path == protocol.REPLICATE and self.command in ("GET", "HEAD"):
                    # Replication feed: binary frames, not a JSON
                    # envelope — but errors still go out structured.
                    feed = owner.handle_replicate(urlsplit(self.path).query)
                    with trace_span("serialize"):
                        self._send_bytes(
                            200, feed, protocol.REPLICATION_CONTENT_TYPE
                        )
                elif (
                    path == protocol.METRICS
                    and self.command in ("GET", "HEAD")
                    and (owner.stats_for or owner).registry is not None
                    and self._accepts_prometheus()
                ):
                    # Content negotiation: Accept: text/plain turns the
                    # JSON metrics document into Prometheus exposition.
                    text = (owner.stats_for or owner).prometheus_text()
                    with trace_span("serialize"):
                        self._send_bytes(
                            200,
                            text.encode("utf-8"),
                            obs_metrics.TEXT_CONTENT_TYPE,
                        )
                else:
                    status, payload = route(owner, self._parse_body(raw, path))
                    with trace_span("serialize"):
                        self._safe_send(status, payload)
            except ApiError as error:
                owner._count_error(error.code)
                error.request_id = request_id
                self._safe_send(error.status, error.body())
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-request; nothing left to read
            except InjectedFault:
                # Soft-mode injected crash: die like a killed worker would
                # — no response, torn connection — without taking the
                # in-process test's interpreter down.  socketserver's
                # handle_error catches the re-raise and closes the socket.
                self.close_connection = True
                raise
            except Exception as error:  # the contract: never a bare 500 page
                owner._count_error("internal")
                self._safe_send(
                    500,
                    ApiError(
                        500, "internal", f"{type(error).__name__}: {error}",
                        request_id=request_id,
                    ).body(),
                )
        finally:
            duration_s = time.perf_counter() - start
            stats = owner.endpoint_stats.get(path)
            if stats is not None:
                stats.record(duration_s, cached=False)
            if trace is not None:
                obs_trace.reset_current(token)
                owner._finish_trace(trace, path, self._status_sent, duration_s)
            owner._exit_request()
