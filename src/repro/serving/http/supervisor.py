"""Pre-fork multi-process serving tier with a fault-tolerant supervisor.

The single-process :class:`~repro.serving.http.server.EmbeddingServer`
is GIL-bound and a single point of failure.  This module escapes both:
a :class:`Supervisor` binds ONE listening socket, spawns ``N``
shared-nothing worker processes that all ``accept()`` from it (the
classic pre-fork model — the kernel load-balances connections across
whoever is blocked in accept), and babysits them:

- **Health checking.**  Each worker runs a second, loopback *admin*
  server (same :class:`~repro.serving.service.QueryService`, ephemeral
  port) announced on stdout at boot; the supervisor probes its
  ``/healthz`` on an interval.  A worker that stops answering for
  ``hang_checks`` consecutive probes is declared hung and SIGKILLed —
  the shared listen socket means a hung worker silently sheds its share
  of the accept load, so detection has to be active.
- **Crash recovery.**  A dead worker (crash, kill, hang) is restarted
  with exponential backoff.  The parent never drops the listen socket,
  so there is no accept gap while a worker is down — surviving workers
  keep taking every connection.
- **Crash-loop circuit breaker.**  More than ``max_restarts`` restarts
  of one worker slot inside ``restart_window_s`` trips the breaker: the
  supervisor tears everything down and exits nonzero rather than
  burning CPU relaunching a worker that cannot live (bad store, OOM,
  poisoned config).
- **Rolling drain.**  SIGTERM drains workers *one at a time* (each gets
  SIGTERM and completes its in-flight requests); capacity degrades
  gradually instead of all-at-once.
- **Aggregation.**  The supervisor serves its own loopback admin
  endpoints — ``/healthz``, ``/metrics``, ``/v1/describe`` — that fan
  in across workers: summed request/error counters, per-worker served
  version (surfacing refresh skew), liveness and restart counts.
- **Write path (opt-in via ``wal_dir``).**  Exactly one process may
  append to the delta log, so the *supervisor* owns the
  :class:`~repro.serving.wal.compactor.IngestPipeline` and its
  background :class:`~repro.serving.wal.compactor.Compactor`; the admin
  surface accepts ``POST /v1/upsert`` (JSON), acks after fsync, and
  each compacted version triggers a best-effort ``/admin/refresh`` poke
  to every live worker.  Fleet ``lsn_served`` is the *minimum* across
  live workers — the freshness a client can rely on no matter which
  worker accepts its connection.

Workers are separate *processes* launched by re-exec (``python -m
repro.serving.http._worker`` with a :data:`WORKER_SPEC_ENV` JSON
spec), not forks: the supervisor has running threads by the time it
restarts anything, and fork-with-threads is how you inherit a locked
lock.  The listen socket rides along via ``pass_fds``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlsplit

from repro.serving.http import protocol
from repro.serving.http.client import ServingClient
from repro.serving.http.protocol import ApiError
from repro.serving.obs import metrics as obs_metrics
from repro.serving.obs.journal import EventJournal
from repro.serving.obs.metrics import MetricsRegistry, merge_dicts

WORKER_SPEC_ENV = "REPRO_WORKER_SPEC"

# The worker's boot announcement; the supervisor parses the admin URL
# out of it (the data plane is the shared socket — only the admin port
# is per-worker news).
_READY_RE = re.compile(r"admin=(http://\S+)")

# Counter keys of a LatencyStats snapshot that sum across disjoint
# per-worker streams (percentiles do not — they stay per-worker).
_SUMMABLE = ("queries", "cache_hits", "total_seconds", "samples")


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything a multi-worker serving deployment needs to boot.

    The serving knobs (``backend`` … ``log_requests``) mirror the
    single-process CLI flags and are forwarded verbatim to every worker;
    the supervision knobs control the babysitting policy.
    """

    store: str
    n_workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    # -- per-worker serving knobs (mirror `repro serve --http`) --------
    backend: str = "auto"
    nprobe: int = 8
    threads: int = 1
    coalesce_window_ms: float = 0.0
    coalesce_max_batch: int = 64
    select_dtype: str = "float64"
    drain_timeout_s: float = 10.0
    log_requests: bool = False
    # Requests slower than this (milliseconds) are logged as structured
    # JSON slow-query lines on the worker's stderr; 0 disables.
    slow_query_ms: float = 0.0
    # -- write path (parent-owned WAL + compactor) ---------------------
    # Workers serve reads off the shared socket; the supervisor process
    # owns the delta log and the compactor, accepts POST /v1/upsert on
    # its admin URL, and pokes workers onto each compacted version.
    wal_dir: str | None = None
    graph: str | None = None  # base graph (.npz) for bootstrap/attach
    wal_max_bytes: int = 64 << 20
    compact_interval_s: float = 0.25
    gc_keep: int = 0  # store versions to retain (0 = never delete)
    bootstrap_k: int = 32
    # -- replication (the supervisor is always the primary side) -------
    # Standbys tail GET /v1/replicate off the admin URL; with
    # ack_replicas > 0 an upsert ack additionally waits for that many
    # standby confirmations (semi-sync — zero acked loss on failover).
    ack_replicas: int = 0
    ack_timeout_s: float = 5.0
    # -- supervision policy --------------------------------------------
    health_interval_s: float = 0.25
    health_timeout_s: float = 1.0
    hang_checks: int = 8
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0
    max_restarts: int = 5
    restart_window_s: float = 30.0
    boot_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {self.max_restarts}")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be > 0")


# ---------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------
def _open_worker_store(root: str):
    from repro.serving.sharding.store import ShardedEmbeddingStore
    from repro.serving.store import EmbeddingStore

    if ShardedEmbeddingStore.is_sharded_root(root):
        return ShardedEmbeddingStore(root)
    return EmbeddingStore(root)


def worker_main(environ=None) -> int:
    """Entry point of one worker process (re-exec'd by the supervisor).

    Reads its spec from :data:`WORKER_SPEC_ENV`, adopts the inherited
    listen socket, builds the query service, and serves until SIGTERM
    (drain) or a crash.  Prints exactly one parsable boot line so the
    supervisor learns the per-worker admin URL.
    """
    from repro.serving.faults import FaultInjector
    from repro.serving.http.server import EmbeddingServer
    from repro.serving.service import QueryService

    environ = os.environ if environ is None else environ
    raw = environ.get(WORKER_SPEC_ENV)
    if not raw:
        print(
            f"error: {WORKER_SPEC_ENV} is not set; this entry point is "
            "launched by the supervisor, not by hand",
            file=sys.stderr,
        )
        return 2
    spec = json.loads(raw)
    worker_id = int(spec["worker_id"])
    faults = FaultInjector.from_env(worker_id=worker_id)

    store = _open_worker_store(spec["store"])
    service = QueryService(
        store,
        backend=spec.get("backend", "auto"),
        nprobe=int(spec.get("nprobe", 8)),
        n_threads=max(1, int(spec.get("threads", 1))),
        index_cache=True,
        select_dtype=spec.get("select_dtype", "float64"),
    )
    try:
        server = EmbeddingServer(
            service,
            socket_fd=int(spec["listen_fd"]),
            drain_timeout_s=float(spec.get("drain_timeout_s", 10.0)),
            coalesce_window_s=float(spec.get("coalesce_window_ms", 0.0)) / 1e3,
            coalesce_max_batch=int(spec.get("coalesce_max_batch", 64)),
            log=bool(spec.get("log_requests", False)),
            worker_id=worker_id,
            faults=faults,
            slow_query_ms=float(spec.get("slow_query_ms", 0.0)),
        )
        # The shared listen socket must be non-blocking under pre-fork:
        # a new connection wakes every worker's selector, but only one
        # accept() wins — the losers must get EAGAIN back, not block
        # their serve loop until the *next* connection arrives.
        server._httpd.socket.setblocking(False)
        # Health/aggregation side-channel: same service, private port —
        # the shared data socket cannot address one specific worker.
        # stats_for makes its /metrics and /healthz report the *data*
        # server's counters and drain state, not the admin server's own.
        admin = EmbeddingServer(
            service, port=0, worker_id=worker_id, stats_for=server
        )
        admin.start()
        print(
            f"worker {worker_id} pid={os.getpid()} serving on {server.url} "
            f"admin={admin.url}",
            flush=True,
        )
        try:
            drained = server.run(signals=True)
        finally:
            admin.close()
        return 0 if drained else 1
    finally:
        service.close()


# ---------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    """One live (or recently live) worker process."""

    process: subprocess.Popen
    ready: threading.Event = field(default_factory=threading.Event)
    admin_url: str | None = None
    client: ServingClient | None = None
    reader: threading.Thread | None = None

    def alive(self) -> bool:
        return self.process.poll() is None


class _WorkerSlot:
    """The supervision state of one worker position (id is stable)."""

    def __init__(self, worker_id: int, backoff_base_s: float) -> None:
        self.worker_id = worker_id
        self.handle: _WorkerHandle | None = None
        self.backoff_s = backoff_base_s
        self.not_before = 0.0  # monotonic time before which no respawn
        self.restart_times: deque[float] = deque()
        self.health_failures = 0
        self.last_probe = 0.0
        self.restarts = 0
        self.last_exit: str | None = None
        self.last_version: str | None = None  # from the last healthz probe
        # Fleet-monotonic metric fan-in: `registry_last` is the current
        # incarnation's registry as of its last scrape; on death it folds
        # into `registry_retired` so restart cannot make an aggregate
        # counter go backwards (it is exact as-of the last scrape — the
        # growth between that scrape and the crash dies with the worker).
        self.registry_last: dict | None = None
        self.registry_retired: dict | None = None

    def fold_registry(self) -> None:
        """Retire the dead incarnation's last-scraped registry snapshot."""
        if self.registry_last is None:
            return
        if self.registry_retired is None:
            self.registry_retired = self.registry_last
        else:
            self.registry_retired = merge_dicts(
                [self.registry_retired, self.registry_last]
            )
        self.registry_last = None


class Supervisor:
    """Own the listen socket; keep ``n_workers`` processes serving it.

    Lifecycle: :meth:`start` binds, spawns, and launches the health
    loop; :meth:`wait` blocks until SIGTERM/SIGINT or a breaker trip;
    :meth:`shutdown` performs the rolling drain.  ``run()`` is the CLI
    composition of the three.  Exit codes: ``0`` clean drain, ``3``
    crash-loop breaker tripped.
    """

    BREAKER_EXIT = 3

    def __init__(self, config: SupervisorConfig) -> None:
        self.config = config
        self._slots = [
            _WorkerSlot(i, config.backoff_base_s) for i in range(config.n_workers)
        ]
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._shutdown_logged = False
        self._stop_logged = False
        self._failed: str | None = None
        self._listen: socket.socket | None = None
        self._admin_httpd: ThreadingHTTPServer | None = None
        self._admin_thread: threading.Thread | None = None
        self._health_thread: threading.Thread | None = None
        self.restarts_total = 0
        # Write path (only when config.wal_dir is set): the supervisor
        # process owns the log + compactor; workers only ever read.
        self.pipeline = None
        self.compactor = None
        # Replication hub (with the write path): tracks standby acks so
        # the admin upsert can be semi-synchronous.
        self.hub = None
        # Ops journal under the store root: worker lifecycle, breaker
        # trips, publishes/checkpoints/GC (via the compactor), drains.
        self.journal = EventJournal(config.store)
        # The supervisor's own registry (restart counts, fleet liveness,
        # WAL state); worker registries merge with it at scrape time.
        self.registry = MetricsRegistry()
        self.registry.add_collect(self._collect_supervisor_metrics)

    # -- addresses -----------------------------------------------------
    @property
    def url(self) -> str:
        assert self._listen is not None, "start() first"
        host, port = self._listen.getsockname()[:2]
        return f"http://{host}:{port}"

    @property
    def admin_url(self) -> str:
        assert self._admin_httpd is not None, "start() first"
        host, port = self._admin_httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def failed(self) -> str | None:
        """The breaker trip reason, or ``None`` while healthy."""
        return self._failed

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Supervisor":
        """Bind the shared socket, spawn every worker, begin supervising."""
        config = self.config
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((config.host, config.port))
        self._listen.listen(128)
        # The write path must be ready *before* any worker boots: a cold
        # bootstrap publishes the first store version, and workers open
        # LATEST at startup.
        if config.wal_dir is not None:
            from repro.serving.wal.compactor import Compactor, IngestPipeline
            from repro.serving.wal.replication import ReplicationHub

            self.hub = ReplicationHub(journal=self.journal)
            self.pipeline = IngestPipeline(
                config.wal_dir,
                _open_worker_store(config.store),
                max_bytes=config.wal_max_bytes,
            )
            self.pipeline.ensure_ready(config.graph, k=config.bootstrap_k)
            self.compactor = Compactor(
                self.pipeline,
                interval_s=config.compact_interval_s,
                keep_versions=config.gc_keep,
                on_publish=self._poke_workers,
                journal=self.journal,
            )
            self.compactor.start()
        self.journal.emit(
            "supervisor_start",
            n_workers=config.n_workers,
            url=self.url,
            wal=config.wal_dir is not None,
        )
        for slot in self._slots:
            self._spawn(slot)
        self._admin_httpd = ThreadingHTTPServer(
            (config.host, 0), _SupervisorAdminHandler
        )
        self._admin_httpd.daemon_threads = True
        self._admin_httpd.supervisor = self  # type: ignore[attr-defined]
        self._admin_thread = threading.Thread(
            target=self._admin_httpd.serve_forever,
            name="supervisor-admin",
            daemon=True,
        )
        self._admin_thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="supervisor-health", daemon=True
        )
        self._health_thread.start()
        return self

    def wait(self, *, signals: bool = True) -> int:
        """Block until shutdown is requested, then drain; return exit code."""
        if signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, lambda *_: self._stop.set())
        self._stop.wait()
        self.shutdown()
        if self._failed is not None:
            print(f"error: {self._failed}", file=sys.stderr, flush=True)
            return self.BREAKER_EXIT
        return 0

    def run(self, *, signals: bool = True) -> int:
        self.start()
        return self.wait(signals=signals)

    def shutdown(self) -> None:
        """Rolling drain: SIGTERM workers one at a time, then tear down."""
        self._stop.set()
        if not self._shutdown_logged:
            self._shutdown_logged = True
            self.journal.emit(
                "drain", reason=self._failed or "shutdown requested"
            )
        # Quiesce the write path first so no new version lands (and no
        # worker gets poked) mid-drain; the log itself closes last.
        if self.compactor is not None:
            self.compactor.stop()
            self.compactor = None
        if self._health_thread is not None:
            self._health_thread.join(timeout=10.0)
            self._health_thread = None
        for slot in self._slots:
            with self._lock:
                handle = slot.handle
            if handle is None:
                continue
            if handle.alive():
                handle.process.send_signal(signal.SIGTERM)
                try:
                    # Sequential by design: the next worker keeps serving
                    # at full tilt until this one has finished draining.
                    handle.process.wait(
                        timeout=self.config.drain_timeout_s + 5.0
                    )
                except subprocess.TimeoutExpired:
                    handle.process.kill()
                    handle.process.wait()
            self._reap(handle)
        if self._admin_httpd is not None:
            self._admin_httpd.shutdown()
            self._admin_httpd.server_close()
            if self._admin_thread is not None:
                self._admin_thread.join(timeout=5.0)
                self._admin_thread = None
        if self._listen is not None:
            self._listen.close()
        if self.pipeline is not None:
            self.pipeline.close()
            self.pipeline = None
        if not self._stop_logged:
            self._stop_logged = True
            self.journal.emit("supervisor_stop", failed=self._failed)

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- worker management ---------------------------------------------
    def _worker_spec(self) -> dict:
        config = self.config
        assert self._listen is not None
        return {
            "store": config.store,
            "listen_fd": self._listen.fileno(),
            "backend": config.backend,
            "nprobe": config.nprobe,
            "threads": config.threads,
            "coalesce_window_ms": config.coalesce_window_ms,
            "coalesce_max_batch": config.coalesce_max_batch,
            "select_dtype": config.select_dtype,
            "drain_timeout_s": config.drain_timeout_s,
            "log_requests": config.log_requests,
            "slow_query_ms": config.slow_query_ms,
        }

    def _spawn(self, slot: _WorkerSlot) -> bool:
        """Launch slot's worker and wait for its boot announcement."""
        spec = self._worker_spec()
        spec["worker_id"] = slot.worker_id
        env = dict(os.environ)
        env[WORKER_SPEC_ENV] = json.dumps(spec)
        # The child re-imports repro by name; make sure it resolves to
        # *this* checkout even when the parent got it from sys.path
        # manipulation rather than an installed package.
        package_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serving.http._worker"],
            env=env,
            pass_fds=(self._listen.fileno(),),
            stdout=subprocess.PIPE,
            stderr=None,  # worker tracebacks land on the supervisor's stderr
            text=True,
        )
        handle = _WorkerHandle(process=process)
        handle.reader = threading.Thread(
            target=self._read_worker_output,
            args=(handle, slot.worker_id),
            name=f"worker-{slot.worker_id}-stdout",
            daemon=True,
        )
        handle.reader.start()
        # Poll rather than one long wait: a worker that dies during boot
        # (bad store, import error) should hit the death path *now*, not
        # after the full boot timeout.
        deadline = time.monotonic() + self.config.boot_timeout_s
        while (
            not handle.ready.is_set()
            and handle.alive()
            and time.monotonic() < deadline
        ):
            handle.ready.wait(timeout=0.05)
        if not handle.ready.is_set() or not handle.alive():
            # Died during boot (or never announced): goes through the
            # normal death path so backoff and the breaker apply.
            if handle.alive():
                handle.process.kill()
            handle.process.wait()
            self._reap(handle)
            with self._lock:
                slot.handle = None
            self._register_death(
                slot,
                f"worker {slot.worker_id} failed to boot "
                f"(exit {handle.process.returncode})",
                pid=handle.process.pid,
                exit_code=handle.process.returncode,
            )
            return False
        handle.client = ServingClient(
            handle.admin_url,
            timeout_s=self.config.health_timeout_s,
            retries=0,
            backoff_s=0.0,
        )
        with self._lock:
            slot.handle = handle
            slot.health_failures = 0
            slot.last_probe = time.monotonic()
        self.journal.emit(
            "worker_start",
            worker=slot.worker_id,
            worker_pid=handle.process.pid,
            admin=handle.admin_url,
        )
        return True

    def _read_worker_output(self, handle: _WorkerHandle, worker_id: int) -> None:
        assert handle.process.stdout is not None
        for line in handle.process.stdout:
            line = line.rstrip()
            match = _READY_RE.search(line)
            if match and handle.admin_url is None:
                handle.admin_url = match.group(1)
                handle.ready.set()
            elif line:
                print(f"[worker {worker_id}] {line}", file=sys.stderr, flush=True)
        handle.process.stdout.close()

    def _reap(self, handle: _WorkerHandle) -> None:
        if handle.client is not None:
            handle.client.close()
        if handle.reader is not None:
            handle.reader.join(timeout=5.0)

    def _register_death(
        self,
        slot: _WorkerSlot,
        reason: str,
        *,
        pid: int | None = None,
        exit_code: int | None = None,
    ) -> None:
        """Record a death; schedule backoff respawn or trip the breaker."""
        now = time.monotonic()
        slot.last_exit = reason
        with self._lock:
            # The dead incarnation's counters fold into the slot's
            # retired pile so the fleet aggregate stays monotonic.
            slot.fold_registry()
        self.journal.emit(
            "worker_exit",
            worker=slot.worker_id,
            worker_pid=pid,
            exit=exit_code,
            reason=reason,
        )
        slot.restart_times.append(now)
        window = self.config.restart_window_s
        while slot.restart_times and now - slot.restart_times[0] > window:
            slot.restart_times.popleft()
        if len(slot.restart_times) > self.config.max_restarts:
            self._failed = (
                f"crash loop: worker {slot.worker_id} needed "
                f"{len(slot.restart_times)} restarts inside {window:.0f}s "
                f"(last: {reason}); giving up"
            )
            self.journal.emit(
                "breaker_trip", worker=slot.worker_id, reason=self._failed
            )
            self._stop.set()
            return
        slot.not_before = now + slot.backoff_s
        slot.backoff_s = min(slot.backoff_s * 2, self.config.backoff_max_s)

    def _health_loop(self) -> None:
        config = self.config
        while not self._stop.is_set():
            for slot in self._slots:
                if self._stop.is_set():
                    break
                with self._lock:
                    handle = slot.handle
                if handle is None:
                    if time.monotonic() >= slot.not_before:
                        slot.restarts += 1
                        self.restarts_total += 1
                        self.journal.emit(
                            "worker_restart",
                            worker=slot.worker_id,
                            restarts=slot.restarts,
                            last_exit=slot.last_exit,
                        )
                        self._spawn(slot)
                    continue
                if not handle.alive():
                    code = handle.process.returncode
                    pid = handle.process.pid
                    self._reap(handle)
                    with self._lock:
                        slot.handle = None
                    self._register_death(
                        slot,
                        f"worker {slot.worker_id} exited with code {code}",
                        pid=pid,
                        exit_code=code,
                    )
                    continue
                now = time.monotonic()
                if now - slot.last_probe < config.health_interval_s:
                    continue
                slot.last_probe = now
                try:
                    probe = handle.client.healthz()
                except Exception:
                    slot.health_failures += 1
                    if slot.health_failures >= config.hang_checks:
                        # Unresponsive but alive: a hung worker sheds its
                        # accept share invisibly — kill it so the restart
                        # path can restore capacity.
                        handle.process.kill()
                        handle.process.wait()
                        self._reap(handle)
                        with self._lock:
                            slot.handle = None
                        self._register_death(
                            slot,
                            f"worker {slot.worker_id} hung "
                            f"({slot.health_failures} failed probes)",
                            pid=handle.process.pid,
                            exit_code=handle.process.returncode,
                        )
                else:
                    slot.health_failures = 0
                    slot.last_version = probe.get("version")
                    # A worker answering health checks is not crash-looping:
                    # let the next incident start from a fresh backoff.
                    slot.backoff_s = config.backoff_base_s
            self._stop.wait(timeout=config.health_interval_s / 2)

    # -- write path ----------------------------------------------------
    def _poke_workers(self, version: str) -> None:
        """Nudge every live worker onto the just-compacted version.

        Best-effort by design: a worker that misses the poke (dead,
        mid-restart, admin hiccup) converges on its own — it reopens
        LATEST on its next refresh and the freshness gap shows up in
        ``lsn_served`` until it does.
        """
        for slot, handle in self._worker_views():
            if handle is None or not handle.alive():
                continue
            try:
                handle.client.refresh()
            except Exception:
                pass

    def _version_applied_lsn(self, version: str | None) -> int:
        """The log position baked into ``version``'s manifest (0 if none)."""
        if version is None or self.pipeline is None:
            return 0
        try:
            manifest = self.pipeline.store.manifest(version)
        except Exception:
            return 0
        return int((manifest.get("metadata") or {}).get("applied_lsn", 0))

    def _lsn_fields(self, worker_versions) -> dict:
        """``lsn_durable``/``lsn_served`` across the fleet.

        ``lsn_served`` is the *minimum* over live workers — the write a
        client is guaranteed to see regardless of which worker the
        kernel hands its connection to.
        """
        assert self.pipeline is not None
        served = [
            self._version_applied_lsn(version) for version in worker_versions
        ]
        return {
            "lsn_durable": self.pipeline.lsn_durable,
            "lsn_served": min(served) if served else 0,
        }

    # -- aggregation ---------------------------------------------------
    def _worker_views(self) -> list[tuple[_WorkerSlot, _WorkerHandle | None]]:
        with self._lock:
            return [(slot, slot.handle) for slot in self._slots]

    def _collect_supervisor_metrics(self) -> None:
        """Scrape-time mirror of supervision + write-path state."""
        reg = self.registry
        reg.counter(
            "supervisor_restarts_total", "Worker restarts performed"
        ).set_total(self.restarts_total)
        views = self._worker_views()
        live = sum(
            1 for _, handle in views if handle is not None and handle.alive()
        )
        reg.gauge("supervisor_workers_live", "Live worker processes").set(live)
        reg.gauge(
            "supervisor_workers_configured", "Configured worker slots"
        ).set(len(self._slots))
        versions = {
            slot.last_version
            for slot, handle in views
            if handle is not None and handle.alive() and slot.last_version
        }
        reg.gauge(
            "supervisor_version_skew",
            "1 while live workers serve different store versions",
        ).set(1.0 if len(versions) > 1 else 0.0)
        reg.gauge(
            "supervisor_breaker_tripped", "1 after the crash-loop breaker fired"
        ).set(1.0 if self._failed is not None else 0.0)
        if self.pipeline is not None:
            counters = dict(self.pipeline.counters)
            reg.counter("wal_appends_total", "WAL append batches").set_total(
                counters.get("appends", 0)
            )
            reg.counter("wal_events_total", "WAL events appended").set_total(
                counters.get("events", 0)
            )
            reg.counter(
                "wal_compactions_total", "Compaction folds completed"
            ).set_total(counters.get("compactions", 0))
            reg.counter(
                "wal_records_folded_total", "WAL records folded into snapshots"
            ).set_total(counters.get("records_folded", 0))
            reg.counter(
                "wal_checkpoints_total", "Checkpoints written"
            ).set_total(counters.get("checkpoints", 0))
            reg.counter(
                "wal_log_full_total", "Upserts rejected because the log was full"
            ).set_total(counters.get("log_full_rejections", 0))
            log = self.pipeline.log
            reg.counter("wal_fsyncs_total", "WAL fsync calls").set_total(
                log.fsyncs
            )
            reg.counter(
                "wal_fsynced_bytes_total", "Bytes written to the WAL before fsync"
            ).set_total(log.fsynced_bytes)
            reg.gauge("wal_log_bytes", "Live WAL size in bytes").set(
                log.size_bytes
            )
            served = [
                self._version_applied_lsn(slot.last_version)
                for slot, handle in views
                if handle is not None and handle.alive() and slot.last_version
            ]
            lsn_served = min(served) if served else 0
            durable = self.pipeline.lsn_durable
            reg.gauge("ingest_lsn_durable", "Highest fsync-acked LSN").set(
                durable
            )
            reg.gauge(
                "ingest_lsn_served",
                "Highest LSN every live worker is guaranteed to serve",
            ).set(lsn_served)
            reg.gauge(
                "ingest_freshness_lag", "lsn_durable - fleet lsn_served"
            ).set(durable - lsn_served)
            reg.gauge("wal_epoch", "Current WAL fencing epoch").set(
                log.epoch
            )
            if self.hub is not None:
                hub = self.hub.status()
                reg.gauge(
                    "replication_standbys", "Standbys polling the feed"
                ).set(hub["n_standbys"])
                reg.gauge(
                    "replication_min_ack_lsn",
                    "Lowest cumulative ack across live standbys",
                ).set(
                    hub["min_ack_lsn"]
                    if hub["min_ack_lsn"] is not None
                    else -1
                )
            if self.compactor is not None:
                timings = self.compactor.timings
                reg.counter(
                    "compactor_fold_seconds_total", "Time spent folding WAL deltas"
                ).set_total(timings["fold_seconds"])
                reg.counter(
                    "compactor_publish_seconds_total",
                    "Time spent publishing folded versions",
                ).set_total(timings["publish_seconds"])
                reg.counter(
                    "compactor_publishes_total",
                    "Versions published by the compactor",
                ).set_total(timings["publishes"])

    def registry_snapshot(self) -> dict:
        """The fleet registry: supervisor families + every worker's cells.

        Retired (dead-incarnation) snapshots merge with the live workers'
        last-scraped snapshots, so counters are monotonic across worker
        restarts; cells with identical labels sum exactly.
        """
        parts = [self.registry.as_dict()]
        with self._lock:
            for slot in self._slots:
                if slot.registry_retired is not None:
                    parts.append(slot.registry_retired)
                if slot.registry_last is not None:
                    parts.append(slot.registry_last)
        return merge_dicts(parts)

    def prometheus_text(self) -> str:
        """The fleet registry rendered as Prometheus text exposition."""
        return obs_metrics.render_text_from_dict(self.registry_snapshot())

    def handle_promote(self, body: dict) -> dict:
        """``POST /admin/promote``: bump the WAL epoch (fencing).

        A supervisor is always on the primary side of replication, so
        "promotion" here is the epoch bump alone — used to fence off a
        dead peer's term after this deployment took over its data, or
        to pre-empt a suspect writer.  Standbys adopt the new epoch on
        their next poll; pollers still on an older term get 409s.
        """
        protocol.reject_unknown_fields(body, ("epoch",))
        if self.pipeline is None:
            raise ApiError(
                409, "no_write_path",
                "this supervisor has no WAL attached; there is no "
                "epoch to bump",
            )
        target = protocol.require_int(body, "epoch", minimum=1)
        log = self.pipeline.log
        try:
            epoch = log.bump_epoch(target)
        except ValueError as error:
            raise ApiError(
                409, "stale_epoch", str(error),
                {"epoch": log.epoch, "requested": target},
            )
        self.journal.emit(
            "promote",
            epoch=epoch,
            previous_role="primary",
            lsn_durable=log.last_lsn,
        )
        return {
            "role": "primary",
            "previous_role": "primary",
            "epoch": epoch,
            "lsn_durable": log.last_lsn,
        }

    def _replication_status(self) -> dict:
        log = self.pipeline.log
        return {
            "role": "primary",
            "epoch": log.epoch,
            "epoch_start_lsn": log.epoch_start_lsn,
            "hub": self.hub.status() if self.hub is not None else None,
            "ack_replicas": self.config.ack_replicas,
        }

    def aggregate_healthz(self) -> tuple[int, dict]:
        workers = []
        versions = set()
        live_versions = []
        n_live = 0
        for slot, handle in self._worker_views():
            entry: dict = {
                "worker": slot.worker_id,
                "alive": False,
                "restarts": slot.restarts,
            }
            if slot.last_exit is not None:
                entry["last_exit"] = slot.last_exit
            if handle is not None and handle.alive():
                entry["pid"] = handle.process.pid
                try:
                    probe = handle.client.healthz()
                except Exception as error:
                    entry["error"] = f"{type(error).__name__}: {error}"
                else:
                    entry["alive"] = True
                    entry["version"] = probe.get("version")
                    entry["draining"] = probe.get("draining")
                    versions.add(probe.get("version"))
                    live_versions.append(probe.get("version"))
                    n_live += 1
            workers.append(entry)
        status = (
            "ok"
            if n_live == len(self._slots)
            else ("degraded" if n_live else "down")
        )
        payload = {
            "status": status,
            "n_workers": len(self._slots),
            "n_live": n_live,
            "version_skew": len(versions) > 1,
            "restarts_total": self.restarts_total,
            "workers": workers,
        }
        if self.pipeline is not None:
            lsn = self._lsn_fields(live_versions)
            payload.update(lsn)
            payload["freshness_lag"] = lsn["lsn_durable"] - lsn["lsn_served"]
            payload["role"] = "primary"
            payload["epoch"] = self.pipeline.log.epoch
            if self.hub is not None:
                hub = self.hub.status()
                if hub["n_standbys"]:
                    payload["replication"] = hub
        return (200 if n_live else 503), payload

    def aggregate_describe(self) -> tuple[int, dict]:
        base: dict | None = None
        workers = []
        versions = set()
        for slot, handle in self._worker_views():
            entry: dict = {"worker": slot.worker_id, "alive": False}
            if handle is not None and handle.alive():
                try:
                    info = handle.client.describe()
                except Exception as error:
                    entry["error"] = f"{type(error).__name__}: {error}"
                else:
                    entry["alive"] = True
                    entry["version"] = info.get("version")
                    versions.add(info.get("version"))
                    if base is None:
                        base = info
            workers.append(entry)
        if base is None:
            raise ApiError(503, "no_workers", "no live worker to describe")
        payload = dict(base)
        payload.pop("worker", None)  # supervisor-level view, not one worker's
        payload["supervisor"] = {
            "n_workers": len(self._slots),
            "workers": workers,
            "version_skew": len(versions) > 1,
        }
        if self.pipeline is not None:
            live = [w["version"] for w in workers if w.get("alive")]
            lsn = self._lsn_fields(live)
            payload.update(lsn)
            payload["ingest"] = {
                **self.pipeline.freshness(),
                # Fleet view: the pipeline's own lsn_served tracks the
                # store's LATEST; what matters here is the slowest worker.
                "lsn_served": lsn["lsn_served"],
                "lag": lsn["lsn_durable"] - lsn["lsn_served"],
                "wal_dir": str(self.pipeline.wal_dir),
                "log_bytes": self.pipeline.log.size_bytes,
                "log_max_bytes": self.pipeline.log.max_bytes,
            }
            payload["replication"] = self._replication_status()
        return 200, payload

    def aggregate_metrics(self) -> tuple[int, dict]:
        """Fan-in ``/metrics``: per-worker payloads plus summed counters.

        Counters over disjoint per-worker request streams sum exactly
        (the same contract as :meth:`LatencyStats.merge`); percentiles
        do not, so the aggregate carries counters only and the raw
        per-worker payloads sit alongside for anything distributional.
        """
        per_worker: dict[str, dict] = {}
        endpoint_totals: dict[str, dict] = {}
        error_totals: dict[str, int] = {}
        http_total = {key: 0 for key in _SUMMABLE}
        service_total = {key: 0 for key in _SUMMABLE}
        in_flight = 0
        for slot, handle in self._worker_views():
            if handle is None or not handle.alive():
                continue
            try:
                metrics = handle.client.metrics()
            except Exception:
                continue
            per_worker[str(slot.worker_id)] = metrics
            registry = metrics.get("registry")
            if isinstance(registry, dict):
                with self._lock:
                    slot.registry_last = registry
            server = metrics.get("server", {})
            in_flight += int(server.get("in_flight", 0))
            for code, count in (server.get("errors") or {}).items():
                error_totals[code] = error_totals.get(code, 0) + int(count)
            for key in _SUMMABLE:
                http_total[key] += (server.get("http") or {}).get(key, 0)
                service_total[key] += (metrics.get("service") or {}).get(key, 0)
            for path, snap in (server.get("endpoints") or {}).items():
                total = endpoint_totals.setdefault(
                    path, {key: 0 for key in _SUMMABLE}
                )
                for key in _SUMMABLE:
                    total[key] += snap.get(key, 0)
        payload = {
            "schema": protocol.PROTOCOL_SCHEMA,
            "supervisor": {
                "n_workers": len(self._slots),
                "n_reporting": len(per_worker),
                "restarts_total": self.restarts_total,
            },
            "aggregate": {
                "in_flight": in_flight,
                "http": http_total,
                "service": service_total,
                "endpoints": endpoint_totals,
                "errors": error_totals,
            },
            "workers": per_worker,
        }
        if self.pipeline is not None:
            ingest = {
                **self.pipeline.freshness(),
                "counters": dict(self.pipeline.counters),
                "log_bytes": self.pipeline.log.size_bytes,
                "log_max_bytes": self.pipeline.log.max_bytes,
            }
            if self.compactor is not None:
                ingest["compactor"] = {
                    "alive": self.compactor.is_alive(),
                    "interval_s": self.compactor.interval_s,
                    "keep_versions": self.compactor.keep_versions,
                    "last_publish": self.compactor.last_publish,
                    "last_error": self.compactor.last_error,
                }
            payload["ingest"] = ingest
            payload["replication"] = self._replication_status()
        payload["registry"] = self.registry_snapshot()
        return 200, payload


class _SupervisorAdminHandler(BaseHTTPRequestHandler):
    """The supervisor's own tiny admin surface (JSON by default)."""

    protocol_version = "HTTP/1.1"
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        supervisor: Supervisor = self.server.supervisor  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        path = split.path
        try:
            if path == protocol.REPLICATE:
                # Binary feed, not a JSON envelope — rejections still
                # surface below as structured ApiError JSON.
                from repro.serving.http.server import serve_replicate_feed

                if supervisor.pipeline is None:
                    raise ApiError(
                        409, "no_write_path",
                        "this supervisor has no WAL attached; there is "
                        "no log to replicate",
                    )
                feed = serve_replicate_feed(
                    supervisor.pipeline.log,
                    supervisor.hub,
                    split.query,
                    abort=supervisor._stop.is_set,
                )
                self._send(200, feed, protocol.REPLICATION_CONTENT_TYPE)
                return
            if path == protocol.HEALTHZ:
                status, payload = supervisor.aggregate_healthz()
            elif path == protocol.METRICS:
                if "text/plain" in (self.headers.get("Accept") or ""):
                    # Prometheus scrape: fan in the worker registries
                    # first so the fleet snapshot is as of this scrape.
                    supervisor.aggregate_metrics()
                    self._respond_text(200, supervisor.prometheus_text())
                    return
                status, payload = supervisor.aggregate_metrics()
            elif path == protocol.DESCRIBE:
                status, payload = supervisor.aggregate_describe()
            else:
                raise ApiError(
                    404, "unknown_endpoint", f"no supervisor endpoint at {path!r}"
                )
        except ApiError as error:
            status, payload = error.status, error.body()
        except Exception as error:
            status, payload = 500, ApiError(
                500, "internal", f"{type(error).__name__}: {error}"
            ).body()
        self._respond(status, payload)

    def do_POST(self) -> None:
        # The write path lives on the *supervisor's* admin port in
        # multi-worker mode: exactly one process may append to the log,
        # and the shared data socket cannot address a specific process.
        # JSON only — the binary frame wire stays a data-plane affair.
        from repro.serving.http.server import apply_upsert

        supervisor: Supervisor = self.server.supervisor  # type: ignore[attr-defined]
        path = urlsplit(self.path).path
        try:
            if path not in (protocol.UPSERT, protocol.PROMOTE):
                raise ApiError(
                    404, "unknown_endpoint", f"no supervisor endpoint at {path!r}"
                )
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise ApiError(400, "invalid_request", "request body is not JSON")
            if not isinstance(body, dict):
                raise ApiError(400, "invalid_request", "request body must be an object")
            if path == protocol.PROMOTE:
                status, payload = 200, supervisor.handle_promote(body)
            else:
                config = supervisor.config
                status, payload = apply_upsert(
                    supervisor.pipeline,
                    body,
                    hub=supervisor.hub,
                    ack_replicas=config.ack_replicas,
                    ack_timeout_s=config.ack_timeout_s,
                    epoch=(
                        supervisor.pipeline.log.epoch
                        if supervisor.pipeline is not None
                        else None
                    ),
                )
        except ApiError as error:
            status, payload = error.status, error.body()
        except Exception as error:
            status, payload = 500, ApiError(
                500, "internal", f"{type(error).__name__}: {error}"
            ).body()
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        body = protocol.dump_json(payload)
        self._send(status, body, protocol.JSON_CONTENT_TYPE)

    def _respond_text(self, status: int, text: str) -> None:
        self._send(status, text.encode("utf-8"), obs_metrics.TEXT_CONTENT_TYPE)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True


if __name__ == "__main__":
    raise SystemExit(worker_main())
