"""Closed-loop HTTP load generator for the embedding server.

Drives ``POST /v1/topk`` (or the batch endpoint) from ``concurrency``
worker threads, each with its own seeded node stream, and reports
client-observed QPS and latency percentiles.  Shared by the
``bench-http`` CLI subcommand and ``benchmarks/bench_http.py`` so the
committed numbers and ad-hoc runs measure the same loop.

Closed-loop means each worker issues its next request when the previous
one returns — the standard serving-benchmark shape: QPS is the
throughput the server sustained at this concurrency, and percentiles
are per-request wall times including the wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serving.http.client import ServingClient
from repro.serving.http.protocol import ApiError


@dataclass
class LoadReport:
    """What one load run produced (all latencies client-observed).

    ``p50_ms``/``p99_ms`` are per-*request* wall times (a batch request
    counts once, however many queries it carried); the ``per_query_*``
    fields divide each request's wall time by its batch size first, so
    batch and single-query rows are directly comparable — a 64-query
    batch at 1464 ms is 22.9 ms/query, not three orders of magnitude
    slower than a 6 ms single.
    """

    requests: int
    queries: int  # requests × batch size
    errors: int
    concurrency: int
    seconds: float
    qps: float
    query_qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    per_query_p50_ms: float = 0.0
    per_query_p99_ms: float = 0.0
    per_query_mean_ms: float = 0.0
    wire: str = "auto"
    error_messages: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "queries": self.queries,
            "errors": self.errors,
            "concurrency": self.concurrency,
            "seconds": self.seconds,
            "qps": self.qps,
            "query_qps": self.query_qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "per_query_p50_ms": self.per_query_p50_ms,
            "per_query_p99_ms": self.per_query_p99_ms,
            "per_query_mean_ms": self.per_query_mean_ms,
            "wire": self.wire,
            "error_messages": self.error_messages[:10],
        }


def cli_subprocess_env() -> dict:
    """Environment for running ``python -m repro.cli`` as a subprocess.

    Prepends this package's ``src`` to ``PYTHONPATH`` and unbuffers
    stdout (the boot line must arrive promptly).  One builder shared by
    :func:`spawn_cli_server` and the CI smoke's other CLI invocations.
    """
    import os
    from pathlib import Path

    src = Path(__file__).resolve().parents[3]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def spawn_cli_server(store_root, *extra_args: str, url_timeout_s: float = 30.0):
    """Start ``repro serve --http 0`` as a subprocess; return ``(proc, url)``.

    The one boot-and-discover implementation shared by the CI server
    smoke and the CLI tests: builds a ``PYTHONPATH`` pointing at this
    package's ``src``, spawns the CLI with an ephemeral port, and parses
    the bound URL from the startup line — so a change to that line's
    format breaks one regex, not several silently-diverging copies.
    The caller owns the process (terminate/kill it when done); its
    stdout stays attached for reading later lines.
    """
    import re
    import subprocess
    import sys

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", str(store_root), "--http", "0", *extra_args,
        ],
        env=cli_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    timer = threading.Timer(url_timeout_s, process.kill)
    timer.start()
    try:
        line = process.stdout.readline()
    finally:
        timer.cancel()
    match = re.search(r"on (http://\S+:\d+)", line)
    if not match:
        process.kill()
        process.wait(timeout=30)
        raise RuntimeError(f"could not parse server URL from: {line!r}")
    return process, match.group(1)


def assert_bit_identical(client, service, nodes, k: int = 10) -> int:
    """Exact top-k over HTTP must match the in-process answer bitwise.

    The wire contract both CI checks assert (one implementation, so they
    cannot drift): ids equal, score *bytes* equal — JSON floats
    round-trip exactly — and the answering version identical.  Returns
    the number of nodes checked.
    """
    checked = 0
    for node in nodes:
        remote = client.top_k(int(node), k)
        local = service.top_k(int(node), k)
        assert remote.version == local.version, (remote.version, local.version)
        assert np.array_equal(remote.ids, local.ids), (
            f"ids diverge at node {node}"
        )
        assert remote.scores.tobytes() == local.scores.tobytes(), (
            f"scores not bit-identical at node {node}"
        )
        checked += 1
    return checked


class DrainBurst:
    """A burst of concurrent batch requests with classified outcomes.

    The shared half of every drain-under-fire check (``bench_http.py``
    closes an in-process server mid-burst; ``server_smoke.py`` SIGTERMs
    a subprocess): fire ``n_requests`` concurrent ``/v1/topk:batch``
    calls with no retries, record one outcome string per request —
    ``"ok:<version>"`` (completed), ``"status:<code>:<api-code>"`` (a
    structured refusal), or ``"conn:<ExcName>"`` (connection-level
    failure) — and let the caller assert the drain contract with
    :meth:`server_errors`.  Keeping the taxonomy in one place means the
    two CI checks cannot drift into asserting different contracts.
    """

    def __init__(
        self,
        urls: list[str] | str,
        *,
        n_nodes: int,
        k: int = 10,
        n_requests: int = 8,
        batch: int = 256,
        timeout_s: float = 30.0,
    ) -> None:
        self.outcomes: list[str] = []
        self._lock = threading.Lock()
        self.started = threading.Event()  # set once the first client fires
        self.n_requests = n_requests

        def fire(seed: int) -> None:
            client = ServingClient(urls, retries=0, timeout_s=timeout_s)
            nodes = np.random.default_rng(seed).integers(n_nodes, size=batch)
            self.started.set()
            try:
                result = client.batch_top_k(nodes, k)
                outcome = f"ok:{result.version}"
            except ApiError as error:
                outcome = f"status:{error.status}:{error.code}"
            except OSError as error:
                outcome = f"conn:{type(error).__name__}"
            finally:
                client.close()  # don't pin a draining server's threads
            with self._lock:
                self.outcomes.append(outcome)

        self._threads = [
            threading.Thread(target=fire, args=(seed,), daemon=True)
            for seed in range(n_requests)
        ]
        for thread in self._threads:
            thread.start()

    def any_alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def join(self, timeout_s: float = 30.0) -> list[str]:
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        return self.outcomes

    @property
    def completed(self) -> int:
        """Requests that finished with a real 200 answer."""
        with self._lock:
            return sum(1 for o in self.outcomes if o.startswith("ok:"))

    def server_errors(self) -> list[str]:
        """Outcomes that violate the drain contract: any 5xx except 503."""
        with self._lock:
            return [
                o
                for o in self.outcomes
                if o.startswith("status:5") and not o.startswith("status:503")
            ]


def run_load(
    urls: list[str] | str,
    *,
    n_nodes: int,
    requests: int = 512,
    concurrency: int = 4,
    k: int = 10,
    nprobe: int | None = None,
    batch: int = 0,
    timeout_s: float = 30.0,
    retries: int = 2,
    seed: int = 0,
    wire: str = "auto",
) -> LoadReport:
    """Fire ``requests`` top-k requests and measure the client view.

    ``batch > 0`` switches to ``/v1/topk:batch`` with ``batch`` nodes per
    request (fanned across replicas by the client).  Node ids are drawn
    uniformly from ``[0, n_nodes)`` with one seeded stream per worker, so
    a run is reproducible regardless of thread interleaving.  ``wire``
    selects the client wire format (``auto``/``json``/``binary``) so the
    bench can measure the formats against each other.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    client = ServingClient(urls, timeout_s=timeout_s, retries=retries, wire=wire)
    per_worker = [
        requests // concurrency + (1 if w < requests % concurrency else 0)
        for w in range(concurrency)
    ]
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    failures: list[list[str]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(index: int) -> None:
        rng = np.random.default_rng(seed + index)
        barrier.wait()
        for _ in range(per_worker[index]):
            tick = time.perf_counter()
            try:
                if batch > 0:
                    nodes = rng.integers(n_nodes, size=batch)
                    client.batch_top_k(nodes, k, nprobe=nprobe)
                else:
                    node = int(rng.integers(n_nodes))
                    client.top_k(node, k, nprobe=nprobe)
            except Exception as error:
                failures[index].append(f"{type(error).__name__}: {error}")
            else:
                latencies[index].append(time.perf_counter() - tick)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # all workers armed: the clock measures pure load time
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    # Release the pooled keep-alive sockets: a bench makes many runs
    # against one long-lived server, and every leaked idle connection
    # pins a handler thread there until its read times out.
    client.close()

    flat = np.array([l for per in latencies for l in per], dtype=np.float64)
    errors = sum(len(per) for per in failures)
    completed = int(flat.size)
    queries = completed * (batch if batch > 0 else 1)
    # Per-query view: each request's wall time amortized over its batch
    # size, so batch rows compare directly with single-query rows.
    per_query = flat / max(1, batch)
    return LoadReport(
        requests=completed,
        queries=queries,
        errors=errors,
        concurrency=concurrency,
        seconds=seconds,
        qps=completed / seconds if seconds > 0 else 0.0,
        query_qps=queries / seconds if seconds > 0 else 0.0,
        p50_ms=float(np.percentile(flat, 50) * 1e3) if completed else 0.0,
        p99_ms=float(np.percentile(flat, 99) * 1e3) if completed else 0.0,
        mean_ms=float(flat.mean() * 1e3) if completed else 0.0,
        max_ms=float(flat.max() * 1e3) if completed else 0.0,
        per_query_p50_ms=(
            float(np.percentile(per_query, 50) * 1e3) if completed else 0.0
        ),
        per_query_p99_ms=(
            float(np.percentile(per_query, 99) * 1e3) if completed else 0.0
        ),
        per_query_mean_ms=(
            float(per_query.mean() * 1e3) if completed else 0.0
        ),
        wire=wire,
        error_messages=[m for per in failures for m in per],
    )
