"""Worker process entry point: ``python -m repro.serving.http._worker``.

A separate module (rather than ``-m repro.serving.http.supervisor``) so
runpy never re-executes a module the package ``__init__`` already
imported.  Launched only by the :class:`~repro.serving.http.Supervisor`
with a :data:`~repro.serving.http.supervisor.WORKER_SPEC_ENV` spec.
"""

from repro.serving.http.supervisor import worker_main

if __name__ == "__main__":
    raise SystemExit(worker_main())
