"""Deterministic, seeded fault injection for the serving stack.

Production-scale serving treats component failure as the common case,
so the failure paths — worker crashes, stalled handlers, publishers
killed mid-publish, corrupted bytes on the wire — need to be *exercised*
by tests and benchmarks, not just reasoned about.  This module is the
one switchboard for injecting those failures on purpose:

- a :class:`FaultPlan` names what to break and when (after how many
  requests, at which publish step, every how many frames), parsed from
  the ``REPRO_FAULTS`` environment variable so a subprocess worker can
  be armed without new CLI surface;
- a :class:`FaultInjector` executes the plan at the instrumented
  injection points (:meth:`on_request`, :meth:`on_publish_step`,
  :meth:`corrupt_frame`), deterministically — the same plan and the
  same request sequence produce the same failure, which is what lets
  the chaos suite assert exact availability contracts instead of
  flaky probabilistic ones.

Everything is inert by default: with no plan armed the injection points
are ``None`` checks on the hot path and the serving stack behaves
exactly as before.  The env format is JSON::

    REPRO_FAULTS='{"kill_after_requests": 100, "worker": 0}'

Fields (all optional):

``kill_after_requests``
    Hard-kill the process (``os._exit``, exit code
    :data:`INJECTED_KILL_EXIT`) immediately after serving this many
    data-endpoint requests — a worker crash under load.
``stall_ms`` / ``stall_every``
    Sleep ``stall_ms`` inside every ``stall_every``-th data request — a
    hung/slow handler (``stall_every`` defaults to 1 when ``stall_ms``
    is set).
``torn_publish_step``
    Kill the process mid-:meth:`~repro.serving.store.EmbeddingStore.publish`
    at a named step: ``"arrays"`` (some arrays staged, no manifest),
    ``"manifest"`` (staging dir complete, not yet renamed) or
    ``"latest"`` (version renamed into place, ``LATEST`` still stale).
``corrupt_frame_every``
    XOR one seeded byte in every N-th binary frame response — wire
    corruption the client's frame decoder must catch.
``torn_wal_tail``
    On the N-th WAL append, write only part of the record batch (flushed
    to the OS, never fsync'd) and die — the crash-mid-append that leaves
    a torn tail for recovery to truncate.
``fsync_fail_every``
    Fail every N-th WAL fsync with ``OSError`` — the append is rolled
    back and never acked (a full disk / dying device on the write path).
``crash_after_append``
    Die immediately after the N-th WAL append becomes durable, before
    the ack reaches the client — the window where replay must still
    recover the record.
``replicate_stall_ms``
    Sleep this long inside every replication-feed response before any
    frames are written — a slow or partitioned primary the standby's
    lag metrics and retry loop must absorb.
``replicate_truncate_every``
    Cut every N-th replication-feed response off mid-frame — a torn
    stream; the standby must discard the partial frame and re-request
    from its own durable LSN.
``replicate_stale_epoch``
    Advertise ``max(1, epoch - N)`` on the replication feed — a
    stale-epoch writer (a deposed primary still serving its feed); the
    standby must fence it out rather than append.
``worker``
    Scope the plan to one supervisor worker id (``None`` = every
    process that reads the env).
``seed``
    Seeds the corruption byte choice; everything else is counter-based
    and needs no randomness.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

FAULTS_ENV = "REPRO_FAULTS"

# The exit code an injected kill dies with — distinct from anything the
# CLI returns on purpose, so a supervisor test can tell "the fault fired"
# from "the worker crashed for an unplanned reason".
INJECTED_KILL_EXIT = 86

_PUBLISH_STEPS = ("arrays", "manifest", "latest")


class InjectedFault(RuntimeError):
    """Raised instead of ``os._exit`` when an injector runs in soft mode.

    In-process tests cannot afford a real ``os._exit`` (it would take
    pytest down with the "worker"), so ``FaultInjector(hard=False)``
    raises this instead — same injection point, survivable blast radius.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of which faults to inject, and when."""

    kill_after_requests: int | None = None
    stall_ms: float = 0.0
    stall_every: int = 0
    torn_publish_step: str | None = None
    corrupt_frame_every: int = 0
    torn_wal_tail: int = 0
    fsync_fail_every: int = 0
    crash_after_append: int = 0
    replicate_stall_ms: float = 0.0
    replicate_truncate_every: int = 0
    replicate_stale_epoch: int = 0
    worker: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kill_after_requests is not None and self.kill_after_requests < 1:
            raise ValueError(
                f"kill_after_requests must be >= 1, got {self.kill_after_requests}"
            )
        if self.stall_ms < 0:
            raise ValueError(f"stall_ms must be >= 0, got {self.stall_ms}")
        if self.torn_publish_step is not None and (
            self.torn_publish_step not in _PUBLISH_STEPS
        ):
            raise ValueError(
                f"torn_publish_step must be one of {_PUBLISH_STEPS}, "
                f"got {self.torn_publish_step!r}"
            )
        if self.stall_ms > 0 and self.stall_every < 1:
            # "stall" with no cadence means every request.
            object.__setattr__(self, "stall_every", 1)
        for name in (
            "torn_wal_tail",
            "fsync_fail_every",
            "crash_after_append",
            "replicate_stall_ms",
            "replicate_truncate_every",
            "replicate_stale_epoch",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(f"unknown fault plan fields: {unknown}")
        return cls(**spec)

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "FaultPlan | None":
        """The plan armed via ``REPRO_FAULTS``, or ``None`` when unset.

        A malformed spec raises rather than silently disabling the
        faults: a chaos test that *thinks* it armed a kill but didn't
        would pass vacuously.
        """
        raw = (environ if environ is not None else os.environ).get(FAULTS_ENV)
        if not raw:
            return None
        try:
            spec = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"{FAULTS_ENV} is not valid JSON: {error}")
        if not isinstance(spec, dict):
            raise ValueError(f"{FAULTS_ENV} must be a JSON object, got {raw!r}")
        return cls.from_spec(spec)

    def to_env(self) -> str:
        """The ``REPRO_FAULTS`` value that round-trips to this plan."""
        defaults = {
            f.name: f.default for f in self.__dataclass_fields__.values()
        }
        # Compare against declared defaults, not falsiness: ``worker=0``
        # and ``seed=0``-vs-unset are different plans.
        spec = {
            key: value
            for key, value in asdict(self).items()
            if value != defaults[key]
        }
        return json.dumps(spec, separators=(",", ":"))

    def applies_to_worker(self, worker_id: int | None) -> bool:
        """Whether a process with this worker id should arm the plan."""
        return self.worker is None or self.worker == worker_id


class FaultInjector:
    """Executes a :class:`FaultPlan` at the instrumented points.

    Thread-safe: the request counter is shared by every handler thread
    of a server, so "kill after N requests" means the N-th request
    *served by the process*, whatever thread carries it.

    ``hard=True`` (the default, what subprocess workers use) makes kill
    points call ``os._exit`` — no cleanup, no drain, exactly like a
    SIGKILL'd process.  ``hard=False`` raises :class:`InjectedFault`
    instead, for in-process tests.
    """

    def __init__(self, plan: FaultPlan, *, hard: bool = True) -> None:
        self.plan = plan
        self.hard = hard
        self._lock = threading.Lock()
        self._requests = 0
        self._frames = 0
        self._corrupted = 0
        self._wal_appends = 0
        self._wal_fsyncs = 0
        self._wal_acked = 0
        self._feed_responses = 0
        self._rng = np.random.default_rng(plan.seed)

    @classmethod
    def from_env(
        cls,
        *,
        worker_id: int | None = None,
        environ: dict | None = None,
        hard: bool = True,
    ) -> "FaultInjector | None":
        """An armed injector for this process, or ``None`` (the hot default)."""
        plan = FaultPlan.from_env(environ)
        if plan is None or not plan.applies_to_worker(worker_id):
            return None
        return cls(plan, hard=hard)

    # -- injection points ----------------------------------------------
    def _die(self, reason: str) -> None:
        if self.hard:
            # Flush nothing, drain nothing: the point is to be
            # indistinguishable from a crash.
            os._exit(INJECTED_KILL_EXIT)
        raise InjectedFault(reason)

    def on_request(self) -> None:
        """Called by the server once per data-endpoint request.

        Applies the stall (inside the request, before the backend runs,
        so the delay is client-visible) and the kill-after-N point
        (after the counter passes the threshold — the N-th request dies
        mid-flight, exactly the torn-connection case failover must
        absorb).
        """
        plan = self.plan
        with self._lock:
            self._requests += 1
            count = self._requests
        if plan.stall_every and count % plan.stall_every == 0:
            time.sleep(plan.stall_ms / 1e3)
        if plan.kill_after_requests is not None and count >= plan.kill_after_requests:
            self._die(f"injected kill after {count} requests")

    def on_publish_step(self, step: str) -> None:
        """Called by the store publish path after completing ``step``."""
        if self.plan.torn_publish_step == step:
            self._die(f"injected crash at publish step {step!r}")

    def die(self, reason: str) -> None:
        """Die now — for injection points that must do work first.

        The WAL torn-tail point writes the partial record itself (only
        it knows the bytes) and then calls this.
        """
        self._die(reason)

    def wal_torn_tail(self) -> bool:
        """Whether this WAL append should be torn (caller tears, then dies)."""
        if not self.plan.torn_wal_tail:
            return False
        with self._lock:
            self._wal_appends += 1
            return self._wal_appends == self.plan.torn_wal_tail

    def wal_fsync(self) -> None:
        """Called before each WAL fsync; raises ``OSError`` when armed."""
        if not self.plan.fsync_fail_every:
            return
        with self._lock:
            self._wal_fsyncs += 1
            count = self._wal_fsyncs
        if count % self.plan.fsync_fail_every == 0:
            raise OSError(f"injected WAL fsync failure (fsync #{count})")

    def wal_crash_after_append(self) -> None:
        """Called after a WAL batch is durable, before the caller is acked."""
        if not self.plan.crash_after_append:
            return
        with self._lock:
            self._wal_acked += 1
            count = self._wal_acked
        if count == self.plan.crash_after_append:
            self._die(f"injected crash after durable append #{count}")

    def replicate_stall(self) -> None:
        """Called at the top of every replication-feed response."""
        if self.plan.replicate_stall_ms:
            time.sleep(self.plan.replicate_stall_ms / 1e3)

    def replicate_truncate(self, body: bytes) -> bytes:
        """Maybe cut a replication-feed response off mid-frame."""
        every = self.plan.replicate_truncate_every
        if not every:
            return body
        with self._lock:
            self._feed_responses += 1
            hit = self._feed_responses % every == 0
        if not hit or len(body) < 2:
            return body
        return body[: len(body) // 2]

    def replicate_epoch(self, epoch: int) -> int:
        """The epoch the replication feed advertises (maybe stale)."""
        if not self.plan.replicate_stale_epoch:
            return epoch
        return max(1, epoch - int(self.plan.replicate_stale_epoch))

    def corrupt_frame(self, frame: bytes) -> bytes:
        """Maybe XOR one seeded byte of an outgoing binary frame."""
        every = self.plan.corrupt_frame_every
        if not every:
            return frame
        with self._lock:
            self._frames += 1
            hit = self._frames % every == 0
            if not hit or not frame:
                return frame
            position = int(self._rng.integers(len(frame)))
            self._corrupted += 1
        corrupted = bytearray(frame)
        corrupted[position] ^= 0xFF
        return bytes(corrupted)

    def counters(self) -> dict:
        """Observability for tests: what the injector has done so far."""
        with self._lock:
            return {
                "requests": self._requests,
                "frames": self._frames,
                "corrupted_frames": self._corrupted,
                "wal_appends": self._wal_appends,
                "wal_fsyncs": self._wal_fsyncs,
                "wal_acked": self._wal_acked,
                "feed_responses": self._feed_responses,
            }
