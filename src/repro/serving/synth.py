"""Synthetic datasets for exercising the serving layer.

Shared by ``benchmarks/bench_serving.py`` and ``tests/serving/`` so the
distribution the recall properties are *tested* on is the same one the
acceptance numbers are *benchmarked* on — two copies would drift.
"""

from __future__ import annotations

import numpy as np

from repro.search.knn import normalize_rows


def clustered_unit_vectors(
    n: int, dim: int, n_clusters: int, *, noise: float = 0.25, seed: int = 0
) -> np.ndarray:
    """Seeded random-projection dataset: cluster centers + Gaussian noise.

    The shape ANN indexes are built for — embeddings concentrate around
    community structure — normalized to unit rows like stored features.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_clusters, dim))
    assign = rng.integers(n_clusters, size=n)
    points = centers[assign] + noise * rng.standard_normal((n, dim))
    return normalize_rows(points)


def synthetic_embedding(n: int, dim: int, *, seed: int = 0):
    """A seeded random :class:`PANEEmbedding` shaped like a trained output.

    What the serving benches and the CI server smokes publish when they
    need a store without paying for a real ``PANE.fit`` — one builder so
    the HTTP bench, the process-boundary smoke, and the serving bench
    all exercise identically shaped stores.
    """
    from repro.core.config import PANEConfig
    from repro.core.pane import PANEEmbedding

    half = max(2, dim // 2)
    rng = np.random.default_rng(seed)
    return PANEEmbedding(
        x_forward=rng.standard_normal((n, half)),
        x_backward=rng.standard_normal((n, half)),
        y=rng.standard_normal((max(4, half), half)),
        config=PANEConfig(k=2 * half),
    )
