"""Store version retention: delete superseded version directories.

The compactor publishes a new version per fold cycle, so a long-running
write workload grows the version count without bound.  ``collect_versions``
keeps the newest ``keep`` versions plus anything pinned — the ``LATEST``
target and any caller-protected versions (e.g. the one a
``QueryService`` is actively serving) are never deleted.

Exposed to operators as ``repro gc --store ROOT --keep N``.
"""

from __future__ import annotations

import shutil


def collect_versions(store, *, keep: int, protect=(), dry_run: bool = False) -> dict:
    """Delete superseded version dirs, newest ``keep`` always retained.

    Parameters
    ----------
    store:
        An open :class:`~repro.serving.store.EmbeddingStore`.
    keep:
        Number of newest versions to retain (must be >= 1).
    protect:
        Extra version names that must survive regardless of age.
    dry_run:
        Report what would be deleted without touching the filesystem.

    Returns ``{"deleted": [...], "kept": [...], "reclaimed_bytes": int}``.
    Deletion is per-version-directory and safe against concurrent
    readers on POSIX: open mmaps keep their data until unmapped.
    """
    if keep < 1:
        raise ValueError("keep must be at least 1")
    versions = store.versions()
    latest = store.latest()
    protected = set(protect)
    if latest is not None:
        protected.add(latest)
    survivors = set(versions[-keep:]) | (protected & set(versions))
    deleted: list[str] = []
    reclaimed = 0
    for version in versions:
        if version in survivors:
            continue
        target = store.root / "versions" / version
        if not target.is_dir():
            # Sharded logical versions are JSON manifests pinning exact
            # per-shard segment versions; deleting them safely needs
            # cross-shard refcounting this sweep does not do.
            raise ValueError(
                f"gc supports plain stores only: {version!r} has no "
                "version directory under the store root"
            )
        size = sum(p.stat().st_size for p in target.rglob("*") if p.is_file())
        if not dry_run:
            shutil.rmtree(target)
        deleted.append(version)
        reclaimed += size
    return {
        "deleted": deleted,
        "kept": [v for v in versions if v not in deleted],
        "reclaimed_bytes": reclaimed,
        "dry_run": dry_run,
    }
