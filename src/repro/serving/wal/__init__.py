"""Log-structured ingestion: durable WAL, replay, and background compaction.

The write path for the serving stack (see ``docs/SERVING.md``, "Write
path"):

- :class:`DeltaLog` — checksummed, fsync'd, LSN-stamped segment files of
  graph upsert events with torn-tail recovery and replay into a
  :class:`~repro.dynamic.incremental.GraphDelta` (``log.py``);
- :class:`IngestPipeline` — durable appends + warm
  :class:`~repro.dynamic.incremental.IncrementalPANE` + publication of
  compacted store versions stamped with ``applied_lsn``
  (``compactor.py``);
- :class:`Compactor` — the background fold → publish → retain →
  checkpoint loop (``compactor.py``).
"""

from repro.serving.wal.compactor import (
    BASE_GRAPH_FILE,
    CHECKPOINT_FILE,
    CHECKPOINT_SCHEMA,
    Compactor,
    IngestPipeline,
    RecoveryError,
)
from repro.serving.wal.log import (
    DeltaLog,
    LogCorruption,
    LogFull,
    LogRecord,
    LogWriteError,
    SegmentInfo,
    events_from_delta,
    fold_records,
    scan_segment,
)

__all__ = [
    "BASE_GRAPH_FILE",
    "CHECKPOINT_FILE",
    "CHECKPOINT_SCHEMA",
    "Compactor",
    "DeltaLog",
    "IngestPipeline",
    "LogCorruption",
    "LogFull",
    "LogRecord",
    "LogWriteError",
    "RecoveryError",
    "SegmentInfo",
    "events_from_delta",
    "fold_records",
    "scan_segment",
]
