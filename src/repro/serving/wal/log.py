"""Durable append-only delta log (write-ahead log) for graph upserts.

The log is the single durable copy of every accepted write, in the
LogBase mold: fixed-format, checksummed records appended to segment
files, fsync'd before the caller is acked, and replayed into a
:class:`~repro.dynamic.incremental.GraphDelta` on recovery.

Layout of a segment file ``{first_lsn:016d}.wal``::

    segment header:  magic "RWL1" | <I format version | <Q first_lsn
                     | <Q epoch                     (format version 2+)
    record:          <Q lsn | <B kind | <I payload_len | payload | <I crc32

The CRC covers the record header and payload.  LSNs are strictly
consecutive within and across segments, starting at 1; a gap is
corruption.  Four event kinds mirror the four ``GraphDelta`` fields:
``add_edge``/``remove_edge`` carry ``<qq`` (source, target) and
``add_assoc``/``remove_assoc`` carry ``<qqd`` / ``<qq`` for
(node, attribute[, weight]).

The *epoch* is the replication fencing term: a monotonically
increasing integer stamped into every segment header (format v1
segments, written before replication existed, implicitly carry epoch
1).  Promotion of a standby bumps the epoch (:meth:`DeltaLog.bump_epoch`
seals the active segment and opens a fresh one under the new epoch), so
a log can never contain an epoch that decreases with the LSN order —
that state is ``epoch_regression`` corruption.  The per-epoch start
LSNs are mirrored into an ``EPOCHS`` json file so the fencing boundary
survives segment pruning.

A torn tail — a partially written final record, the normal residue of a
crash mid-append — is tolerated: the open-time scan truncates the last
segment at the last valid record boundary.  Corruption anywhere else is
refused here and repaired by ``repro fsck --wal``.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, NamedTuple

import numpy as np

from repro.dynamic.incremental import GraphDelta
from repro.utils.fs import atomic_write, chmod_default_dir, chmod_default_file

SEGMENT_SUFFIX = ".wal"
FORMAT_VERSION = 2
EPOCHS_FILE = "EPOCHS"
EPOCHS_SCHEMA = "repro.serving.wal.epochs/v1"

_SEG_MAGIC = b"RWL1"
_SEG_HEADER_V1 = struct.Struct("<4sIQ")  # magic, format version, first LSN
_SEG_HEADER = struct.Struct("<4sIQQ")  # magic, version, first LSN, epoch
_SEG_PREFIX = struct.Struct("<4sI")  # magic, format version (both formats)
_REC_HEADER = struct.Struct("<QBI")  # lsn, kind, payload length
_REC_CRC = struct.Struct("<I")

KIND_ADD_EDGE = 1
KIND_REMOVE_EDGE = 2
KIND_ADD_ASSOC = 3
KIND_REMOVE_ASSOC = 4

_PAYLOAD_PAIR = struct.Struct("<qq")
_PAYLOAD_TRIPLE = struct.Struct("<qqd")
_PAYLOAD_SIZE = {
    KIND_ADD_EDGE: _PAYLOAD_PAIR.size,
    KIND_REMOVE_EDGE: _PAYLOAD_PAIR.size,
    KIND_ADD_ASSOC: _PAYLOAD_TRIPLE.size,
    KIND_REMOVE_ASSOC: _PAYLOAD_PAIR.size,
}
KIND_NAMES = {
    KIND_ADD_EDGE: "add_edge",
    KIND_REMOVE_EDGE: "remove_edge",
    KIND_ADD_ASSOC: "add_assoc",
    KIND_REMOVE_ASSOC: "remove_assoc",
}


class LogFull(RuntimeError):
    """The log hit its size ceiling; the caller must back off (HTTP 503)."""

    def __init__(self, size_bytes: int, max_bytes: int) -> None:
        super().__init__(
            f"delta log is full ({size_bytes} of {max_bytes} bytes); "
            "compaction must catch up before more writes are accepted"
        )
        self.size_bytes = size_bytes
        self.max_bytes = max_bytes


class LogCorruption(RuntimeError):
    """Corruption beyond a torn tail; run ``repro fsck --wal`` to repair."""


class LogWriteError(RuntimeError):
    """An append failed before the record became durable (never acked)."""


class EpochFenced(RuntimeError):
    """A writer with a stale epoch tried to append (split-brain fencing).

    Raised when replicated records arrive stamped with an epoch older
    than the log's own — the sender is a primary that was superseded by
    a promotion and must not be allowed to extend this log.
    """

    def __init__(self, local_epoch: int, writer_epoch: int) -> None:
        super().__init__(
            f"append fenced: writer epoch {writer_epoch} is older than "
            f"the log's epoch {local_epoch} (a promotion superseded the writer)"
        )
        self.local_epoch = local_epoch
        self.writer_epoch = writer_epoch


class LogRecord(NamedTuple):
    lsn: int
    kind: int
    a: int
    b: int
    weight: float

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind={self.kind}")


@dataclass(frozen=True)
class SegmentInfo:
    """Scan result for one segment file."""

    path: Path
    first_lsn: int
    n_records: int
    size_bytes: int
    valid_bytes: int
    error: str | None = None
    epoch: int = 1
    header_bytes: int = _SEG_HEADER_V1.size

    @property
    def last_lsn(self) -> int:
        """LSN of the last valid record (``first_lsn - 1`` when empty)."""
        return self.first_lsn + self.n_records - 1

    def record_offset(self, lsn: int) -> int:
        """Byte offset of record ``lsn``'s start within this segment.

        Only valid for ``first_lsn <= lsn <= last_lsn + 1`` (the latter
        being the append position).  Exploits the fixed record framing:
        every record of a given kind has one size, but kinds vary, so
        this rescans the headers rather than multiplying.
        """
        data = self.path.read_bytes()
        offset = self.header_bytes
        for _ in range(lsn - self.first_lsn):
            _, kind, payload_len = _REC_HEADER.unpack_from(data, offset)
            offset += _REC_HEADER.size + payload_len + _REC_CRC.size
        return offset

    def as_dict(self) -> dict:
        return {
            "segment": self.path.name,
            "first_lsn": self.first_lsn,
            "last_lsn": self.last_lsn,
            "records": self.n_records,
            "bytes": self.size_bytes,
            "valid_bytes": self.valid_bytes,
            "error": self.error,
            "epoch": self.epoch,
        }


def encode_record(lsn: int, kind: int, a: int, b: int, weight: float = 0.0) -> bytes:
    if kind in (KIND_ADD_EDGE, KIND_REMOVE_EDGE, KIND_REMOVE_ASSOC):
        payload = _PAYLOAD_PAIR.pack(a, b)
    elif kind == KIND_ADD_ASSOC:
        payload = _PAYLOAD_TRIPLE.pack(a, b, weight)
    else:
        raise ValueError(f"unknown record kind {kind}")
    header = _REC_HEADER.pack(lsn, kind, len(payload))
    return header + payload + _REC_CRC.pack(zlib.crc32(header + payload))


def _decode_payload(kind: int, payload: bytes) -> tuple[int, int, float]:
    if kind == KIND_ADD_ASSOC:
        a, b, weight = _PAYLOAD_TRIPLE.unpack(payload)
        return a, b, weight
    a, b = _PAYLOAD_PAIR.unpack(payload)
    return a, b, 0.0


def segment_name(first_lsn: int) -> str:
    return f"{first_lsn:016d}{SEGMENT_SUFFIX}"


def parse_records(data: bytes) -> list[LogRecord]:
    """Strictly decode a buffer of concatenated encoded records.

    The replication wire moves raw record bytes between logs; unlike
    :func:`scan_segment` (which tolerates a torn tail) any malformation
    here — truncation, a CRC mismatch, an unknown kind — raises
    :class:`LogCorruption`, because a replication frame was already
    CRC-framed in transit and must decode completely or not at all.
    """
    records: list[LogRecord] = []
    offset = 0
    size = len(data)
    while offset < size:
        if size - offset < _REC_HEADER.size:
            raise LogCorruption("record buffer truncated mid-header")
        lsn, kind, payload_len = _REC_HEADER.unpack_from(data, offset)
        if kind not in _PAYLOAD_SIZE or payload_len != _PAYLOAD_SIZE[kind]:
            raise LogCorruption(f"bad record header (kind={kind}, len={payload_len})")
        end = offset + _REC_HEADER.size + payload_len + _REC_CRC.size
        if end > size:
            raise LogCorruption("record buffer truncated mid-body")
        body = data[offset : offset + _REC_HEADER.size + payload_len]
        (crc,) = _REC_CRC.unpack_from(data, end - _REC_CRC.size)
        if crc != zlib.crc32(body):
            raise LogCorruption(f"record checksum mismatch at LSN {lsn}")
        a, b, weight = _decode_payload(kind, data[offset + _REC_HEADER.size : end - _REC_CRC.size])
        records.append(LogRecord(lsn, kind, a, b, weight))
        offset = end
    return records


def scan_segment(path: Path) -> tuple[list[LogRecord], SegmentInfo]:
    """Parse one segment, stopping at the first invalid byte.

    Never raises on corruption: the returned :class:`SegmentInfo` carries
    ``error`` and ``valid_bytes`` (the truncation point that would repair
    the segment).  ``valid_bytes == 0`` means even the header is bad and
    the segment can only be quarantined.
    """
    path = Path(path)
    data = path.read_bytes()
    size = len(data)
    epoch = 1
    header_size = _SEG_HEADER_V1.size

    def info(n_records: int, first_lsn: int, valid: int, error: str | None):
        return SegmentInfo(
            path=path,
            first_lsn=first_lsn,
            n_records=n_records,
            size_bytes=size,
            valid_bytes=valid,
            error=error,
            epoch=epoch,
            header_bytes=header_size,
        )

    if size < _SEG_PREFIX.size:
        return [], info(0, 0, 0, "bad_header: file shorter than segment header")
    magic, version = _SEG_PREFIX.unpack_from(data, 0)
    if magic != _SEG_MAGIC:
        return [], info(0, 0, 0, f"bad_header: bad magic {magic!r}")
    if version == 1:
        # Pre-replication segments: no epoch field, implicitly epoch 1.
        if size < _SEG_HEADER_V1.size:
            return [], info(0, 0, 0, "bad_header: file shorter than segment header")
        _, _, first_lsn = _SEG_HEADER_V1.unpack_from(data, 0)
    elif version == FORMAT_VERSION:
        if size < _SEG_HEADER.size:
            return [], info(0, 0, 0, "bad_header: file shorter than segment header")
        _, _, first_lsn, epoch = _SEG_HEADER.unpack_from(data, 0)
        header_size = _SEG_HEADER.size
        if epoch < 1:
            return [], info(0, first_lsn, 0, f"bad_header: bad epoch {epoch}")
    else:
        return [], info(0, 0, 0, f"bad_header: unsupported format version {version}")
    try:
        named = int(path.name[: -len(SEGMENT_SUFFIX)])
    except ValueError:
        named = -1
    if named != first_lsn:
        return [], info(0, first_lsn, 0, f"bad_header: file named for LSN {named} but header says {first_lsn}")

    records: list[LogRecord] = []
    offset = header_size
    while offset < size:
        valid = offset
        if size - offset < _REC_HEADER.size:
            return records, info(len(records), first_lsn, valid, "torn_tail: truncated record header")
        lsn, kind, payload_len = _REC_HEADER.unpack_from(data, offset)
        expected_lsn = first_lsn + len(records)
        if lsn != expected_lsn:
            return records, info(
                len(records), first_lsn, valid, f"bad_lsn: expected {expected_lsn}, found {lsn}"
            )
        if kind not in _PAYLOAD_SIZE or payload_len != _PAYLOAD_SIZE[kind]:
            return records, info(
                len(records), first_lsn, valid, f"torn_tail: bad record header (kind={kind}, len={payload_len})"
            )
        end = offset + _REC_HEADER.size + payload_len + _REC_CRC.size
        if end > size:
            return records, info(len(records), first_lsn, valid, "torn_tail: truncated record body")
        body = data[offset : offset + _REC_HEADER.size + payload_len]
        (crc,) = _REC_CRC.unpack_from(data, end - _REC_CRC.size)
        if crc != zlib.crc32(body):
            return records, info(len(records), first_lsn, valid, "torn_tail: record checksum mismatch")
        a, b, weight = _decode_payload(kind, data[offset + _REC_HEADER.size : end - _REC_CRC.size])
        records.append(LogRecord(lsn, kind, a, b, weight))
        offset = end
    return records, info(len(records), first_lsn, offset, None)


def events_from_delta(delta: GraphDelta) -> list[tuple[int, int, int, float]]:
    """Flatten a :class:`GraphDelta` into ``(kind, a, b, weight)`` events.

    Order matches ``apply_delta``: adds before removes, edges before
    associations — so appending a request's events and folding them back
    reproduces the batch semantics exactly.
    """
    events: list[tuple[int, int, int, float]] = []
    if delta.add_edges is not None and len(delta.add_edges):
        for u, v in np.asarray(delta.add_edges, dtype=np.int64):
            events.append((KIND_ADD_EDGE, int(u), int(v), 0.0))
    if delta.remove_edges is not None and len(delta.remove_edges):
        for u, v in np.asarray(delta.remove_edges, dtype=np.int64):
            events.append((KIND_REMOVE_EDGE, int(u), int(v), 0.0))
    if delta.add_associations is not None and len(delta.add_associations):
        for row in np.asarray(delta.add_associations, dtype=np.float64):
            events.append((KIND_ADD_ASSOC, int(row[0]), int(row[1]), float(row[2])))
    if delta.remove_associations is not None and len(delta.remove_associations):
        for n, a in np.asarray(delta.remove_associations, dtype=np.int64):
            events.append((KIND_REMOVE_ASSOC, int(n), int(a), 0.0))
    return events


def fold_records(records: Iterable[LogRecord], *, directed: bool = True) -> GraphDelta:
    """Fold an ordered record stream into one equivalent :class:`GraphDelta`.

    Later events win per cell, so replaying the fold through
    ``apply_delta`` produces the same graph as applying every event in
    sequence.  For undirected graphs edge keys are canonicalized to
    ``(min, max)`` because ``apply_delta`` mirrors both cells.
    """
    edges: dict[tuple[int, int], bool] = {}
    assocs: dict[tuple[int, int], tuple[bool, float]] = {}
    for rec in records:
        if rec.kind in (KIND_ADD_EDGE, KIND_REMOVE_EDGE):
            key = (rec.a, rec.b)
            if not directed and key[0] > key[1]:
                key = (key[1], key[0])
            edges[key] = rec.kind == KIND_ADD_EDGE
        elif rec.kind == KIND_ADD_ASSOC:
            assocs[(rec.a, rec.b)] = (True, rec.weight)
        elif rec.kind == KIND_REMOVE_ASSOC:
            assocs[(rec.a, rec.b)] = (False, 0.0)
        else:
            raise LogCorruption(f"unknown record kind {rec.kind} at LSN {rec.lsn}")
    add_edges = [key for key, keep in edges.items() if keep]
    remove_edges = [key for key, keep in edges.items() if not keep]
    add_assocs = [(n, a, w) for (n, a), (keep, w) in assocs.items() if keep]
    remove_assocs = [(n, a) for (n, a), (keep, _) in assocs.items() if not keep]
    return GraphDelta(
        add_edges=np.asarray(add_edges, dtype=np.int64) if add_edges else None,
        remove_edges=np.asarray(remove_edges, dtype=np.int64) if remove_edges else None,
        add_associations=np.asarray(add_assocs, dtype=np.float64) if add_assocs else None,
        remove_associations=np.asarray(remove_assocs, dtype=np.int64) if remove_assocs else None,
    )


class LogReader:
    """Read-only access to a delta-log directory.

    Opening a :class:`DeltaLog` performs torn-tail *recovery* — it
    truncates the last segment — which inspection and diff tooling
    (``repro log``, ``repro dataset diff``) must never do.  This view
    only ever reads the segment files; it holds no handles and needs no
    close.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _segment_paths(self) -> list[Path]:
        return sorted(p for p in self.root.glob(f"*{SEGMENT_SUFFIX}") if p.is_file())

    # -- read path ------------------------------------------------------
    def records(self, start_lsn: int = 0) -> Iterator[LogRecord]:
        """Yield records with ``lsn > start_lsn`` in LSN order.

        Reads the files fresh, so it is safe from any thread.  A torn
        tail on the final segment ends iteration silently (an in-flight
        append looks exactly like one); corruption elsewhere raises
        :class:`LogCorruption`.
        """
        paths = self._segment_paths()
        for i, path in enumerate(paths):
            if i + 1 < len(paths):
                try:
                    next_first = int(paths[i + 1].name[: -len(SEGMENT_SUFFIX)])
                except ValueError:
                    next_first = None
                if next_first is not None and next_first - 1 <= start_lsn:
                    continue  # wholly before the requested suffix
            records, seg = scan_segment(path)
            if seg.error is not None and i + 1 < len(paths):
                raise LogCorruption(f"{path.name}: {seg.error}")
            for rec in records:
                if rec.lsn > start_lsn:
                    yield rec

    def replay(
        self, start_lsn: int = 0, *, end_lsn: int | None = None, directed: bool = True
    ) -> tuple[GraphDelta, int]:
        """Fold records in ``(start_lsn, end_lsn]`` into one delta.

        Returns ``(delta, last_lsn_folded)``; when no records qualify the
        delta is empty and ``last_lsn_folded == start_lsn``.
        """
        last = start_lsn
        folded: list[LogRecord] = []
        for rec in self.records(start_lsn):
            if end_lsn is not None and rec.lsn > end_lsn:
                break
            folded.append(rec)
            last = rec.lsn
        return fold_records(folded, directed=directed), last

    def inspect(self) -> dict:
        """Segment-by-segment summary for ``repro log``."""
        segments = [scan_segment(path)[1].as_dict() for path in self._segment_paths()]
        n_records = sum(s["records"] for s in segments)
        return {
            "root": str(self.root),
            "segments": segments,
            "n_segments": len(segments),
            "n_records": n_records,
            "first_lsn": segments[0]["first_lsn"] if segments else 0,
            "last_lsn": segments[-1]["last_lsn"] if segments else 0,
            "epoch": segments[-1]["epoch"] if segments else 1,
            "size_bytes": sum(s["bytes"] for s in segments),
            "max_bytes": getattr(self, "max_bytes", None),
            "torn": [s["segment"] for s in segments if s["error"]],
        }


class DeltaLog(LogReader):
    """Append-only, checksummed, fsync'd log of graph delta events.

    Parameters
    ----------
    root:
        Directory holding the segment files (created if missing).
    segment_bytes:
        Rotate to a new segment once the current one reaches this size.
    max_bytes:
        Ceiling on total log size; appends beyond it raise
        :class:`LogFull` (backpressure — compaction and checkpointing
        shrink the log again).
    fsync:
        Disable only in tests; without it an ack does not imply
        durability.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector` for the
        ``torn_wal_tail`` / ``fsync_fail_every`` / ``crash_after_append``
        write-path faults.

    Opening an existing directory recovers from a torn tail by truncating
    the *last* segment at the last valid record (the actions taken are
    listed in ``recovered``).  Any other corruption raises
    :class:`LogCorruption` and is ``repro fsck --wal`` territory.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        segment_bytes: int = 4 << 20,
        max_bytes: int = 64 << 20,
        fsync: bool = True,
        faults=None,
    ) -> None:
        if segment_bytes < 1024:
            raise ValueError("segment_bytes must be at least 1024")
        if max_bytes < segment_bytes:
            raise ValueError("max_bytes must be at least segment_bytes")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        chmod_default_dir(self.root)
        self.segment_bytes = int(segment_bytes)
        self.max_bytes = int(max_bytes)
        self._fsync = bool(fsync)
        if faults is None:
            # Same idiom as EmbeddingStore.publish: chaos subprocesses arm
            # the write-path faults through REPRO_FAULTS without plumbing.
            from repro.serving.faults import FaultInjector

            faults = FaultInjector.from_env()
        self._faults = faults
        self._lock = threading.Lock()
        # Parked long-poll feeds wait on this; every durable append
        # notifies, so a standby is woken the instant its records exist
        # instead of sleeping out a poll interval.
        self._append_cond = threading.Condition(self._lock)
        self._handle = None
        self._failed: str | None = None
        self.recovered: list[str] = []
        # Durability-cost counters for /metrics: every fsync call on the
        # append path, and the bytes it made durable.  Plain ints bumped
        # under self._lock (or at segment open, same thread).
        self.fsyncs = 0
        self.fsynced_bytes = 0
        self._recover_on_open()

    # -- open / recovery ------------------------------------------------
    def _recover_on_open(self) -> None:
        paths = self._segment_paths()
        last_lsn = 0
        total = 0
        current: Path | None = None
        last_epoch = 0
        epoch_starts: dict[int, int] = {}
        for i, path in enumerate(paths):
            records, seg = scan_segment(path)
            is_last = i == len(paths) - 1
            if seg.error is not None:
                if not is_last or seg.valid_bytes == 0:
                    raise LogCorruption(
                        f"{path.name}: {seg.error} (run `repro fsck --wal {self.root}` to repair)"
                    )
                with path.open("r+b") as handle:
                    handle.truncate(seg.valid_bytes)
                self.recovered.append(
                    f"truncated torn tail of {path.name} at byte {seg.valid_bytes} "
                    f"(last valid LSN {seg.last_lsn}): {seg.error}"
                )
                seg = scan_segment(path)[1]
            if last_lsn and seg.first_lsn != last_lsn + 1:
                raise LogCorruption(
                    f"{path.name}: bad_lsn gap — segment starts at LSN {seg.first_lsn} "
                    f"but the previous segment ends at {last_lsn} "
                    f"(run `repro fsck --wal {self.root}` to repair)"
                )
            if seg.epoch < last_epoch:
                raise LogCorruption(
                    f"{path.name}: epoch_regression — segment carries epoch "
                    f"{seg.epoch} after epoch {last_epoch} "
                    f"(run `repro fsck --wal {self.root}` to repair)"
                )
            epoch_starts.setdefault(seg.epoch, seg.first_lsn)
            last_epoch = seg.epoch
            last_lsn = seg.last_lsn
            total += seg.valid_bytes
            current = path
        self._last_lsn = last_lsn
        self._total_bytes = total
        if current is not None:
            self._handle = current.open("r+b")
            self._handle.seek(0, os.SEEK_END)
            self._segment_size = self._handle.tell()
        else:
            self._segment_size = 0
        self._load_epochs(epoch_starts, last_epoch)

    def _load_epochs(self, epoch_starts: dict[int, int], last_epoch: int) -> None:
        """Reconcile the ``EPOCHS`` history with what the segments say.

        Segments are authoritative for epochs they still cover; the file
        preserves start LSNs of epochs whose segments were pruned, and a
        promotion recorded there survives even if its first segment is
        later pruned.  A missing or unreadable file is rebuilt.
        """
        history: dict[int, int] = {}
        try:
            raw = json.loads((self.root / EPOCHS_FILE).read_text())
            for entry in raw.get("history", []):
                history[int(entry["epoch"])] = int(entry["start_lsn"])
        except (OSError, ValueError, KeyError, TypeError):
            history = {}
        for epoch, start in epoch_starts.items():
            # The file's start can only be <= the oldest surviving
            # segment of that epoch (earlier ones may have been pruned).
            if epoch not in history or history[epoch] > start:
                history[epoch] = start
        if not history:
            history = {1: 1}
        self._epochs = dict(sorted(history.items()))
        self._epoch = max(max(self._epochs), last_epoch, 1)
        self._epochs.setdefault(self._epoch, self._last_lsn + 1)
        self._write_epochs()

    def _write_epochs(self) -> None:
        payload = {
            "schema": EPOCHS_SCHEMA,
            "history": [
                {"epoch": epoch, "start_lsn": start}
                for epoch, start in sorted(self._epochs.items())
            ],
        }
        atomic_write(
            self.root / EPOCHS_FILE,
            lambda handle: handle.write(json.dumps(payload, indent=2) + "\n"),
            text=True,
        )

    # -- properties -----------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the newest durable record (0 when the log is empty)."""
        return self._last_lsn

    @property
    def size_bytes(self) -> int:
        return self._total_bytes

    @property
    def epoch(self) -> int:
        """The fencing term new segments are stamped with (>= 1)."""
        return self._epoch

    @property
    def epoch_start_lsn(self) -> int:
        """First LSN assigned (or to be assigned) under the current epoch."""
        return self._epochs[self._epoch]

    def epoch_history(self) -> list[dict]:
        return [
            {"epoch": epoch, "start_lsn": start}
            for epoch, start in sorted(self._epochs.items())
        ]

    # -- append path ----------------------------------------------------
    def _open_segment(self, first_lsn: int) -> None:
        if self._handle is not None:
            self._handle.close()
        path = self.root / segment_name(first_lsn)
        if path.exists():
            # Re-stamping an empty active segment (an epoch bump with no
            # appends since the last one) replaces it in place.
            self._total_bytes -= path.stat().st_size
        self._handle = path.open("w+b")
        chmod_default_file(self._handle.fileno())
        header = _SEG_HEADER.pack(_SEG_MAGIC, FORMAT_VERSION, first_lsn, self._epoch)
        self._handle.write(header)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
            self.fsynced_bytes += len(header)
        self._segment_size = len(header)
        self._total_bytes += len(header)

    def bump_epoch(self, new_epoch: int | None = None) -> int:
        """Durably advance the fencing epoch (promotion); returns it.

        Seals the active segment and opens a fresh one stamped with the
        new epoch at ``last_lsn + 1``, then records the boundary in the
        ``EPOCHS`` history — after this returns, any writer still on an
        older epoch is structurally fenced out of this log.
        """
        with self._lock:
            if self._failed is not None:
                raise LogWriteError(f"delta log is failed: {self._failed}")
            target = self._epoch + 1 if new_epoch is None else int(new_epoch)
            if target <= self._epoch:
                raise ValueError(
                    f"epoch must increase: current {self._epoch}, got {target}"
                )
            self._epoch = target
            self._epochs[target] = self._last_lsn + 1
            self._open_segment(self._last_lsn + 1)
            self._write_epochs()
            return target

    def append_delta(self, delta: GraphDelta) -> tuple[int, int]:
        """Append every event of ``delta``; see :meth:`append_events`."""
        return self.append_events(events_from_delta(delta))

    def append_events(self, events: list[tuple[int, int, int, float]]) -> tuple[int, int]:
        """Durably append ``(kind, a, b, weight)`` events as one batch.

        Returns ``(first_lsn, last_lsn)`` only after the records are
        fsync'd — an ack implies the batch survives a crash.  One fsync
        covers the whole batch.
        """
        if not events:
            raise ValueError("append_events requires at least one event")
        with self._lock:
            if self._failed is not None:
                raise LogWriteError(f"delta log is failed: {self._failed}")
            first = self._last_lsn + 1
            buf = bytearray()
            for i, (kind, a, b, weight) in enumerate(events):
                buf += encode_record(first + i, kind, a, b, weight)
            if self._total_bytes + len(buf) > self.max_bytes:
                raise LogFull(self._total_bytes, self.max_bytes)
            if self._handle is None or self._segment_size >= self.segment_bytes:
                self._open_segment(first)
            return self._write_locked(buf, first, len(events))

    def append_replicated(self, records: list[LogRecord], epoch: int) -> tuple[int, int]:
        """Durably append records replicated from a primary at ``epoch``.

        Same fsync-then-ack discipline as :meth:`append_events`, but the
        LSNs arrive pre-assigned: they must extend this log exactly
        (``records[0].lsn == last_lsn + 1``, consecutive).  ``epoch`` is
        the fencing term the records were written under on the primary —
        an epoch *older* than the log's own raises :class:`EpochFenced`
        (the sender was superseded by a promotion); a newer one rotates
        to a fresh segment stamped with it.  Replication appends are
        exempt from the ``max_bytes`` backpressure: the ceiling exists to
        slow client writers down, and the standby's own compactor is the
        thing that shrinks the log again.
        """
        if not records:
            raise ValueError("append_replicated requires at least one record")
        with self._lock:
            if self._failed is not None:
                raise LogWriteError(f"delta log is failed: {self._failed}")
            epoch = int(epoch)
            if epoch < self._epoch:
                raise EpochFenced(self._epoch, epoch)
            first = self._last_lsn + 1
            if records[0].lsn != first:
                raise LogCorruption(
                    f"replicated batch starts at LSN {records[0].lsn} but the "
                    f"log ends at {self._last_lsn}"
                )
            buf = bytearray()
            for i, rec in enumerate(records):
                if rec.lsn != first + i:
                    raise LogCorruption(
                        f"replicated batch is not consecutive at LSN {rec.lsn}"
                    )
                buf += encode_record(rec.lsn, rec.kind, rec.a, rec.b, rec.weight)
            if epoch > self._epoch:
                self._epoch = epoch
                self._epochs[epoch] = first
                self._open_segment(first)
                self._write_epochs()
            elif self._handle is None or self._segment_size >= self.segment_bytes:
                self._open_segment(first)
            return self._write_locked(buf, first, len(records))

    def _write_locked(self, buf: bytearray, first: int, n_records: int) -> tuple[int, int]:
        """Write + fsync one encoded batch; rollback on failure.  Lock held."""
        handle = self._handle
        start = self._segment_size
        if self._faults is not None and self._faults.wal_torn_tail():
            # Simulate a crash mid-append: leave a partial record on
            # disk (flushed to the OS, never fsync'd) and die.
            self._failed = "torn_wal_tail fault injected"
            handle.write(bytes(buf[: max(1, len(buf) - 7)]))
            handle.flush()
            self._faults.die("torn_wal_tail")
        try:
            handle.write(bytes(buf))
            handle.flush()
            if self._faults is not None:
                self._faults.wal_fsync()
            if self._fsync:
                os.fsync(handle.fileno())
                self.fsyncs += 1
                self.fsynced_bytes += len(buf)
        except OSError as exc:
            try:
                handle.truncate(start)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
                handle.seek(0, os.SEEK_END)
            except OSError:
                self._failed = f"rollback after failed append also failed: {exc}"
            raise LogWriteError(f"WAL append failed before ack: {exc}") from exc
        self._segment_size += len(buf)
        self._total_bytes += len(buf)
        self._last_lsn = first + n_records - 1
        self._append_cond.notify_all()
        if self._faults is not None:
            self._faults.wal_crash_after_append()
        return first, self._last_lsn

    def wait_for_lsn(self, lsn: int, timeout_s: float) -> bool:
        """Park until the log holds a record past ``lsn``, or time out.

        The long-poll primitive behind replication feeds: returns True
        as soon as ``last_lsn > lsn`` (woken directly by the appending
        thread), False when ``timeout_s`` elapses first.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._append_cond:
            while self._last_lsn <= lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._append_cond.wait(remaining)
            return True

    # -- maintenance ----------------------------------------------------
    def prune_through(self, lsn: int) -> list[str]:
        """Delete sealed segments wholly covered by a checkpoint at ``lsn``.

        The active (last) segment is always kept so the append position
        and LSN counter survive.  Only call with an ``lsn`` that a
        durable checkpoint already covers — pruned records are gone.
        """
        removed: list[str] = []
        with self._lock:
            paths = self._segment_paths()
            for i, path in enumerate(paths[:-1]):
                try:
                    next_first = int(paths[i + 1].name[: -len(SEGMENT_SUFFIX)])
                except ValueError:
                    break
                if next_first - 1 > lsn:
                    break
                size = path.stat().st_size
                path.unlink()
                self._total_bytes -= size
                removed.append(path.name)
        return removed

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
