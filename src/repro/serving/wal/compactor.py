"""Ingest pipeline and background compactor over the delta log.

``IngestPipeline`` owns the write path end to end: durable appends into
the :class:`~repro.serving.wal.log.DeltaLog`, a warm
:class:`~repro.dynamic.incremental.IncrementalPANE` whose graph tracks
the applied log prefix, and publication of compacted store versions with
``applied_lsn`` recorded in the manifest so a restart resumes replay at
the right offset.

Recovery contract (the LogBase recipe):

- ``base.npz`` + ``CHECKPOINT`` in the WAL directory snapshot the graph
  as of some LSN; segments at or below it may be pruned.
- The newest store version's ``metadata.applied_lsn`` names the log
  prefix its arrays reflect.
- Restart: load the checkpoint graph, replay ``(checkpoint, applied]``
  to rebuild the compactor's graph, adopt the stored embedding as the
  warm CCD seed, and fold everything past ``applied`` as usual.

``Compactor`` is the background thread that drives folding, store
version retention, and checkpoint/prune cycles while queries keep
flowing against the immutable published versions.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import PANEConfig
from repro.dynamic.incremental import GraphDelta, IncrementalPANE, apply_delta
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.io import load_npz, save_npz
from repro.serving.gc import collect_versions
from repro.serving.refresh import OnlineRefresher
from repro.serving.wal.log import DeltaLog, LogFull
from repro.utils.fs import atomic_write, chmod_default_file

CHECKPOINT_FILE = "CHECKPOINT"
BASE_GRAPH_FILE = "base.npz"
CHECKPOINT_SCHEMA = "repro.serving.wal/v1"


class RecoveryError(RuntimeError):
    """The WAL directory and the store disagree; manual attention needed."""


def _save_graph_atomic(graph: AttributedGraph, path: Path) -> None:
    tmp = path.with_name(f".{path.name}.tmp.npz")
    save_npz(graph, tmp)
    try:
        with tmp.open("rb") as handle:
            chmod_default_file(handle.fileno())
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class IngestPipeline:
    """The write path: durable log + warm incremental model + publisher.

    Parameters
    ----------
    wal_dir:
        Directory for segments, the base graph snapshot, and CHECKPOINT.
    store:
        The :class:`~repro.serving.store.EmbeddingStore` compacted
        versions are published into.
    service:
        Optional :class:`~repro.serving.service.QueryService`; when
        given, each compacted version is activated (atomic snapshot
        swap) so reads in this process follow the write path.
    """

    def __init__(
        self,
        wal_dir: str | Path,
        store,
        *,
        service=None,
        segment_bytes: int = 4 << 20,
        max_bytes: int = 64 << 20,
        fsync: bool = True,
        faults=None,
    ) -> None:
        self.wal_dir = Path(wal_dir)
        self.store = store
        self.service = service
        self.log = DeltaLog(
            self.wal_dir,
            segment_bytes=segment_bytes,
            max_bytes=max_bytes,
            fsync=fsync,
            faults=faults,
        )
        self._model: IncrementalPANE | None = None
        self._refresher: OnlineRefresher | None = None
        self._applied_lsn = 0
        self._checkpoint_lsn = 0
        self._compact_lock = threading.Lock()
        self._served_cache: tuple[str, int] | None = None
        self.counters = {
            "appends": 0,
            "events": 0,
            "compactions": 0,
            "records_folded": 0,
            "checkpoints": 0,
            "log_full_rejections": 0,
        }

    def bind_service(self, service) -> None:
        """Late-bind the in-process query service.

        A cold bootstrap has to publish the first version *before* a
        ``QueryService`` can open the store, so the CLI boots the
        pipeline first and wires the service in afterwards.
        """
        self.service = service
        if self._refresher is not None:
            self._refresher.service = service
        self._served_cache = None

    # -- state files ----------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        return self.wal_dir / CHECKPOINT_FILE

    def _read_checkpoint(self) -> dict | None:
        if not self.checkpoint_path.exists():
            return None
        return json.loads(self.checkpoint_path.read_text())

    def _write_checkpoint(self, lsn: int) -> None:
        _save_graph_atomic(self._model.graph, self.wal_dir / BASE_GRAPH_FILE)
        meta = {
            "schema": CHECKPOINT_SCHEMA,
            "lsn": int(lsn),
            "graph": BASE_GRAPH_FILE,
            "model": asdict(self._model.config),
            "update_sweeps": self._model.update_sweeps,
        }
        atomic_write(
            self.checkpoint_path,
            lambda handle: handle.write(json.dumps(meta, indent=2) + "\n"),
            text=True,
        )
        self._checkpoint_lsn = int(lsn)

    # -- boot -----------------------------------------------------------
    @property
    def bootstrapped(self) -> bool:
        return self._model is not None

    def bootstrap(
        self,
        graph: AttributedGraph,
        *,
        k: int = 32,
        alpha: float = 0.5,
        epsilon: float = 0.015,
        update_sweeps: int = 2,
        seed: int | None = 0,
    ) -> str:
        """Cold-start: fit ``graph``, publish it, and checkpoint at LSN 0.

        Any records already in the log predate nothing the base graph
        contains, so they stay unapplied and the first compaction folds
        them.
        """
        if self._model is not None:
            raise RuntimeError("pipeline is already bootstrapped")
        self._model = IncrementalPANE(
            k=k, alpha=alpha, epsilon=epsilon, update_sweeps=update_sweeps, seed=seed
        )
        self._refresher = OnlineRefresher(self._model, self.store, service=self.service)
        version = self._refresher.bootstrap(
            graph, metadata={"applied_lsn": 0, "epoch": self.log.epoch}
        )
        self._applied_lsn = 0
        self._write_checkpoint(0)
        return version

    def recover(self) -> str:
        """Rebuild the warm model from checkpoint + store + log replay.

        Returns the store version the pipeline resumed from.
        """
        if self._model is not None:
            raise RuntimeError("pipeline is already bootstrapped")
        meta = self._read_checkpoint()
        if meta is None:
            raise RecoveryError(f"no {CHECKPOINT_FILE} in {self.wal_dir}")
        if meta.get("schema") != CHECKPOINT_SCHEMA:
            raise RecoveryError(f"unsupported checkpoint schema {meta.get('schema')!r}")
        latest = self.store.latest()
        if latest is None:
            raise RecoveryError(
                "WAL checkpoint exists but the store has no published version"
            )
        graph = load_npz(self.wal_dir / meta["graph"])
        stored = self.store.open(latest)
        applied = int(stored.manifest.get("metadata", {}).get("applied_lsn", meta["lsn"]))
        base_lsn = int(meta["lsn"])
        if applied < base_lsn:
            raise RecoveryError(
                f"store version {latest} is at LSN {applied}, behind the "
                f"checkpoint at LSN {base_lsn}; pruned records cannot be replayed"
            )
        delta, folded = self.log.replay(base_lsn, end_lsn=applied, directed=graph.directed)
        if folded < applied:
            raise RecoveryError(
                f"log ends at LSN {folded} but store version {latest} claims "
                f"applied_lsn={applied}"
            )
        if not delta.is_empty():
            graph = apply_delta(graph, delta)
        cfg = dict(meta["model"])
        model = IncrementalPANE(
            k=cfg["k"],
            alpha=cfg["alpha"],
            epsilon=cfg["epsilon"],
            update_sweeps=int(meta.get("update_sweeps", 2)),
            seed=cfg.get("seed"),
        )
        model.config = PANEConfig(**cfg)
        model.adopt(graph, stored.to_embedding())
        self._model = model
        self._refresher = OnlineRefresher(model, self.store, service=self.service)
        self._applied_lsn = applied
        self._checkpoint_lsn = base_lsn
        return latest

    def attach(self, graph: AttributedGraph) -> str:
        """Adopt an existing store's latest version as the WAL base.

        Upgrades a read-only deployment in place: ``graph`` must be the
        graph the latest published version was trained on; the stored
        arrays become the warm CCD seed and a checkpoint is written at
        that version's ``applied_lsn`` (0 for pre-WAL versions).
        """
        if self._model is not None:
            raise RuntimeError("pipeline is already bootstrapped")
        latest = self.store.latest()
        if latest is None:
            raise RecoveryError("attach() needs a published version; bootstrap instead")
        stored = self.store.open(latest)
        applied = int(stored.manifest.get("metadata", {}).get("applied_lsn", 0))
        model = IncrementalPANE(
            k=stored.config.k,
            alpha=stored.config.alpha,
            epsilon=stored.config.epsilon,
            seed=stored.config.seed,
        )
        model.config = stored.config
        model.adopt(graph, stored.to_embedding())
        self._model = model
        self._refresher = OnlineRefresher(model, self.store, service=self.service)
        self._applied_lsn = applied
        self._write_checkpoint(applied)
        return latest

    def ensure_ready(self, graph_path: str | Path | None = None, **bootstrap_kwargs) -> str:
        """Boot whichever way the on-disk state allows; return the version.

        Priority: recover from an existing checkpoint; else attach to a
        non-empty store; else cold-bootstrap — the latter two need
        ``graph_path`` (the base graph ``.npz``).
        """
        if self._read_checkpoint() is not None and self.store.latest() is not None:
            return self.recover()
        if graph_path is None:
            raise RecoveryError(
                f"{self.wal_dir} has no usable checkpoint; pass the base "
                "graph (.npz) to initialize the write path"
            )
        graph = load_npz(graph_path)
        if self.store.latest() is not None:
            return self.attach(graph)
        return self.bootstrap(graph, **bootstrap_kwargs)

    # -- write path -----------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self._model.graph.adjacency.shape[0] if self._model else 0

    @property
    def n_attributes(self) -> int:
        return self._model.graph.attributes.shape[1] if self._model else 0

    def _validate(self, delta: GraphDelta) -> int:
        n, d = self.n_nodes, self.n_attributes
        count = 0
        for name, arr, width in (
            ("add_edges", delta.add_edges, 2),
            ("remove_edges", delta.remove_edges, 2),
            ("add_associations", delta.add_associations, 3),
            ("remove_associations", delta.remove_associations, 2),
        ):
            if arr is None or not len(arr):
                continue
            arr = np.asarray(arr)
            count += arr.shape[0]
            cols = arr[:, 0].astype(np.int64, copy=False)
            if not (np.all(cols >= 0) and np.all(cols < n)):
                raise ValueError(f"{name}: node index out of range [0, {n})")
            second = arr[:, 1].astype(np.int64, copy=False)
            limit = n if "edge" in name else d
            if not (np.all(second >= 0) and np.all(second < limit)):
                kind = "node" if "edge" in name else "attribute"
                raise ValueError(f"{name}: {kind} index out of range [0, {limit})")
            if width == 3:
                weights = np.asarray(arr[:, 2], dtype=np.float64)
                if not np.all(np.isfinite(weights)) or np.any(weights < 0):
                    raise ValueError(f"{name}: weights must be finite and non-negative")
        if count == 0:
            raise ValueError("upsert contains no events")
        return count

    def append(self, delta: GraphDelta) -> tuple[int, int]:
        """Validate and durably append ``delta``; returns ``(first, last)`` LSN.

        The ack (the return) happens only after fsync.  May raise
        ``ValueError`` (bad indices/weights), :class:`~repro.serving.wal.log.LogFull`
        (backpressure), or :class:`~repro.serving.wal.log.LogWriteError`.
        """
        if self._model is None:
            raise RuntimeError("pipeline is not bootstrapped")
        n_events = self._validate(delta)
        try:
            first, last = self.log.append_delta(delta)
        except LogFull:
            self.counters["log_full_rejections"] += 1
            raise
        self.counters["appends"] += 1
        self.counters["events"] += n_events
        return first, last

    # -- freshness ------------------------------------------------------
    @property
    def lsn_durable(self) -> int:
        return self.log.last_lsn

    @property
    def lsn_applied(self) -> int:
        """Newest LSN folded into a *published* store version."""
        return self._applied_lsn

    def lsn_served(self) -> int:
        """``applied_lsn`` of the version reads currently hit."""
        version = self.service.version if self.service is not None else self.store.latest()
        if version is None:
            return 0
        if self._served_cache is not None and self._served_cache[0] == version:
            return self._served_cache[1]
        try:
            meta = self.store.manifest(version).get("metadata", {})
        except FileNotFoundError:
            return 0
        lsn = int(meta.get("applied_lsn", 0))
        self._served_cache = (version, lsn)
        return lsn

    def freshness(self) -> dict:
        durable = self.lsn_durable
        served = self.lsn_served()
        return {
            "lsn_durable": durable,
            "lsn_applied": self._applied_lsn,
            "lsn_served": served,
            "lag": durable - served,
        }

    # -- compaction -----------------------------------------------------
    def compact_once(self) -> dict | None:
        """Fold every unapplied record into one new published version.

        Returns a summary dict, or ``None`` when the log holds nothing
        new.  Replay is idempotent: records at or below ``applied_lsn``
        are never folded twice, so re-running after a crash between
        publish and anything else is a no-op.
        """
        if self._model is None:
            raise RuntimeError("pipeline is not bootstrapped")
        with self._compact_lock:
            start = self._applied_lsn
            delta, last = self.log.replay(
                start, directed=self._model.graph.directed
            )
            if last == start:
                return None
            t0 = time.perf_counter()
            report = self._refresher.apply(
                delta, metadata={"applied_lsn": last, "epoch": self.log.epoch}
            )
            self._applied_lsn = last
            self.counters["compactions"] += 1
            self.counters["records_folded"] += last - start
            return {
                "version": report.version,
                "applied_lsn": last,
                "records": last - start,
                "seconds": time.perf_counter() - t0,
                "timings": dict(report.timings),
            }

    def checkpoint(self) -> dict:
        """Snapshot the applied graph and prune fully-covered segments.

        Safe ordering: the graph snapshot and CHECKPOINT hit disk before
        any segment is deleted, so every record is always recoverable
        from (checkpoint, segments, store) at any crash point.
        """
        if self._model is None:
            raise RuntimeError("pipeline is not bootstrapped")
        with self._compact_lock:
            lsn = self._applied_lsn
            self._write_checkpoint(lsn)
            pruned = self.log.prune_through(lsn)
            self.counters["checkpoints"] += 1
            return {"lsn": lsn, "pruned_segments": pruned}

    def close(self) -> None:
        self.log.close()


class Compactor(threading.Thread):
    """Background thread: fold → publish → retain → checkpoint, forever.

    Parameters
    ----------
    pipeline:
        The :class:`IngestPipeline` to drive.
    interval_s:
        Poll interval when the log is idle.
    keep_versions:
        When > 0, retire superseded store versions after each publish,
        keeping this many (LATEST and the actively served version are
        always kept).
    checkpoint_bytes:
        Checkpoint + prune once the log exceeds this size with all
        records applied; 0 disables checkpointing.
    on_publish:
        Optional callback ``fn(version: str)`` invoked after each
        compacted version is published (the supervisor uses this to poke
        workers onto the new version).
    journal:
        Optional :class:`~repro.serving.obs.journal.EventJournal`; when
        given, every publish, checkpoint, and GC sweep is recorded with
        its version/LSN and duration.
    """

    def __init__(
        self,
        pipeline: IngestPipeline,
        *,
        interval_s: float = 0.25,
        keep_versions: int = 0,
        checkpoint_bytes: int = 8 << 20,
        on_publish=None,
        journal=None,
    ) -> None:
        super().__init__(name="wal-compactor", daemon=True)
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if keep_versions < 0:
            raise ValueError("keep_versions must be non-negative")
        self.pipeline = pipeline
        self.interval_s = float(interval_s)
        self.keep_versions = int(keep_versions)
        self.checkpoint_bytes = int(checkpoint_bytes)
        self.on_publish = on_publish
        self.journal = journal
        self.last_error: str | None = None
        self.last_publish: dict | None = None
        # Sum-mergeable duration counters, mirrored into the metrics
        # registry by the server's collect hook (total seconds + counts
        # sum across workers; no percentile state to reconcile).
        self.timings = {
            "folds": 0,
            "fold_seconds": 0.0,
            "publishes": 0,
            "publish_seconds": 0.0,
        }
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.is_set():
            try:
                self.run_once()
            except Exception as exc:  # noqa: BLE001 - keep serving reads
                self.last_error = f"{type(exc).__name__}: {exc}"
            self._stop_event.wait(self.interval_s)

    def run_once(self) -> dict | None:
        """One compaction cycle (also used synchronously by tests/CLI)."""
        published = self.pipeline.compact_once()
        if published is not None:
            self.last_publish = published
            self.last_error = None
            timings = published.get("timings", {})
            publish_s = float(timings.get("publish", 0.0))
            self.timings["folds"] += 1
            self.timings["fold_seconds"] += max(
                0.0, published["seconds"] - publish_s
            )
            self.timings["publishes"] += 1
            self.timings["publish_seconds"] += publish_s
            if self.journal is not None:
                self.journal.emit(
                    "publish",
                    version=published["version"],
                    lsn=published["applied_lsn"],
                    records=published["records"],
                    seconds=round(published["seconds"], 6),
                )
            if self.on_publish is not None:
                self.on_publish(published["version"])
            if self.keep_versions:
                protect = set()
                if self.pipeline.service is not None:
                    active = self.pipeline.service.version
                    if active:
                        protect.add(active)
                swept = collect_versions(
                    self.pipeline.store, keep=self.keep_versions, protect=protect
                )
                if self.journal is not None and swept["deleted"]:
                    self.journal.emit(
                        "gc",
                        deleted=swept["deleted"],
                        reclaimed_bytes=swept["reclaimed_bytes"],
                        version=published["version"],
                    )
        if (
            self.checkpoint_bytes
            and self.pipeline.log.size_bytes >= self.checkpoint_bytes
            and self.pipeline.lsn_applied == self.pipeline.lsn_durable
        ):
            checkpointed = self.pipeline.checkpoint()
            if self.journal is not None:
                self.journal.emit(
                    "checkpoint",
                    lsn=checkpointed["lsn"],
                    pruned_segments=checkpointed["pruned_segments"],
                )
        return published

    def stop(self, timeout_s: float = 10.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout_s)
