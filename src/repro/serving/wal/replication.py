"""Streaming WAL replication: primary feed, standby tail, fencing.

The primary ships the log, the standby replays it (the LogBase recipe:
a log-structured store gets replication almost for free).  Three pieces
live here:

``build_feed`` / the frame codec
    The primary side of ``GET /v1/replicate?from_lsn=N``.  A response is
    a *finite* sequence of CRC-guarded binary frames — a ``hello`` frame
    describing the primary (epoch, durable LSN), zero or more
    ``records`` frames carrying raw encoded WAL records, and a
    ``heartbeat`` frame when the long-poll expired with nothing new.
    Long-poll plus finite responses keeps the stdlib threading HTTP
    server happy (no infinite chunked stream to babysit) while still
    giving sub-poll-interval latency: the handler parks until records
    arrive or ``wait_s`` elapses.

``ReplicationHub``
    Primary-side bookkeeping.  Every feed request's ``from_lsn`` doubles
    as the standby's cumulative ack — everything below it is fsync'd on
    the standby — so the hub learns replication progress for free.
    ``wait_replicated`` turns that into semi-synchronous acks: with
    ``--ack-replicas N`` armed, an upsert ack additionally waits until
    ``N`` standbys have acknowledged its LSN (timeout -> structured 503,
    never an ack that a failover could lose).

``StandbyReplicator``
    The standby's tail thread: long-polls the primary with
    retry/backoff, appends through the standby's own :class:`DeltaLog`
    (same fsync-then-ack discipline), and surfaces a ``status()`` dict
    for describe/healthz/metrics.  Fencing outcomes are terminal: a
    primary whose epoch is older than ours is refused
    (``state="fenced"``), and a primary that rejects our tail as
    diverged gets a ``DIVERGED`` marker written next to the segments for
    ``repro fsck --wal --repair`` to quarantine the diverged suffix.

Wire format (all little-endian, one frame)::

    <4s magic "RWF1"> <B type> <Q epoch> <Q arg> <I payload_len>
    <payload bytes> <I crc32(header + payload)>

``type`` is 1=hello (arg = primary durable LSN, payload = JSON metadata),
2=records (arg = first LSN in payload, payload = concatenated encoded
records, epoch = the term those records were written under), 3=heartbeat
(arg = primary durable LSN, empty payload).  Records within one frame
share one epoch; the feed splits batches at epoch boundaries so the
standby can stamp its segments faithfully.
"""

from __future__ import annotations

import json
import struct
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
import zlib
from pathlib import Path

from repro.utils.fs import atomic_write
from repro.serving.wal.log import (
    DeltaLog,
    EpochFenced,
    LogCorruption,
    LogRecord,
    LogWriteError,
    SEGMENT_SUFFIX,
    encode_record,
    parse_records,
    scan_segment,
)

FRAME_MAGIC = b"RWF1"
FRAME_HELLO = 1
FRAME_RECORDS = 2
FRAME_HEARTBEAT = 3
_FRAME_HEADER = struct.Struct("<4sBQQI")  # magic, type, epoch, arg, payload len
_FRAME_CRC = struct.Struct("<I")

# Cap one records frame at this many payload bytes so a standby far
# behind streams in bounded responses instead of one giant body.
MAX_FRAME_BYTES = 256 << 10

DIVERGED_FILE = "DIVERGED"
DIVERGED_SCHEMA = "repro.serving.wal.diverged/v1"

REPLICATION_CONTENT_TYPE = "application/x-repro-wal"


class ReplicationWireError(RuntimeError):
    """A feed response failed to decode (truncated stream, bad CRC)."""


class FeedRejected(RuntimeError):
    """The primary refused to serve the feed; maps to a structured 409.

    ``code`` is one of ``diverged_tail`` (the requester holds LSNs the
    primary's newer epoch re-owns), ``log_pruned`` (the requester is so
    far behind that the segments it needs were pruned; it must reseed),
    or ``stale_epoch`` (the requester claims a *newer* epoch than this
    server — this server is not primary any more and must not feed).
    """

    def __init__(self, code: str, message: str, details: dict | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.details = details or {}


class Frame:
    __slots__ = ("type", "epoch", "arg", "payload")

    def __init__(self, type: int, epoch: int, arg: int, payload: bytes = b"") -> None:
        self.type = type
        self.epoch = epoch
        self.arg = arg
        self.payload = payload


def encode_frame(type: int, epoch: int, arg: int, payload: bytes = b"") -> bytes:
    header = _FRAME_HEADER.pack(FRAME_MAGIC, type, epoch, arg, len(payload))
    return header + payload + _FRAME_CRC.pack(zlib.crc32(header + payload))


def decode_frames(body: bytes) -> list[Frame]:
    """Decode a full feed response; any malformation raises.

    Truncation raises :class:`ReplicationWireError` rather than yielding
    a valid prefix: a torn response means the transfer failed and the
    standby should simply re-request — ``from_lsn`` makes the feed
    idempotent, so dropping the whole body is always safe.
    """
    frames: list[Frame] = []
    offset = 0
    size = len(body)
    while offset < size:
        if size - offset < _FRAME_HEADER.size:
            raise ReplicationWireError("truncated frame header")
        magic, ftype, epoch, arg, payload_len = _FRAME_HEADER.unpack_from(body, offset)
        if magic != FRAME_MAGIC:
            raise ReplicationWireError(f"bad frame magic {magic!r}")
        end = offset + _FRAME_HEADER.size + payload_len + _FRAME_CRC.size
        if end > size:
            raise ReplicationWireError("truncated frame payload")
        (crc,) = _FRAME_CRC.unpack_from(body, end - _FRAME_CRC.size)
        if crc != zlib.crc32(body[offset : end - _FRAME_CRC.size]):
            raise ReplicationWireError("frame checksum mismatch")
        payload = body[offset + _FRAME_HEADER.size : end - _FRAME_CRC.size]
        frames.append(Frame(ftype, epoch, arg, payload))
        offset = end
    if not frames:
        raise ReplicationWireError("empty feed response")
    return frames


# ---------------------------------------------------------------------------
# Primary side: feed builder
# ---------------------------------------------------------------------------


def _records_with_epoch(log, start_lsn: int, limit: int):
    """Yield ``(epoch, record)`` for records with ``lsn > start_lsn``.

    Like :meth:`LogReader.records` but keeps each record's segment epoch
    so the feed can stamp frames.  A torn tail on the final segment ends
    iteration silently (an in-flight append looks the same); corruption
    elsewhere raises :class:`LogCorruption`.
    """
    yielded = 0
    paths = sorted(p for p in Path(log.root).glob(f"*{SEGMENT_SUFFIX}") if p.is_file())
    for i, path in enumerate(paths):
        if i + 1 < len(paths):
            try:
                next_first = int(paths[i + 1].name[: -len(SEGMENT_SUFFIX)])
            except ValueError:
                next_first = None
            if next_first is not None and next_first - 1 <= start_lsn:
                continue
        records, seg = scan_segment(path)
        if seg.error is not None and i + 1 < len(paths):
            raise LogCorruption(f"{path.name}: {seg.error}")
        for rec in records:
            if rec.lsn > start_lsn:
                yield seg.epoch, rec
                yielded += 1
                if yielded >= limit:
                    return


def first_lsn_available(log) -> int:
    """First LSN the feed can still serve (1 when nothing was pruned)."""
    paths = sorted(p for p in Path(log.root).glob(f"*{SEGMENT_SUFFIX}") if p.is_file())
    for path in paths:
        try:
            return int(path.name[: -len(SEGMENT_SUFFIX)])
        except ValueError:
            continue
    return log.last_lsn + 1


def check_feed_request(log: DeltaLog, from_lsn: int, requester_epoch: int | None) -> None:
    """Fencing and availability checks; raises :class:`FeedRejected`.

    The requester's ``from_lsn`` is its durable tail and ``epoch`` the
    term it believes is current.  Divergence is decided against the
    epoch history: every LSN at or past the start of the first epoch
    *newer* than the requester's was re-assigned by a promotion the
    requester never saw, so a tail reaching into that range cannot be
    extended — only repaired (``fsck --wal --repair``).
    """
    if requester_epoch is not None and requester_epoch > log.epoch:
        raise FeedRejected(
            "stale_epoch",
            f"this server's epoch {log.epoch} is older than the requester's "
            f"{requester_epoch}; it was superseded and must not serve the feed",
            {"epoch": log.epoch, "requester_epoch": requester_epoch},
        )
    if requester_epoch is not None and requester_epoch < log.epoch:
        boundary = min(
            (e["start_lsn"] for e in log.epoch_history() if e["epoch"] > requester_epoch),
            default=log.last_lsn + 1,
        )
        if from_lsn >= boundary:
            raise FeedRejected(
                "diverged_tail",
                f"requester tail LSN {from_lsn} was written under epoch "
                f"{requester_epoch}, but LSNs >= {boundary} belong to a newer "
                f"epoch on this primary; the diverged suffix must be repaired",
                {
                    "first_diverged_lsn": boundary,
                    "epoch": log.epoch,
                    "requester_epoch": requester_epoch,
                },
            )
    if from_lsn > log.last_lsn:
        # Same (or unstated) epoch yet ahead of us: a dual writer we
        # cannot reconcile.  Fencing should make this unreachable.
        raise FeedRejected(
            "diverged_tail",
            f"requester tail LSN {from_lsn} is past this primary's durable "
            f"LSN {log.last_lsn} under the same epoch",
            {"first_diverged_lsn": log.last_lsn + 1, "epoch": log.epoch},
        )
    oldest = first_lsn_available(log)
    if from_lsn + 1 < oldest:
        raise FeedRejected(
            "log_pruned",
            f"records after LSN {from_lsn} were pruned (feed starts at "
            f"{oldest}); the standby must reseed from a published version",
            {"first_lsn_available": oldest},
        )


def build_feed(
    log: DeltaLog,
    from_lsn: int,
    *,
    requester_epoch: int | None = None,
    max_records: int = 4096,
    wait_s: float = 0.0,
    poll_s: float = 0.05,
    faults=None,
    abort=None,
) -> bytes:
    """Build one feed response body (the primary side of the protocol).

    Parks up to ``wait_s`` waiting for records past ``from_lsn`` (the
    long poll), then returns ``hello`` + ``records...`` frames, or
    ``hello`` + ``heartbeat`` when nothing arrived.  Reads segment files
    fresh, so any thread may call it concurrently with appends.
    ``abort`` (a nullary callable) cuts the park short — the server
    passes its draining flag so a parked feed cannot stall a shutdown.
    """
    if faults is not None:
        faults.replicate_stall()
    check_feed_request(log, from_lsn, requester_epoch)

    deadline = time.monotonic() + max(0.0, wait_s)
    batches: list[tuple[int, list[LogRecord]]] = []
    while True:
        if log.last_lsn > from_lsn:
            for epoch, rec in _records_with_epoch(log, from_lsn, max_records):
                if batches and batches[-1][0] == epoch:
                    batches[-1][1].append(rec)
                else:
                    batches.append((epoch, [rec]))
        if batches or time.monotonic() >= deadline:
            break
        if abort is not None and abort():
            break
        # Park on the log's append condition: the writer wakes us the
        # moment new records are durable.  ``poll_s`` only bounds how
        # often the abort flag is rechecked.
        log.wait_for_lsn(
            from_lsn, min(poll_s, max(0.0, deadline - time.monotonic()))
        )

    epoch = log.epoch
    durable = log.last_lsn
    if faults is not None:
        epoch = faults.replicate_epoch(epoch)
    hello_meta = json.dumps(
        {"epoch_start_lsn": log.epoch_start_lsn, "first_lsn_available": first_lsn_available(log)}
    ).encode("utf-8")
    body = bytearray(encode_frame(FRAME_HELLO, epoch, durable, hello_meta))
    for batch_epoch, records in batches:
        if faults is not None:
            batch_epoch = faults.replicate_epoch(batch_epoch)
        payload = bytearray()
        first = records[0].lsn
        for rec in records:
            payload += encode_record(rec.lsn, rec.kind, rec.a, rec.b, rec.weight)
            if len(payload) >= MAX_FRAME_BYTES:
                body += encode_frame(FRAME_RECORDS, batch_epoch, first, bytes(payload))
                payload = bytearray()
                first = rec.lsn + 1
        if payload:
            body += encode_frame(FRAME_RECORDS, batch_epoch, first, bytes(payload))
    if not batches:
        body += encode_frame(FRAME_HEARTBEAT, epoch, durable)
    out = bytes(body)
    if faults is not None:
        out = faults.replicate_truncate(out)
    return out


# ---------------------------------------------------------------------------
# Primary side: standby tracking + semi-sync acks
# ---------------------------------------------------------------------------


class ReplicationHub:
    """Tracks standby acknowledgement progress on the primary.

    ``note_poll`` is called by the feed handler on every request: the
    ``from_lsn`` a standby asks for is a cumulative ack (it only
    advances past records its own log fsync'd).  ``wait_replicated``
    blocks until ``min_replicas`` standbys have acked an LSN — the
    semi-sync write path: with ``--ack-replicas`` armed the upsert
    handler calls it before acking the client, so an ack implies the
    write survives primary loss.
    """

    # A standby silent for this long no longer counts toward acks.
    STALE_AFTER_S = 15.0

    def __init__(self, *, journal=None) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._journal = journal
        self._standbys: dict[str, dict] = {}

    def note_poll(self, standby_id: str, ack_lsn: int, *, durable_lsn: int) -> None:
        with self._cond:
            entry = self._standbys.get(standby_id)
            if entry is None:
                entry = {"ack_lsn": 0, "ts": 0.0, "caught_up": False}
                self._standbys[standby_id] = entry
                if self._journal is not None:
                    self._journal.emit("standby_connected", standby=standby_id, ack_lsn=ack_lsn)
            entry["ack_lsn"] = max(entry["ack_lsn"], ack_lsn)
            entry["ts"] = time.monotonic()
            if not entry["caught_up"] and entry["ack_lsn"] >= durable_lsn:
                entry["caught_up"] = True
                if self._journal is not None:
                    self._journal.emit("standby_caught_up", standby=standby_id, lsn=ack_lsn)
            self._cond.notify_all()

    def _live(self) -> list[tuple[str, dict]]:
        cutoff = time.monotonic() - self.STALE_AFTER_S
        return [(sid, e) for sid, e in self._standbys.items() if e["ts"] >= cutoff]

    def acked(self, lsn: int) -> int:
        """How many live standbys have acked ``lsn``.  Lock held or not."""
        return sum(1 for _, e in self._live() if e["ack_lsn"] >= lsn)

    def wait_replicated(self, lsn: int, *, min_replicas: int = 1, timeout_s: float = 5.0) -> bool:
        """Block until ``min_replicas`` standbys acked ``lsn`` (or timeout)."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while self.acked(lsn) < min_replicas:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def status(self) -> dict:
        with self._lock:
            now = time.monotonic()
            live = self._live()
            return {
                "n_standbys": len(live),
                "min_ack_lsn": min((e["ack_lsn"] for _, e in live), default=0),
                "standbys": [
                    {
                        "id": sid,
                        "ack_lsn": e["ack_lsn"],
                        "age_s": round(now - e["ts"], 3),
                        "caught_up": e["caught_up"],
                    }
                    for sid, e in sorted(self._standbys.items())
                ],
            }


# ---------------------------------------------------------------------------
# Divergence marker (read by fsck --wal)
# ---------------------------------------------------------------------------


def write_diverged_marker(
    root: str | Path,
    *,
    first_diverged_lsn: int,
    local_epoch: int,
    primary_epoch: int,
    primary_url: str = "",
) -> Path:
    """Record that LSNs >= ``first_diverged_lsn`` were fenced out.

    The replicator writes this when the primary rejects its tail, then
    halts; ``repro fsck --wal`` reports ``diverged_tail`` and
    ``--repair`` quarantines the suffix and clears the marker.
    """
    path = Path(root) / DIVERGED_FILE
    payload = {
        "schema": DIVERGED_SCHEMA,
        "first_diverged_lsn": int(first_diverged_lsn),
        "local_epoch": int(local_epoch),
        "primary_epoch": int(primary_epoch),
        "primary_url": primary_url,
    }
    atomic_write(path, lambda h: h.write(json.dumps(payload, indent=2) + "\n"), text=True)
    return path


def read_diverged_marker(root: str | Path) -> dict | None:
    path = Path(root) / DIVERGED_FILE
    try:
        raw = json.loads(path.read_text())
    except OSError:
        return None
    except ValueError:
        return {"schema": DIVERGED_SCHEMA, "error": "unreadable marker"}
    return raw if isinstance(raw, dict) else None


def clear_diverged_marker(root: str | Path) -> None:
    path = Path(root) / DIVERGED_FILE
    try:
        path.unlink()
    except FileNotFoundError:
        pass


# ---------------------------------------------------------------------------
# Standby side: the tail thread
# ---------------------------------------------------------------------------


class StandbyReplicator(threading.Thread):
    """Tails a primary's replication feed into a local :class:`DeltaLog`.

    States (``status()["state"]``): ``connecting`` (no successful round
    yet), ``streaming`` (replicating, behind), ``caught_up`` (local
    durable LSN matches the primary's), and the terminal ones —
    ``fenced`` (the primary's epoch is older than ours: it was
    superseded; never extend our log from it), ``diverged`` (the primary
    fenced *us* out; a ``DIVERGED`` marker was written for fsck),
    ``pruned`` (the primary no longer holds the records we need; the
    standby must reseed), and ``stopped``.

    Transient failures (connection refused, timeouts, torn responses)
    retry with exponential backoff capped at ``max_backoff_s``; fencing
    outcomes stop the thread — they require an operator (or fsck).
    """

    def __init__(
        self,
        primary_url: str,
        log: DeltaLog,
        *,
        standby_id: str,
        journal=None,
        wait_s: float = 5.0,
        timeout_s: float = 10.0,
        max_records: int = 4096,
        max_backoff_s: float = 2.0,
        on_append=None,
    ) -> None:
        super().__init__(name="standby-replicator", daemon=True)
        self.primary_url = primary_url.rstrip("/")
        self.log = log
        self.standby_id = standby_id
        self.wait_s = float(wait_s)
        self.timeout_s = float(timeout_s)
        self.max_records = int(max_records)
        self.max_backoff_s = float(max_backoff_s)
        self._journal = journal
        self._on_append = on_append
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._state = "connecting"
        self._primary_epoch = 0
        self._primary_lsn = 0
        self._last_contact = 0.0
        self._rounds = 0
        self._records_replicated = 0
        self._bytes_replicated = 0
        self._errors = 0
        self._last_error: str | None = None
        self._was_behind = True

    # -- lifecycle ------------------------------------------------------
    def stop(self, *, timeout_s: float | None = None) -> None:
        self._stop_event.set()
        if timeout_s is not None and self.is_alive():
            self.join(timeout=timeout_s)

    def run(self) -> None:  # pragma: no cover - exercised via e2e tests
        backoff = 0.05
        while not self._stop_event.is_set():
            try:
                advanced = self._poll_once()
            except _FatalReplicationError:
                return
            except Exception as exc:  # transient: retry with backoff
                self._note_error(str(exc))
                self._stop_event.wait(backoff)
                backoff = min(backoff * 2, self.max_backoff_s)
                continue
            backoff = 0.05 if advanced else min(max(backoff, 0.05), self.max_backoff_s)
        self._set_state("stopped")

    # -- one round ------------------------------------------------------
    def _poll_once(self) -> bool:
        """One feed round-trip; returns True when records were appended."""
        query = urllib.parse.urlencode(
            {
                "from_lsn": self.log.last_lsn,
                "epoch": self.log.epoch,
                "standby_id": self.standby_id,
                "wait_s": f"{self.wait_s:g}",
                "max_records": self.max_records,
            }
        )
        request = urllib.request.Request(
            f"{self.primary_url}/v1/replicate?{query}",
            headers={"Accept": REPLICATION_CONTENT_TYPE},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.wait_s + self.timeout_s) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            self._handle_http_error(exc)
            return False

        frames = decode_frames(body)
        with self._lock:
            self._last_contact = time.monotonic()
            self._rounds += 1
        appended = False
        for frame in frames:
            if frame.type == FRAME_HELLO:
                if frame.epoch < self.log.epoch:
                    self._fence(frame.epoch)
                with self._lock:
                    self._primary_epoch = frame.epoch
                    self._primary_lsn = frame.arg
            elif frame.type == FRAME_HEARTBEAT:
                with self._lock:
                    self._primary_lsn = max(self._primary_lsn, frame.arg)
            elif frame.type == FRAME_RECORDS:
                appended = self._apply_records(frame) or appended
            else:
                raise ReplicationWireError(f"unknown frame type {frame.type}")
        self._refresh_state()
        return appended

    def _apply_records(self, frame: Frame) -> bool:
        records = parse_records(frame.payload)
        if not records:
            return False
        if frame.arg != records[0].lsn:
            raise ReplicationWireError(
                f"records frame claims first LSN {frame.arg} but payload "
                f"starts at {records[0].lsn}"
            )
        # Drop any prefix we already hold (a retried response overlaps).
        records = [r for r in records if r.lsn > self.log.last_lsn]
        if not records:
            return False
        if records[0].lsn != self.log.last_lsn + 1:
            raise ReplicationWireError(
                f"records frame skips LSNs: log ends at {self.log.last_lsn}, "
                f"frame resumes at {records[0].lsn}"
            )
        try:
            self.log.append_replicated(records, epoch=frame.epoch)
        except EpochFenced as exc:
            self._fence(exc.writer_epoch)
        except (LogWriteError, LogCorruption) as exc:
            self._note_error(f"local append failed: {exc}")
            raise _FatalReplicationError from exc
        with self._lock:
            self._records_replicated += len(records)
            self._bytes_replicated += len(frame.payload)
        if self._on_append is not None:
            self._on_append(records[-1].lsn)
        return True

    def _handle_http_error(self, exc: urllib.error.HTTPError) -> None:
        from repro.serving.http.protocol import ApiError

        try:
            error = ApiError.from_body(exc.code, json.loads(exc.read().decode("utf-8")))
        except Exception:
            error = None
        code = error.code if error is not None else f"http_{exc.code}"
        message = str(error) if error is not None else str(exc)
        details = error.details if error is not None else {}
        if code == "diverged_tail":
            first = int(details.get("first_diverged_lsn", self.log.last_lsn + 1))
            primary_epoch = int(details.get("epoch", 0))
            write_diverged_marker(
                self.log.root,
                first_diverged_lsn=first,
                local_epoch=self.log.epoch,
                primary_epoch=primary_epoch,
                primary_url=self.primary_url,
            )
            self._emit(
                "replication_diverged",
                first_diverged_lsn=first,
                local_epoch=self.log.epoch,
                primary_epoch=primary_epoch,
            )
            self._note_error(message)
            self._set_state("diverged")
            raise _FatalReplicationError
        if code == "log_pruned":
            self._emit(
                "replication_pruned",
                first_lsn_available=details.get("first_lsn_available"),
                lsn_durable=self.log.last_lsn,
            )
            self._note_error(message)
            self._set_state("pruned")
            raise _FatalReplicationError
        if code == "stale_epoch":
            # The primary admits it is older than us; treat like fencing
            # from our side — we must not follow it.
            self._fence(int(details.get("epoch", 0)))
        # Anything else (not_primary while it catches up, 503s, ...) is
        # transient: surface and retry.
        raise RuntimeError(f"feed error {code}: {message}")

    def _fence(self, primary_epoch: int) -> None:
        self._emit(
            "replication_fenced",
            local_epoch=self.log.epoch,
            primary_epoch=primary_epoch,
        )
        self._note_error(
            f"primary epoch {primary_epoch} is older than local epoch "
            f"{self.log.epoch}; refusing to replicate from a superseded primary"
        )
        self._set_state("fenced")
        raise _FatalReplicationError

    # -- bookkeeping ----------------------------------------------------
    def _refresh_state(self) -> None:
        with self._lock:
            if self._state in ("fenced", "diverged", "pruned", "stopped"):
                return
            lag = max(0, self._primary_lsn - self.log.last_lsn)
            if lag == 0:
                if self._was_behind:
                    self._was_behind = False
                    self._emit_locked("replication_caught_up", lsn=self.log.last_lsn)
                self._state = "caught_up"
            else:
                self._was_behind = True
                self._state = "streaming"

    def _set_state(self, state: str) -> None:
        with self._lock:
            self._state = state

    def _note_error(self, message: str) -> None:
        with self._lock:
            self._errors += 1
            self._last_error = message

    def _emit(self, kind: str, **fields) -> None:
        if self._journal is not None:
            self._journal.emit(kind, standby=self.standby_id, **fields)

    def _emit_locked(self, kind: str, **fields) -> None:
        # journal.emit never raises and takes no locks of ours.
        if self._journal is not None:
            self._journal.emit(kind, standby=self.standby_id, **fields)

    def status(self) -> dict:
        with self._lock:
            lag = max(0, self._primary_lsn - self.log.last_lsn) if self._primary_lsn else None
            return {
                "primary_url": self.primary_url,
                "standby_id": self.standby_id,
                "state": self._state,
                "primary_epoch": self._primary_epoch,
                "primary_lsn_durable": self._primary_lsn,
                "lsn_durable": self.log.last_lsn,
                "lag": lag,
                "last_contact_age_s": (
                    round(time.monotonic() - self._last_contact, 3) if self._last_contact else None
                ),
                "rounds": self._rounds,
                "records_replicated": self._records_replicated,
                "bytes_replicated": self._bytes_replicated,
                "errors": self._errors,
                "last_error": self._last_error,
            }


class _FatalReplicationError(RuntimeError):
    """Internal: unwinds the tail loop after a terminal state was set."""
