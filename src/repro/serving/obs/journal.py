"""An append-only JSONL ops journal: what the system *did*, and when.

The serving tier's control-plane actions — version publishes,
checkpoints, GC sweeps, worker starts/exits/restarts, breaker trips,
fsck repairs, drains — currently leave at best an unstructured stdout
line in whichever process performed them.  The journal gives them one
durable, greppable home: ``<root>/events.jsonl``, one JSON object per
line, each stamped with a wall-clock timestamp, the emitting pid, and
whatever identifies the action (version, LSN, worker slot, exit code).

Design constraints, in order:

- **Never take the serving path down.**  ``emit`` swallows I/O errors
  (counting drops) — a full disk must degrade observability, not
  availability.
- **Multi-process safe appends.**  Every emit is one ``write`` on an
  ``O_APPEND`` descriptor opened per call; POSIX keeps concurrent
  appends of a line-sized write intact, so the supervisor, a worker,
  and an offline ``repro fsck`` can share one journal.
- **Size-capped.**  When the live file would exceed ``max_bytes`` it
  rotates (``events.jsonl`` → ``events.jsonl.1`` → …), keeping ``keep``
  rotated generations.  Rotation is best-effort under concurrency: two
  writers racing a rotation can at worst rotate twice, never lose a
  line that was already written.

Readers: :func:`read_events` replays rotated-then-live history with
kind/time filters; :func:`follow_events` tails the live file (surviving
rotation) for ``repro events --follow``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

JOURNAL_NAME = "events.jsonl"
DEFAULT_MAX_BYTES = 4 << 20
DEFAULT_KEEP = 2


class EventJournal:
    """Appends structured events under one root directory."""

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
    ) -> None:
        if max_bytes < 4096:
            raise ValueError(f"max_bytes must be >= 4096, got {max_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.path = self.root / JOURNAL_NAME
        self.max_bytes = max_bytes
        self.keep = keep
        self.dropped = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields) -> dict:
        """Durably append one event; returns the event dict.

        The event always carries ``ts`` (unix seconds), ``kind`` and
        ``pid``; callers add the identifying fields (``version``,
        ``lsn``, ``worker``, ``exit``, ...).  I/O failures are swallowed
        and counted in :attr:`dropped` — the journal must never be the
        reason a request or a restart fails.
        """
        event = {"ts": round(time.time(), 6), "kind": kind, "pid": os.getpid()}
        event.update(fields)
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        data = line.encode("utf-8")
        try:
            with self._lock:
                self.root.mkdir(parents=True, exist_ok=True)
                self._maybe_rotate(len(data))
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
        except OSError:
            self.dropped += 1
        return event

    def _maybe_rotate(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size + incoming <= self.max_bytes:
            return
        oldest = self.path.with_name(f"{JOURNAL_NAME}.{self.keep}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.keep - 1, 0, -1):
            source = self.path.with_name(f"{JOURNAL_NAME}.{index}")
            if source.exists():
                os.replace(source, self.path.with_name(f"{JOURNAL_NAME}.{index + 1}"))
        os.replace(self.path, self.path.with_name(f"{JOURNAL_NAME}.1"))


def journal_paths(root: str | Path) -> list[Path]:
    """Journal files under ``root``, oldest first (rotated then live)."""
    root = Path(root)
    live = root / JOURNAL_NAME
    rotated = sorted(
        (
            path
            for path in root.glob(f"{JOURNAL_NAME}.*")
            if path.suffix[1:].isdigit()
        ),
        key=lambda path: int(path.suffix[1:]),
        reverse=True,  # .2 is older than .1
    )
    return [*rotated, *([live] if live.exists() else [])]


def _matches(event: dict, kinds, since) -> bool:
    if kinds is not None and event.get("kind") not in kinds:
        return False
    if since is not None and event.get("ts", 0) < since:
        return False
    return True


def _parse_lines(lines, kinds, since):
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn final line from a crashed writer
        if isinstance(event, dict) and _matches(event, kinds, since):
            yield event


def read_events(
    root: str | Path,
    *,
    kinds=None,
    since: float | None = None,
):
    """Yield journal events under ``root``, oldest first.

    ``kinds`` filters by event kind (any iterable of strings);
    ``since`` is a unix timestamp lower bound.
    """
    kinds = frozenset(kinds) if kinds is not None else None
    for path in journal_paths(root):
        try:
            with path.open("r", encoding="utf-8", errors="replace") as handle:
                yield from _parse_lines(handle, kinds, since)
        except OSError:
            continue


def follow_events(
    root: str | Path,
    *,
    kinds=None,
    since: float | None = None,
    stop: "threading.Event | None" = None,
    poll_s: float = 0.2,
    replay: bool = True,
):
    """Tail the journal: replay history (optional), then stream new events.

    Runs until ``stop`` is set (never, when ``stop`` is ``None`` —
    ``repro events --follow`` relies on Ctrl-C).  Rotation mid-follow is
    handled by watching the live file's identity and size: when the file
    shrinks or is replaced, the reader reopens from the start of the new
    live file (rotated-away bytes were already streamed).
    """
    kinds = frozenset(kinds) if kinds is not None else None
    root = Path(root)
    live = root / JOURNAL_NAME
    if replay:
        yield from read_events(root, kinds=kinds, since=since)
    offset = live.stat().st_size if live.exists() else 0
    buffer = ""
    while stop is None or not stop.is_set():
        try:
            size = live.stat().st_size
        except FileNotFoundError:
            size = 0
        if size < offset:
            offset = 0  # rotated or truncated: start of the new live file
        if size > offset:
            with live.open("r", encoding="utf-8", errors="replace") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            buffer += chunk
            *complete, buffer = buffer.split("\n")
            yield from _parse_lines(complete, kinds, since)
        else:
            if stop is not None and stop.wait(poll_s):
                break
            if stop is None:
                time.sleep(poll_s)


def summarize_events(root: str | Path) -> dict:
    """A one-shot roll-up for ``repro stat``: counts and last-seen per kind."""
    counts: dict[str, int] = {}
    last: dict[str, dict] = {}
    first_ts = None
    last_ts = None
    total = 0
    for event in read_events(root):
        total += 1
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        last[kind] = event
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
    return {
        "events": total,
        "kinds": counts,
        "last_by_kind": last,
        "first_ts": first_ts,
        "last_ts": last_ts,
        "files": [str(path) for path in journal_paths(root)],
    }
