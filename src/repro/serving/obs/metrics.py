"""A metrics registry: counters, gauges, fixed-bucket histograms.

Why not keep leaning on :class:`~repro.serving.stats.LatencyStats`?
Its percentiles come from a rolling sample window, and percentiles do
not merge: the supervisor can only sum a worker fleet's *counters*,
which is exactly the ``_SUMMABLE`` carve-out its aggregation makes
today.  Histograms with **fixed buckets** fix that at the root — every
cell (bucket count, sum, count, counter value) is a monotonic number,
so fleet aggregation is plain summation and any quantile can be
estimated *after* the merge.  The bucket bounds are therefore part of
the fleet contract: every worker uses the same defaults below.

Three output surfaces, one source of truth:

- :meth:`MetricsRegistry.as_dict` — a JSON-able document (shipped
  inside the existing ``GET /metrics`` JSON payload, and what the
  supervisor merges across workers with :func:`merge_dicts`);
- :meth:`MetricsRegistry.render_text` /
  :func:`render_text_from_dict` — Prometheus text exposition
  (``Accept: text/plain`` content negotiation on ``/metrics``);
- :func:`parse_text` — a tiny validating parser for the exposition
  format (no external deps), used by the CI smoke and the tests to
  assert the output is real Prometheus, not Prometheus-shaped.

Hot-path discipline: request handlers touch at most one counter
increment and one histogram observation.  Everything that already has
a home (endpoint ``LatencyStats`` counters, the service cache counters,
WAL/pipeline counters) is *mirrored* into the registry by collect
hooks that run at scrape time — no double accounting per request.
"""

from __future__ import annotations

import math
import threading

# The shared fleet contract: latency buckets in seconds.  Spanning
# 0.5 ms – 5 s covers a cache hit on localhost through a saturated
# fleet's worst tail; the +Inf bucket is implicit.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _format_value(value: float) -> str:
    """A Prometheus sample value: integers bare, floats via repr."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared cell bookkeeping: labels → value(s), under one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: tuple[str, ...]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = tuple(labels)
        self._cells: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labels):
            raise ValueError(
                f"{self.name} expects labels {self.labels}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labels)


class Counter(_Metric):
    """A monotonically increasing sum per label cell."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        key = self._key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Mirror an externally maintained monotonic total.

        For collect hooks that project an existing counter (endpoint
        ``LatencyStats.queries``, pipeline ``appends``) into the
        registry at scrape time.  The source must be monotonic — this
        does not enforce it, it just records the current total.
        """
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(value)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._cells.get(key, 0.0))

    def _cell_dicts(self) -> list[dict]:
        with self._lock:
            return [
                {"labels": dict(zip(self.labels, key)), "value": value}
                for key, value in sorted(self._cells.items())
            ]

    def _render(self, lines: list[str]) -> None:
        for cell in self._cell_dicts():
            suffix = _label_suffix(
                self.labels, tuple(cell["labels"][n] for n in self.labels)
            )
            lines.append(f"{self.name}{suffix} {_format_value(cell['value'])}")


class Gauge(Counter):
    """A value that can go anywhere; fleet aggregation sums cells."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount


class Histogram(_Metric):
    """Observations into fixed cumulative buckets (sum-mergeable).

    Each cell holds per-bucket counts (non-cumulative internally,
    rendered cumulative per the exposition format), the running sum,
    and the total count.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(f"buckets must be strictly increasing: {buckets}")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._cells[key] = cell
            index = len(self.buckets)  # the +Inf slot
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            cell["counts"][index] += 1
            cell["sum"] += value
            cell["count"] += 1

    def cell(self, **labels) -> dict | None:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                return None
            return {
                "counts": list(cell["counts"]),
                "sum": cell["sum"],
                "count": cell["count"],
            }

    def _cell_dicts(self) -> list[dict]:
        with self._lock:
            return [
                {
                    "labels": dict(zip(self.labels, key)),
                    "counts": list(cell["counts"]),
                    "sum": cell["sum"],
                    "count": cell["count"],
                }
                for key, cell in sorted(self._cells.items())
            ]

    def _render(self, lines: list[str]) -> None:
        bounds = [*self.buckets, math.inf]
        for cell in self._cell_dicts():
            values = tuple(cell["labels"][n] for n in self.labels)
            cumulative = 0
            for bound, count in zip(bounds, cell["counts"]):
                cumulative += count
                suffix = _label_suffix(
                    self.labels, values, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            suffix = _label_suffix(self.labels, values)
            lines.append(f"{self.name}_sum{suffix} {_format_value(cell['sum'])}")
            lines.append(f"{self.name}_count{suffix} {cell['count']}")


class MetricsRegistry:
    """Named metric families plus scrape-time collect hooks.

    Registration is idempotent by name (same kind and labels required),
    so every layer can declare the instruments it feeds without
    coordinating module import order.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Metric] = {}
        self._hooks: list = []
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._families.get(metric.name)
            if existing is not None:
                if (
                    existing.kind != metric.kind
                    or existing.labels != metric.labels
                ):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.kind}{existing.labels}, not "
                        f"{metric.kind}{metric.labels}"
                    )
                return existing
            self._families[metric.name] = metric
            return metric

    def counter(self, name: str, help: str, labels: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter(name, help, tuple(labels)))

    def gauge(self, name: str, help: str, labels: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge(name, help, tuple(labels)))

    def histogram(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, tuple(labels), buckets))

    def add_collect(self, hook) -> None:
        """Register a zero-arg hook run before every scrape.

        Hooks mirror externally owned state (endpoint stats, pipeline
        counters, cache info) into gauges/counters so the hot path
        never pays for double accounting.
        """
        with self._lock:
            self._hooks.append(hook)

    def _collect(self) -> list[_Metric]:
        with self._lock:
            hooks = list(self._hooks)
            families = list(self._families.values())
        for hook in hooks:
            hook()
        # A hook may have registered a family on first run.
        with self._lock:
            families = list(self._families.values())
        return sorted(families, key=lambda m: m.name)

    def as_dict(self) -> dict:
        """A JSON-able snapshot (runs collect hooks)."""
        families = []
        for metric in self._collect():
            family = {
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.labels),
                "cells": metric._cell_dicts(),
            }
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
            families.append(family)
        return {"families": families}

    def render_text(self) -> str:
        """Prometheus text exposition (runs collect hooks)."""
        lines: list[str] = []
        for metric in self._collect():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            metric._render(lines)
        return "\n".join(lines) + "\n"


# -- fleet merging (dict form) ------------------------------------------
def merge_dicts(dicts: "list[dict]") -> dict:
    """Sum per-cell values across per-worker registry snapshots.

    Counters and histogram cells (bucket counts, sum, count) add;
    gauges add too — the fleet view of ``in_flight`` or ``log_bytes``
    is the sum over workers, and per-worker values stay visible in the
    supervisor's per-worker JSON.  Families missing from some workers
    merge from those that have them.  Mismatched types or histogram
    bucket bounds for the same name raise — that is a fleet contract
    violation, not something to paper over.
    """
    merged: dict[str, dict] = {}
    for snapshot in dicts:
        for family in snapshot.get("families", []):
            name = family["name"]
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "name": name,
                    "type": family["type"],
                    "help": family.get("help", ""),
                    "labels": list(family.get("labels", [])),
                    "cells": [
                        {key: (list(v) if isinstance(v, list) else v)
                         for key, v in cell.items()}
                        for cell in family.get("cells", [])
                    ],
                    **(
                        {"buckets": list(family["buckets"])}
                        if "buckets" in family
                        else {}
                    ),
                }
                continue
            if target["type"] != family["type"] or target["labels"] != list(
                family.get("labels", [])
            ):
                raise ValueError(
                    f"metric {name!r} disagrees across workers: "
                    f"{target['type']}{target['labels']} vs "
                    f"{family['type']}{family.get('labels')}"
                )
            if target.get("buckets") != (
                list(family["buckets"]) if "buckets" in family else None
            ) and "buckets" in family:
                raise ValueError(f"histogram {name!r} bucket bounds disagree")
            by_key = {
                tuple(sorted(cell["labels"].items())): cell
                for cell in target["cells"]
            }
            for cell in family.get("cells", []):
                key = tuple(sorted(cell["labels"].items()))
                mine = by_key.get(key)
                if mine is None:
                    copied = {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in cell.items()
                    }
                    target["cells"].append(copied)
                    by_key[key] = copied
                elif "value" in cell:
                    mine["value"] += cell["value"]
                else:
                    mine["counts"] = [
                        a + b for a, b in zip(mine["counts"], cell["counts"])
                    ]
                    mine["sum"] += cell["sum"]
                    mine["count"] += cell["count"]
    return {"families": sorted(merged.values(), key=lambda f: f["name"])}


def render_text_from_dict(snapshot: dict) -> str:
    """Prometheus exposition from an :meth:`as_dict`/:func:`merge_dicts` doc."""
    lines: list[str] = []
    for family in sorted(
        snapshot.get("families", []), key=lambda f: f["name"]
    ):
        name = family["name"]
        labels = tuple(family.get("labels", []))
        lines.append(f"# HELP {name} {_escape_help(family.get('help', ''))}")
        lines.append(f"# TYPE {name} {family['type']}")
        for cell in family.get("cells", []):
            values = tuple(str(cell["labels"][n]) for n in labels)
            if "value" in cell:
                suffix = _label_suffix(labels, values)
                lines.append(f"{name}{suffix} {_format_value(cell['value'])}")
            else:
                bounds = [*family.get("buckets", []), math.inf]
                cumulative = 0
                for bound, count in zip(bounds, cell["counts"]):
                    cumulative += count
                    suffix = _label_suffix(
                        labels, values, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                suffix = _label_suffix(labels, values)
                lines.append(f"{name}_sum{suffix} {_format_value(cell['sum'])}")
                lines.append(f"{name}_count{suffix} {cell['count']}")
    return "\n".join(lines) + "\n"


# -- a tiny validating parser -------------------------------------------
def parse_text(text: str) -> dict:
    """Parse/validate Prometheus text exposition; stdlib only.

    Returns ``{family: {"type": ..., "samples": {(name, labels-tuple):
    value}}}`` where ``labels-tuple`` is a sorted tuple of ``(label,
    value)`` pairs.  Raises :class:`ValueError` on anything malformed:
    samples before their TYPE line, unparseable values, duplicate
    sample keys, histogram bucket counts that are not cumulative, or a
    histogram ``_count`` that disagrees with its ``+Inf`` bucket.  This
    is what the CI smoke runs against a live scrape.
    """
    families: dict[str, dict] = {}

    def family_of(sample_name: str) -> str | None:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        return sample_name if sample_name in families else None

    def parse_labels(raw: str, line: str) -> tuple:
        labels = []
        rest = raw
        while rest:
            eq = rest.find("=")
            if eq < 0 or len(rest) <= eq + 1 or rest[eq + 1] != '"':
                raise ValueError(f"malformed labels in line: {line!r}")
            name = rest[:eq].strip()
            if not name or not set(name) <= _NAME_OK:
                raise ValueError(f"bad label name in line: {line!r}")
            # Scan the quoted value, honoring backslash escapes.
            i = eq + 2
            value_chars = []
            while i < len(rest):
                ch = rest[i]
                if ch == "\\":
                    if i + 1 >= len(rest):
                        raise ValueError(f"dangling escape in line: {line!r}")
                    esc = rest[i + 1]
                    value_chars.append(
                        {"n": "\n", "\\": "\\", '"': '"'}.get(esc, esc)
                    )
                    i += 2
                elif ch == '"':
                    break
                else:
                    value_chars.append(ch)
                    i += 1
            else:
                raise ValueError(f"unterminated label value in line: {line!r}")
            labels.append((name, "".join(value_chars)))
            rest = rest[i + 1 :]
            if rest.startswith(","):
                rest = rest[1:]
            elif rest:
                raise ValueError(f"malformed labels in line: {line!r}")
        return tuple(sorted(labels))

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"malformed HELP line: {line!r}")
            families.setdefault(
                parts[2], {"type": None, "samples": {}}
            )
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"malformed TYPE line: {line!r}")
            family = families.setdefault(parts[2], {"samples": {}})
            family["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        # A sample: name[{labels}] value
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"unbalanced braces in line: {line!r}")
            sample_name = line[:brace]
            labels = parse_labels(line[brace + 1 : close], line)
            value_text = line[close + 1 :].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = ()
            value_text = value_text.strip()
        if not sample_name or not set(sample_name) <= _NAME_OK:
            raise ValueError(f"bad sample name in line: {line!r}")
        base = family_of(sample_name)
        if base is None:
            raise ValueError(
                f"sample {sample_name!r} has no preceding TYPE declaration"
            )
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"bad sample value in line: {line!r}")
        samples = families[base]["samples"]
        key = (sample_name, labels)
        if key in samples:
            raise ValueError(f"duplicate sample: {key}")
        samples[key] = value

    # Histogram invariants: buckets cumulative, _count == +Inf bucket.
    for name, family in families.items():
        if family.get("type") != "histogram":
            continue
        series: dict[tuple, list[tuple[float, float]]] = {}
        for (sample_name, labels), value in family["samples"].items():
            if not sample_name.endswith("_bucket"):
                continue
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"{sample_name} sample without le label")
            rest = tuple(sorted(pair for pair in labels if pair[0] != "le"))
            series.setdefault(rest, []).append(
                (float(le.replace("+Inf", "inf")), value)
            )
        for rest, buckets in series.items():
            buckets.sort()
            counts = [count for _, count in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    f"{name}{dict(rest)} bucket counts are not cumulative"
                )
            if buckets[-1][0] != math.inf:
                raise ValueError(f"{name}{dict(rest)} is missing the +Inf bucket")
            count_key = (f"{name}_count", rest)
            if count_key in family["samples"] and (
                family["samples"][count_key] != buckets[-1][1]
            ):
                raise ValueError(
                    f"{name}{dict(rest)} _count disagrees with the +Inf bucket"
                )
    return families
