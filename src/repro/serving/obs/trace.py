"""Request tracing: ids, per-stage spans, and a ring buffer of recent traces.

A :class:`Trace` follows one request across layers — HTTP dispatch,
admission coalescing, snapshot pinning, backend selection, WAL append —
without threading a context argument through every call: the active
trace rides a :mod:`contextvars` context variable, which is per-thread
under ``ThreadingHTTPServer`` (each request runs in its own handler
thread), so :func:`trace_span` and :func:`annotate` called deep inside
:class:`~repro.serving.service.QueryService` attach to the right
request automatically and cost one context-var read when no trace is
active (the in-process, non-HTTP path).

The request id is the correlation key: ``X-Request-Id`` is taken from
the request when the caller supplied one (the
:class:`~repro.serving.http.client.ServingClient` generates one per
logical request and re-sends the *same* id on every retry/failover
attempt), generated server-side otherwise, echoed on every response and
error envelope, and recorded in the server's :class:`TraceBuffer` —
``GET /debug/traces`` serves the buffer, so one id can be followed from
the client's attempt log to the handling worker's span breakdown.

Cross-thread annotation is part of the design: a coalescing leader
executes on behalf of its followers and stamps the group id and member
request ids onto *their* traces, so every trace lock-protects its
mutable state.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager

# The correlation header.  Lives here (not protocol.py) so non-HTTP
# layers can import it without pulling in the wire module.
REQUEST_ID_HEADER = "X-Request-Id"

# Caller-supplied ids are truncated to this, so a hostile header cannot
# bloat the trace buffer or the journal.
MAX_REQUEST_ID_CHARS = 128


def new_request_id() -> str:
    """A fresh 32-hex-char request id (uuid4, no dashes)."""
    return uuid.uuid4().hex


def clean_request_id(raw: str | None) -> str | None:
    """Sanitize a caller-supplied id: strip, bound, reject empties.

    Ids with control characters are rejected outright (``None``) — the
    id is echoed into a response header, so a ``\\r\\n`` smuggled into
    it must never survive to :func:`_send_bytes`.
    """
    if not raw:
        return None
    cleaned = raw.strip()[:MAX_REQUEST_ID_CHARS]
    if not cleaned or not cleaned.isprintable():
        return None
    return cleaned


_CURRENT: contextvars.ContextVar["Trace | None"] = contextvars.ContextVar(
    "repro_current_trace", default=None
)


def current_trace() -> "Trace | None":
    """The trace of the request running on this thread, if any."""
    return _CURRENT.get()


def set_current(trace: "Trace | None") -> contextvars.Token:
    return _CURRENT.set(trace)


def reset_current(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


@contextmanager
def trace_span(name: str, **meta):
    """Record a named stage span on the current trace (no-op without one).

    Yields the :class:`Span` (or ``None``), so callers can attach
    result-dependent metadata::

        with trace_span("select") as span:
            result = backend.top_k(...)
            if span is not None:
                span.meta["n"] = len(result)
    """
    trace = _CURRENT.get()
    if trace is None:
        yield None
        return
    with trace.span(name, **meta) as span:
        yield span


def annotate(**fields) -> None:
    """Attach key/value annotations to the current trace (no-op without one)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.annotate(**fields)


class Span:
    """One timed stage inside a trace; offsets are relative to trace start."""

    __slots__ = ("name", "start_ms", "duration_ms", "meta")

    def __init__(self, name: str, start_ms: float, meta: dict) -> None:
        self.name = name
        self.start_ms = start_ms
        self.duration_ms: float | None = None  # None while still open
        self.meta = meta

    def as_dict(self) -> dict:
        entry = {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": (
                round(self.duration_ms, 3) if self.duration_ms is not None else None
            ),
        }
        if self.meta:
            entry["meta"] = dict(self.meta)
        return entry


class Trace:
    """The spans and annotations of one request, keyed by its request id."""

    def __init__(self, request_id: str, endpoint: str, *, method: str = "") -> None:
        self.request_id = request_id
        self.endpoint = endpoint
        self.method = method
        self.started_at = time.time()  # wall clock, for operators
        self._t0 = time.perf_counter()  # monotonic, for span offsets
        self.spans: list[Span] = []
        self.annotations: dict = {}
        self.status: int | None = None
        self.duration_ms: float | None = None
        self._lock = threading.Lock()

    def annotate(self, **fields) -> None:
        with self._lock:
            self.annotations.update(fields)

    @contextmanager
    def span(self, name: str, **meta):
        span = Span(name, (time.perf_counter() - self._t0) * 1e3, meta)
        with self._lock:
            self.spans.append(span)
        try:
            yield span
        finally:
            span.duration_ms = (
                (time.perf_counter() - self._t0) * 1e3 - span.start_ms
            )

    def finish(self, status: int) -> float:
        """Seal the trace with its response status; returns duration in s."""
        duration_s = time.perf_counter() - self._t0
        with self._lock:
            self.status = status
            self.duration_ms = duration_s * 1e3
        return duration_s

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "request_id": self.request_id,
                "endpoint": self.endpoint,
                "method": self.method,
                "started_at": round(self.started_at, 6),
                "status": self.status,
                "duration_ms": (
                    round(self.duration_ms, 3)
                    if self.duration_ms is not None
                    else None
                ),
                "spans": [span.as_dict() for span in self.spans],
                "annotations": dict(self.annotations),
            }


class TraceBuffer:
    """A bounded, thread-safe ring of finished traces (newest first)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._added = 0

    def add(self, trace_dict: dict) -> None:
        with self._lock:
            self._ring.append(trace_dict)
            self._added += 1

    def snapshot(self) -> list[dict]:
        """Recent traces, newest first."""
        with self._lock:
            return list(reversed(self._ring))

    def find(self, request_id: str) -> dict | None:
        with self._lock:
            for trace in reversed(self._ring):
                if trace.get("request_id") == request_id:
                    return trace
        return None

    @property
    def total_added(self) -> int:
        with self._lock:
            return self._added
