"""Observability: request tracing, a metrics registry, an ops journal.

Three pillars, one package, zero dependencies beyond the stdlib:

- :mod:`~repro.serving.obs.trace` — per-request :class:`Trace`/
  :class:`Span` contexts keyed by ``X-Request-Id``, propagated via a
  context variable so every layer annotates the right request, plus the
  :class:`TraceBuffer` behind ``GET /debug/traces``;
- :mod:`~repro.serving.obs.metrics` — :class:`MetricsRegistry` with
  counters, gauges, and fixed-bucket histograms whose cells are all
  sum-mergeable across a worker fleet, rendered as JSON or Prometheus
  text exposition;
- :mod:`~repro.serving.obs.journal` — the append-only JSONL
  :class:`EventJournal` (``<root>/events.jsonl``) recording publishes,
  checkpoints, GC, worker lifecycle, fsck repairs, and drains, read by
  ``repro events`` / ``repro stat``.
"""

from repro.serving.obs.journal import (
    EventJournal,
    follow_events,
    read_events,
    summarize_events,
)
from repro.serving.obs.metrics import (
    LATENCY_BUCKETS,
    TEXT_CONTENT_TYPE,
    MetricsRegistry,
    merge_dicts,
    parse_text,
    render_text_from_dict,
)
from repro.serving.obs.trace import (
    MAX_REQUEST_ID_CHARS,
    REQUEST_ID_HEADER,
    Trace,
    TraceBuffer,
    annotate,
    clean_request_id,
    current_trace,
    new_request_id,
    trace_span,
)

__all__ = [
    "EventJournal",
    "follow_events",
    "read_events",
    "summarize_events",
    "LATENCY_BUCKETS",
    "TEXT_CONTENT_TYPE",
    "MetricsRegistry",
    "merge_dicts",
    "parse_text",
    "render_text_from_dict",
    "MAX_REQUEST_ID_CHARS",
    "REQUEST_ID_HEADER",
    "Trace",
    "TraceBuffer",
    "annotate",
    "clean_request_id",
    "current_trace",
    "new_request_id",
    "trace_span",
]
