"""Command-line interface: generate data, embed graphs, evaluate tasks.

Usage::

    python -m repro.cli generate --dataset cora_sim --out graph.npz
    python -m repro.cli embed --graph graph.npz --out emb.npz --k 64 --threads 4
    python -m repro.cli evaluate --graph graph.npz --task link --k 64
    python -m repro.cli serve --store store/ --publish emb.npz
    python -m repro.cli serve --store store/ --publish emb.npz --shards 4
    python -m repro.cli serve --store store/ --http 8080
    python -m repro.cli query --store store/ --node 0 --k 5
    python -m repro.cli bench-http --url http://127.0.0.1:8080 --requests 512
    python -m repro.cli datasets

``query`` auto-detects sharded store roots (created with ``serve
--shards N``) and scatter-gathers across the segments.  ``serve --http
PORT`` exposes the store over the JSON HTTP API (see
``docs/SERVING.md``); ``bench-http`` is the matching client-side load
generator.

The CLI wraps the same public API the examples use; it exists so the
embedding pipeline can run without writing Python.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.eval.datasets import DATASETS, load_dataset

    for name, spec in DATASETS.items():
        graph = load_dataset(name)
        print(
            f"{name:15s} ({spec.paper_name:9s} analogue, {spec.scale}) "
            f"n={graph.n_nodes} m={graph.n_edges} d={graph.n_attributes} "
            f"|L|={graph.n_labels} — {spec.description}"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.eval.datasets import load_dataset
    from repro.graph.io import save_npz

    graph = load_dataset(args.dataset)
    save_npz(graph, args.out)
    print(f"wrote {args.out}: {graph.summary()}")
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    from repro.core.pane import PANE
    from repro.graph.io import load_npz

    graph = load_npz(args.graph)
    model = PANE(
        k=args.k,
        alpha=args.alpha,
        epsilon=args.epsilon,
        n_threads=args.threads,
        seed=args.seed,
        ccd_block_size=args.ccd_block_size,
    )
    embedding = model.fit(graph, compute_objective=True)
    embedding.save(args.out)
    timings = ", ".join(f"{k}={v:.2f}s" for k, v in embedding.timings.items())
    print(f"wrote {args.out}: objective={embedding.objective:.2f} ({timings})")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.pane import PANE
    from repro.graph.io import load_npz

    graph = load_npz(args.graph)
    model = PANE(
        k=args.k,
        n_threads=args.threads,
        seed=args.seed,
        ccd_block_size=args.ccd_block_size,
    )

    if args.task == "link":
        from repro.tasks.link_prediction import LinkPredictionTask

        result = LinkPredictionTask(graph, seed=args.seed).evaluate(model)
        print(f"link prediction: AUC={result.auc:.3f} AP={result.ap:.3f}")
    elif args.task == "attribute":
        from repro.tasks.attribute_inference import AttributeInferenceTask

        result = AttributeInferenceTask(graph, seed=args.seed).evaluate(model)
        print(f"attribute inference: AUC={result.auc:.3f} AP={result.ap:.3f}")
    else:
        from repro.tasks.node_classification import NodeClassificationTask

        if graph.labels is None:
            print("error: graph has no labels", file=sys.stderr)
            return 2
        task = NodeClassificationTask(
            graph, train_fractions=(0.1, 0.5, 0.9), n_repeats=2, seed=args.seed
        )
        result = task.evaluate(model)
        for fraction, micro, macro in zip(
            result.train_fractions, result.micro, result.macro
        ):
            print(
                f"classification @ {fraction:.0%} train: "
                f"micro-F1={micro:.3f} macro-F1={macro:.3f}"
            )
    return 0


def _cmd_neighbors(args: argparse.Namespace) -> int:
    from repro.core.pane import PANEEmbedding
    from repro.search.knn import top_k_similar

    embedding = PANEEmbedding.load(args.embedding)
    features = embedding.node_embeddings()
    neighbors, similarities = top_k_similar(features, args.node, args.k)
    for node, similarity in zip(neighbors, similarities):
        print(f"{node}\t{similarity:.4f}")
    return 0


def _open_store(root: str, *, shards: int = 0, partition: str | None = None):
    """A plain or sharded store handle for ``root``.

    Existing sharded roots are auto-detected (their ``sharding.json`` is
    authoritative); ``--shards N`` creates a new sharded root.  A layout
    request that conflicts with an existing store — shards on a plain
    store, or a different shard count / partitioning on a sharded one —
    is an error rather than a silent reinterpretation.
    """
    from repro.serving.sharding.store import ShardedEmbeddingStore
    from repro.serving.store import EmbeddingStore

    if ShardedEmbeddingStore.is_sharded_root(root):
        # Forward any explicit layout request so the store's own conflict
        # checks fire instead of quietly serving the recorded layout.
        return ShardedEmbeddingStore(
            root, n_shards=shards or None, partition=partition
        )
    if partition is not None and shards == 0:
        raise ValueError(
            "--partition only applies to sharded stores; pass --shards N "
            "to create one (or point --store at an existing sharded root)"
        )
    if shards > 0:
        from pathlib import Path

        if (Path(root) / "versions").is_dir():
            raise ValueError(
                f"{root} is an existing unsharded store; --shards only "
                "applies when creating a new store root"
            )
        return ShardedEmbeddingStore(root, n_shards=shards, partition=partition)
    return EmbeddingStore(root)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.sharding.store import ShardedEmbeddingStore

    try:
        store = _open_store(
            args.store, shards=args.shards, partition=args.partition
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sharded = isinstance(store, ShardedEmbeddingStore)
    layout = f" [{store.n_shards} {store.partition} shards]" if sharded else ""
    if args.publish:
        from repro.core.pane import PANEEmbedding

        embedding = PANEEmbedding.load(args.publish)
        version = store.publish(embedding)
        manifest = store.manifest(version)
        from repro.serving.obs.journal import EventJournal

        EventJournal(args.store).emit(
            "publish",
            version=version,
            source="cli",
            n_nodes=manifest["n_nodes"],
        )
        print(
            f"published {version}{layout}: n={manifest['n_nodes']} "
            f"d={manifest['n_attributes']} k={manifest['k']}"
        )
    if args.rollback:
        try:
            version = store.rollback()
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"rolled back to {version}")
    if args.http is not None:
        return _serve_http(store, args)
    if not args.publish and not args.rollback:
        latest = store.latest()
        versions = store.versions()
        if not versions:
            print(f"store {args.store}{layout}: empty")
        for name in versions:
            marker = " (latest)" if name == latest else ""
            manifest = store.manifest(name)
            print(
                f"{name}{marker}{layout}: n={manifest['n_nodes']} "
                f"d={manifest['n_attributes']} k={manifest['k']}"
            )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    """Check (and with --repair, recover) a store root and/or a delta log.

    Exit codes are the contract scripts build on: 0 = clean, 1 = issues
    found and all of them repairable (repaired when --repair was given),
    2 = unrecoverable (not a store, or no clean version survives).  When
    both --store and --wal are checked the exit code is the worse of the
    two sweeps.
    """
    import json as json_module

    from repro.serving.fsck import fsck, fsck_wal
    from repro.serving.obs.journal import EventJournal

    if args.store is None and args.wal is None:
        print("error: pass --store and/or --wal", file=sys.stderr)
        return 2

    def _verdict(report) -> str:
        if report.clean:
            return "clean"
        if report.unrecoverable:
            return "unrecoverable"
        return "repaired" if report.repaired else "repairable (run --repair)"

    def _print_issues(report) -> None:
        for issue in report.issues:
            tag = "" if issue.repairable else " [unrecoverable]"
            print(f"{issue.code}{tag}: {issue.detail}")
        for action in report.actions:
            print(f"repair: {action}")

    reports: dict[str, dict] = {}
    code = 0
    if args.store is not None:
        journal = EventJournal(args.store) if args.repair else None
        report = fsck(args.store, repair=args.repair, journal=journal)
        reports["store"] = report.as_dict()
        code = max(code, report.exit_code())
        if not args.json:
            _print_issues(report)
            print(
                f"{args.store}: {_verdict(report)} — "
                f"{len(report.clean_versions)} clean / "
                f"{len(report.corrupt_versions)} corrupt version(s), "
                f"latest={report.latest}"
            )
    if args.wal is not None:
        # Repairs journal into the *store* when one was named alongside
        # --wal, so the fleet's events.jsonl holds the full story.
        journal = (
            EventJournal(args.store or args.wal) if args.repair else None
        )
        report = fsck_wal(args.wal, repair=args.repair, journal=journal)
        reports["wal"] = report.as_dict()
        code = max(code, report.exit_code())
        if not args.json:
            _print_issues(report)
            print(
                f"{args.wal}: {_verdict(report)} — "
                f"{len(report.clean_versions)} readable / "
                f"{len(report.corrupt_versions)} damaged segment(s), "
                f"last valid {report.latest or 'lsn=0'}"
            )
    if args.json:
        payload = reports[next(iter(reports))] if len(reports) == 1 else reports
        print(json_module.dumps(payload, indent=2))
    return code


def _cmd_log(args: argparse.Namespace) -> int:
    """Inspect a delta-log directory without touching it.

    Read-only on purpose: opening a :class:`DeltaLog` performs torn-tail
    recovery (it truncates), which an *inspection* command must never
    do.  Exit 0 on a readable log, 1 when damage is visible (run
    ``repro fsck --wal`` to repair), 2 when the directory is not a log.
    """
    import json as json_module
    from pathlib import Path

    from repro.serving.wal.compactor import CHECKPOINT_FILE
    from repro.serving.wal.log import fold_records, scan_segment

    root = Path(args.wal_dir)
    segments = sorted(root.glob("*.wal")) if root.is_dir() else []
    checkpoint_path = root / CHECKPOINT_FILE
    if not segments and not checkpoint_path.exists():
        print(f"error: {root} is not a delta-log directory", file=sys.stderr)
        return 2

    checkpoint = None
    if checkpoint_path.exists():
        try:
            raw = json_module.loads(checkpoint_path.read_text())
            checkpoint = {"lsn": raw.get("lsn"), "graph": raw.get("graph")}
        except (OSError, ValueError):
            checkpoint = {"error": "unreadable"}

    records = []
    infos = []
    damaged = False
    for path in segments:
        segment_records, info = scan_segment(path)
        records.extend(segment_records)
        infos.append(info)
        damaged = damaged or info.error is not None

    payload: dict = {
        "wal_dir": str(root),
        "checkpoint": checkpoint,
        "n_segments": len(infos),
        "n_records": len(records),
        "first_lsn": records[0].lsn if records else 0,
        "last_lsn": records[-1].lsn if records else 0,
        "size_bytes": sum(info.size_bytes for info in infos),
        "damaged": damaged,
        "segments": [info.as_dict() for info in infos],
    }
    if args.replay:
        delta = fold_records(records, directed=not args.undirected)
        payload["replay"] = {
            "records_folded": len(records),
            "add_edges": 0 if delta.add_edges is None else len(delta.add_edges),
            "remove_edges": 0 if delta.remove_edges is None else len(delta.remove_edges),
            "add_associations": 0
            if delta.add_associations is None
            else len(delta.add_associations),
            "remove_associations": 0
            if delta.remove_associations is None
            else len(delta.remove_associations),
        }
    if args.json:
        print(json_module.dumps(payload, indent=2))
        return 1 if damaged else 0

    base = f"checkpoint lsn={checkpoint['lsn']}" if checkpoint else "no checkpoint"
    print(
        f"{root}: {payload['n_segments']} segment(s), "
        f"{payload['n_records']} record(s) "
        f"[{payload['first_lsn']}..{payload['last_lsn']}], "
        f"{payload['size_bytes']} bytes, {base}"
    )
    for info in infos:
        status = f" DAMAGED ({info.error})" if info.error else ""
        print(
            f"  {Path(info.path).name}: lsn {info.first_lsn}.."
            f"{info.last_lsn} ({info.n_records} records, "
            f"{info.size_bytes} bytes){status}"
        )
    if args.replay:
        replay = payload["replay"]
        print(
            f"  replay folds to: +{replay['add_edges']}/-{replay['remove_edges']} "
            f"edges, +{replay['add_associations']}/-{replay['remove_associations']} "
            "associations"
        )
    if damaged:
        print("run `repro fsck --wal` to repair", file=sys.stderr)
        return 1
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    """Delete store versions superseded by newer ones (``repro gc``).

    Versions pinned by a dataset name (``repro dataset assign``) are
    never deleted, whatever ``--keep`` says.
    """
    import json as json_module

    from repro.serving.datasets import retain

    from repro.serving.sharding.store import ShardedEmbeddingStore

    try:
        store = _open_store(args.store)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if isinstance(store, ShardedEmbeddingStore):
        print(
            "error: gc supports unsharded stores only (logical versions "
            "pin per-shard segment versions)",
            file=sys.stderr,
        )
        return 2
    try:
        result = retain(store, keep=args.keep, dry_run=args.dry_run)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json_module.dumps(result, indent=2))
        return 0
    verb = "would delete" if args.dry_run else "deleted"
    print(
        f"{args.store}: {verb} {len(result['deleted'])} version(s) "
        f"({result['reclaimed_bytes']} bytes), kept {len(result['kept'])}"
    )
    for version in result["deleted"]:
        print(f"  - {version}")
    for version in result["protected"]:
        print(f"  pinned by a dataset: {version}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    """Named datasets: ``repro dataset list/assign/drop/diff/retain``."""
    import json as json_module

    from repro.serving.datasets import (
        DatasetError,
        DatasetRegistry,
        diff_versions,
        retain,
    )

    try:
        store = _open_store(args.store)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    registry = DatasetRegistry(store)
    try:
        if args.dataset_command == "list":
            rows = registry.list_rows()
            if args.json:
                print(json_module.dumps(rows, indent=2))
                return 0
            if not rows:
                print("no datasets")
                return 0
            for row in rows:
                mark = "" if row["exists"] else "  [MISSING VERSION]"
                latest = "  (latest)" if row["is_latest"] else ""
                lsn = (
                    f"  lsn={row['applied_lsn']}"
                    if row.get("applied_lsn") is not None
                    else ""
                )
                print(f"{row['name']}\t{row['version']}{lsn}{latest}{mark}")
            return 0
        if args.dataset_command == "assign":
            version = args.version or store.latest()
            if version is None:
                print("error: store has no versions", file=sys.stderr)
                return 2
            registry.assign(args.name, version, note=args.note)
            print(f"{args.name} -> {version}")
            return 0
        if args.dataset_command == "drop":
            entry = registry.remove(args.name)
            print(f"dropped {args.name} (was {entry['version']})")
            return 0
        if args.dataset_command == "diff":
            from repro.serving.wal.log import LogReader

            # Read-only view: diffing must never trigger the torn-tail
            # truncation a DeltaLog open performs.
            report, _ = diff_versions(
                store,
                LogReader(args.wal_dir),
                args.ref_a,
                args.ref_b,
                directed=not args.undirected,
            )
            if args.json:
                print(json_module.dumps(report, indent=2))
                return 0
            span = report["lsn_range"]
            window = f"LSNs {span[0]}..{span[1]}" if span else "no new records"
            print(
                f"{report['from']['version']} -> {report['to']['version']} "
                f"({window})"
            )
            for kind, count in report["events"].items():
                if count:
                    print(f"  {kind}: {count}")
            print(f"  changed nodes: {report['n_changed_nodes']}")
            return 0
        # retain
        result = retain(store, keep=args.keep, dry_run=args.dry_run)
        if args.json:
            print(json_module.dumps(result, indent=2))
            return 0
        verb = "would delete" if args.dry_run else "deleted"
        print(
            f"{verb} {len(result['deleted'])} version(s), "
            f"kept {len(result['kept'])}, "
            f"{len(result['protected'])} pinned by datasets"
        )
        return 0
    except DatasetError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _serve_supervised(store, args: argparse.Namespace) -> int:
    """Serve through the pre-fork supervisor (``--workers N``, N >= 2)."""
    from repro.serving.http import Supervisor, SupervisorConfig

    config = SupervisorConfig(
        store=args.store,
        n_workers=args.workers,
        host=args.http_host,
        port=args.http,
        backend=args.backend,
        nprobe=args.nprobe,
        threads=args.threads,
        coalesce_window_ms=args.coalesce_window_ms,
        coalesce_max_batch=args.coalesce_max_batch,
        select_dtype=args.select_dtype,
        drain_timeout_s=args.drain_timeout,
        log_requests=args.log_requests,
        slow_query_ms=args.slow_query_ms,
        max_restarts=args.max_restarts,
        wal_dir=args.wal_dir,
        graph=args.graph,
        wal_max_bytes=args.wal_max_bytes,
        compact_interval_s=args.compact_interval,
        gc_keep=args.gc_keep,
        bootstrap_k=args.wal_k,
        ack_replicas=args.ack_replicas,
        ack_timeout_s=args.ack_timeout,
    )
    supervisor = Supervisor(config)
    supervisor.start()
    # Same parsable "on <url>" shape as the single-process boot line, so
    # existing wrappers discover the data-plane port unchanged.
    print(
        f"serving {args.store} [{args.workers} workers] on {supervisor.url} "
        f"admin={supervisor.admin_url}",
        flush=True,
    )
    code = supervisor.wait()
    if code == 0:
        print("drained and stopped", flush=True)
    return code


def _serve_http(store, args: argparse.Namespace) -> int:
    """Block serving the store over HTTP until SIGTERM/SIGINT.

    The server owns a :class:`QueryService` built from the CLI knobs and
    drains gracefully on shutdown: in-flight requests complete, late
    arrivals get a structured 503.  With ``--workers N`` (N >= 2) the
    pre-fork :class:`~repro.serving.http.Supervisor` takes over instead.
    """
    from repro.serving.http import EmbeddingServer
    from repro.serving.obs.journal import EventJournal
    from repro.serving.service import QueryService

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.standby_of is not None:
        if args.wal_dir is None:
            print(
                "error: --standby-of needs --wal-dir (the standby keeps "
                "its own durable copy of the log)",
                file=sys.stderr,
            )
            return 2
        if args.workers > 1:
            print(
                "error: --standby-of requires --workers 1 (replication "
                "is owned by the serving process)",
                file=sys.stderr,
            )
            return 2
        if args.ack_replicas:
            print(
                "error: --ack-replicas is a primary-side knob; a standby "
                "takes no client writes to ack",
                file=sys.stderr,
            )
            return 2
    if args.workers > 1:
        # The supervisor owns the write path in multi-worker mode (one
        # log writer per deployment); don't open the WAL here too.
        if store.latest() is None and args.wal_dir is None:
            print("error: store has no published versions", file=sys.stderr)
            return 2
        return _serve_supervised(store, args)
    pipeline = compactor = None
    if args.wal_dir is not None:
        # The write path boots before the query service: a cold
        # bootstrap publishes the first version the service will open.
        from repro.serving.wal.compactor import Compactor, IngestPipeline

        pipeline = IngestPipeline(
            args.wal_dir, store, max_bytes=args.wal_max_bytes
        )
        try:
            pipeline.ensure_ready(args.graph, k=args.wal_k)
        except Exception as error:
            print(f"error: {error}", file=sys.stderr)
            pipeline.close()
            return 2
    if store.latest() is None:
        print("error: store has no published versions", file=sys.stderr)
        return 2
    if args.coalesce_window_ms > 0 and args.coalesce_max_batch < 1:
        # Reject up front: the coalescer would raise a bare ValueError
        # from deep inside QueryService.make_coalescer otherwise.
        print(
            f"error: --coalesce-max-batch must be >= 1, "
            f"got {args.coalesce_max_batch}",
            file=sys.stderr,
        )
        return 2
    try:
        with QueryService(
            store,
            backend=args.backend,
            nprobe=args.nprobe,
            n_threads=args.threads,
            index_cache=True,
            select_dtype=args.select_dtype,
        ) as service:
            journal = EventJournal(args.store)
            if pipeline is not None:
                # Reads in this process follow the write path: each
                # compacted version is atomically activated on the service.
                pipeline.bind_service(service)
                compactor = Compactor(
                    pipeline,
                    interval_s=args.compact_interval,
                    keep_versions=args.gc_keep,
                    journal=journal,
                )
                compactor.start()
            replicator = None
            if args.standby_of is not None:
                import os as os_module
                import socket as socket_module

                from repro.serving.wal.replication import StandbyReplicator

                standby_id = args.standby_id or (
                    f"{socket_module.gethostname()}-{os_module.getpid()}"
                )
                replicator = StandbyReplicator(
                    args.standby_of,
                    pipeline.log,
                    standby_id=standby_id,
                    journal=journal,
                )
            server = EmbeddingServer(
                service,
                host=args.http_host,
                port=args.http,
                drain_timeout_s=args.drain_timeout,
                coalesce_window_s=args.coalesce_window_ms / 1e3,
                coalesce_max_batch=args.coalesce_max_batch,
                log=args.log_requests,
                ingest=pipeline,
                compactor=compactor,
                slow_query_ms=args.slow_query_ms,
                journal=journal,
                replicator=replicator,
                ack_replicas=args.ack_replicas,
                ack_timeout_s=args.ack_timeout,
            )
            if replicator is not None:
                replicator.start()
            wal = f" wal={args.wal_dir}" if pipeline is not None else ""
            role = (
                f" standby-of={args.standby_of}"
                if replicator is not None
                else ""
            )
            # One parsable line so wrappers (CI smoke, scripts) can discover
            # the bound port when --http 0 asked for an ephemeral one.
            print(
                f"serving {args.store} [{service.describe()['backend_kind']}]"
                f"{wal}{role} on {server.url}",
                flush=True,
            )
            drained = server.run()
            if compactor is not None:
                compactor.stop()
                compactor = None
            if drained:
                print("drained and stopped", flush=True)
                return 0
            print(
                "error: drain timed out; in-flight requests were abandoned",
                file=sys.stderr,
                flush=True,
            )
            return 1
    finally:
        if compactor is not None:
            compactor.stop()
        if pipeline is not None:
            pipeline.close()


def _parse_since(raw: str | None) -> float | None:
    """``--since``: a unix timestamp, or a relative ``30s``/``5m``/``2h``."""
    import time as time_module

    if raw is None:
        return None
    text = raw.strip()
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    if text and text[-1].lower() in units:
        return time_module.time() - float(text[:-1]) * units[text[-1].lower()]
    return float(text)


def _format_event(event: dict) -> str:
    import time as time_module

    ts = event.get("ts")
    stamp = (
        time_module.strftime("%H:%M:%S", time_module.localtime(ts))
        if isinstance(ts, (int, float))
        else "--:--:--"
    )
    kind = event.get("kind", "?")
    rest = " ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("ts", "kind")
    )
    return f"{stamp} {kind:<16s} {rest}"


def _cmd_events(args: argparse.Namespace) -> int:
    """Print (or tail, with --follow) the ops event journal."""
    import json as json_module

    from repro.serving.obs.journal import follow_events, read_events

    try:
        since = _parse_since(args.since)
    except ValueError:
        print(f"error: cannot parse --since {args.since!r}", file=sys.stderr)
        return 2
    kinds = frozenset(args.kind) if args.kind else None
    source = (
        follow_events(args.store, kinds=kinds, since=since)
        if args.follow
        else read_events(args.store, kinds=kinds, since=since)
    )
    seen = 0
    try:
        for event in source:
            seen += 1
            if args.json:
                print(json_module.dumps(event), flush=True)
            else:
                print(_format_event(event), flush=True)
    except KeyboardInterrupt:
        return 0
    if seen == 0 and not args.follow:
        print("no matching events", file=sys.stderr)
    return 0


def _cmd_stat(args: argparse.Namespace) -> int:
    """One-shot fleet summary: journal roll-up plus live server metrics."""
    import json as json_module

    from repro.serving.obs.journal import summarize_events

    summary = summarize_events(args.store)
    metrics = None
    if args.url:
        from repro.serving.http import ApiError, ServingClient

        try:
            metrics = ServingClient(args.url, timeout_s=args.timeout).metrics()
        except (ApiError, OSError) as error:
            print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
            if args.json:
                print(json_module.dumps({"journal": summary}, indent=2))
            return 2
    if args.json:
        payload = {"journal": summary}
        if metrics is not None:
            payload["metrics"] = metrics
        print(json_module.dumps(payload, indent=2))
        return 0
    print(f"{args.store}: {summary['events']} journal event(s)")
    for kind in sorted(summary["kinds"]):
        last = summary["last_by_kind"][kind]
        print(f"  {kind:<16s} x{summary['kinds'][kind]:<5d} last: "
              f"{_format_event(last)}")
    if metrics is not None:
        supervisor = metrics.get("supervisor")
        if supervisor is not None:
            print(
                f"fleet: {supervisor.get('n_reporting')}/"
                f"{supervisor.get('n_workers')} workers reporting, "
                f"{supervisor.get('restarts_total')} restart(s)"
            )
        aggregate = metrics.get("aggregate") or metrics.get("server") or {}
        http = aggregate.get("http") or {}
        if http:
            print(
                f"http: {http.get('queries', 0)} queries, "
                f"{http.get('cache_hits', 0)} cache hits"
            )
        ingest = metrics.get("ingest")
        if ingest is not None:
            print(
                f"ingest: durable lsn={ingest.get('lsn_durable')} "
                f"served lsn={ingest.get('lsn_served')} "
                f"lag={ingest.get('lag')}"
            )
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    """Promote a standby to primary via ``POST /admin/promote``.

    Exit 0 on success, 1 when the server refused (e.g. the requested
    epoch is stale), 2 when it cannot be reached.
    """
    import json as json_module

    from repro.serving.http import ApiError, ServingClient, ServingUnavailable

    client = ServingClient(args.url, retries=0, timeout_s=args.timeout)
    try:
        ack = client.promote(epoch=args.epoch)
    except ApiError as error:
        print(f"error: promote refused: {error}", file=sys.stderr)
        return 1
    except (ServingUnavailable, OSError) as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json_module.dumps(ack, indent=2))
        return 0
    print(
        f"promoted {args.url}: {ack.get('previous_role')} -> "
        f"{ack.get('role')} at epoch {ack.get('epoch')} "
        f"(durable lsn {ack.get('lsn_durable')})"
    )
    return 0


def _cmd_bench_http(args: argparse.Namespace) -> int:
    """Client-side load generator against running embedding servers."""
    from repro.serving.http import ApiError, ServingClient, run_load

    client = ServingClient(args.url, timeout_s=args.timeout)
    try:
        n_nodes = args.nodes or int(client.describe()["n_nodes"])
    except (ApiError, OSError) as error:
        print(f"error: cannot reach server: {error}", file=sys.stderr)
        return 2
    report = run_load(
        args.url,
        n_nodes=n_nodes,
        requests=args.requests,
        concurrency=args.concurrency,
        k=args.k,
        nprobe=args.nprobe,
        batch=args.batch,
        timeout_s=args.timeout,
        seed=args.seed,
        wire=args.wire,
    )
    shape = f"batch={args.batch}" if args.batch else "single"
    per_query = (
        f" ({report.per_query_p50_ms:.2f}ms/query p50)" if args.batch else ""
    )
    print(
        f"{report.requests} requests ({shape}, c={report.concurrency}, "
        f"wire={args.wire}) in "
        f"{report.seconds:.2f}s: {report.qps:.0f} req/s "
        f"({report.query_qps:.0f} queries/s)  "
        f"p50={report.p50_ms:.2f}ms p99={report.p99_ms:.2f}ms{per_query} "
        f"errors={report.errors}"
    )
    for message in report.error_messages[:5]:
        print(f"  error: {message}", file=sys.stderr)
    return 0 if report.errors == 0 else 1


def _parse_query_filter(args: argparse.Namespace):
    """The ``--filter-*`` flags → a NodeFilter (or ``None``)."""
    import json as json_module

    from repro.search.knn import NodeFilter

    flag_filters = (args.filter_allow, args.filter_deny, args.filter_attribute)
    if args.filter_json is not None:
        if any(value is not None for value in flag_filters):
            raise ValueError(
                "--filter-json is exclusive with the other --filter-* flags"
            )
        return NodeFilter.from_json(json_module.loads(args.filter_json))
    if all(value is None for value in flag_filters):
        return None

    def ids(raw):
        return (
            None
            if raw is None
            else [int(part) for part in raw.split(",") if part.strip()]
        )

    attributes = []
    for spec in args.filter_attribute or ():
        attr, _, min_weight = spec.partition(":")
        attributes.append((int(attr), float(min_weight) if min_weight else 0.0))
    return NodeFilter(
        allow=ids(args.filter_allow),
        deny=ids(args.filter_deny),
        attributes=attributes,
    )


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serving.service import QueryService, SearchRequest

    store = _open_store(args.store)
    if store.latest() is None:
        print("error: store has no published versions", file=sys.stderr)
        return 2
    try:
        node_filter = _parse_query_filter(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with QueryService(
        store,
        backend=args.backend,
        nprobe=args.nprobe,
        version=args.version,
        select_dtype=args.select_dtype,
        # Persist trained IVF/PQ artifacts into the version directory so a
        # one-shot CLI process loads them instead of retraining per query.
        index_cache=True,
    ) as service:
        if args.attribute is not None:
            if node_filter is not None:
                print(
                    "error: --filter-* does not apply to --attribute queries",
                    file=sys.stderr,
                )
                return 2
            result = service.top_nodes_for_attribute(args.attribute, args.k)
        else:
            try:
                result = service.search(
                    SearchRequest(node=args.node, k=args.k, filter=node_filter)
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        print(f"# version={result.version} latency={result.latency_s * 1e3:.2f}ms")
        for node, score in zip(result.ids, result.scores):
            if node < 0:
                continue  # IVF padding for sparsely populated probes
            print(f"{node}\t{score:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PANE attributed network embedding"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered benchmark datasets")

    generate = sub.add_parser("generate", help="materialize a dataset to .npz")
    generate.add_argument("--dataset", required=True)
    generate.add_argument("--out", required=True)

    embed = sub.add_parser("embed", help="embed a graph with PANE")
    embed.add_argument("--graph", required=True)
    embed.add_argument("--out", required=True)
    embed.add_argument("--k", type=int, default=128)
    embed.add_argument("--alpha", type=float, default=0.5)
    embed.add_argument("--epsilon", type=float, default=0.015)
    embed.add_argument("--threads", type=int, default=1)
    embed.add_argument("--seed", type=int, default=0)
    embed.add_argument(
        "--ccd-block-size",
        type=int,
        default=1,
        help="CCD kernel block size B: 1 = exact per-coordinate updates "
        "(bit-identical to the reference), B>1 = blocked rank-B GEMM sweeps",
    )

    evaluate = sub.add_parser("evaluate", help="run an evaluation protocol")
    evaluate.add_argument("--graph", required=True)
    evaluate.add_argument(
        "--task", choices=("link", "attribute", "classify"), default="link"
    )
    evaluate.add_argument("--k", type=int, default=64)
    evaluate.add_argument("--threads", type=int, default=1)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--ccd-block-size", type=int, default=1)

    neighbors = sub.add_parser(
        "neighbors", help="top-k most similar nodes from a saved embedding"
    )
    neighbors.add_argument("--embedding", required=True)
    neighbors.add_argument("--node", type=int, required=True)
    neighbors.add_argument("--k", type=int, default=10)

    serve = sub.add_parser(
        "serve", help="manage a versioned embedding store (publish/rollback/list)"
    )
    serve.add_argument("--store", required=True, help="store root directory")
    serve_action = serve.add_mutually_exclusive_group()
    serve_action.add_argument(
        "--publish", metavar="EMB_NPZ", help="publish a saved embedding as a new version"
    )
    serve_action.add_argument(
        "--rollback", action="store_true", help="point LATEST at the previous version"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="create the store root sharded across N mmap segments "
        "(0 = unsharded; existing sharded roots are auto-detected)",
    )
    serve.add_argument(
        "--partition",
        choices=("range", "hash"),
        default=None,
        help="row partitioning for a new sharded store (default range; "
        "must match the recorded layout of an existing sharded root)",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the store over the JSON HTTP API on this port "
        "(0 = ephemeral; the bound URL is printed) until SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="bind address for --http (default loopback only)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "exact", "ivf", "pq", "ivfpq"),
        default="exact",
        help="search backend behind --http (default exact; trained "
        "artifacts persist into the store version directory)",
    )
    serve.add_argument(
        "--nprobe", type=int, default=8, help="IVF cells probed per query"
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=1,
        help="worker threads for batch fan-out behind --http",
    )
    serve.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=0.0,
        help="admission-coalescing window for concurrent single-query "
        "HTTP requests (0 = off): concurrent POST /v1/topk handlers "
        "merge into one batch GEMM against a single snapshot",
    )
    serve.add_argument(
        "--coalesce-max-batch",
        type=int,
        default=64,
        help="wake the coalescing leader early once this many queued",
    )
    serve.add_argument(
        "--select-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="selection precision for exact/IVF backends: float32 "
        "selects an oversampled shortlist at half the memory traffic, "
        "then rescores in canonical float64 (returned scores unchanged)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve.add_argument(
        "--log-requests",
        action="store_true",
        help="log one line per HTTP request to stderr",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serve --http from N supervised worker processes sharing "
        "one listen socket (1 = in-process single server): crashed or "
        "hung workers are restarted with backoff, SIGTERM drains them "
        "one at a time, and a crash loop exits nonzero",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="crash-loop breaker: more than this many restarts of one "
        "worker slot inside a 30s window stops the supervisor (exit 3)",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="enable the write path: POST /v1/upsert appends to a "
        "durable delta log in DIR (acked after fsync) and a background "
        "compactor folds it into new store versions while reads flow",
    )
    serve.add_argument(
        "--graph",
        default=None,
        metavar="NPZ",
        help="base graph for --wal-dir: bootstraps an empty store "
        "(trains PANE) or attaches the write path to an existing one",
    )
    serve.add_argument(
        "--wal-k",
        type=int,
        default=32,
        help="embedding dimension when --wal-dir cold-bootstraps",
    )
    serve.add_argument(
        "--wal-max-bytes",
        type=int,
        default=64 << 20,
        help="delta-log ceiling; appends past it get 503 log_full "
        "until compaction + checkpointing shrink the log",
    )
    serve.add_argument(
        "--compact-interval",
        type=float,
        default=0.25,
        help="seconds between background compaction passes",
    )
    serve.add_argument(
        "--gc-keep",
        type=int,
        default=0,
        help="retain only the newest N store versions after each "
        "compaction (0 = never delete; LATEST and the served version "
        "are always kept)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=0.0,
        help="emit a structured slow-query log line (JSON, with the "
        "request trace) for any request slower than this; 0 disables",
    )
    serve.add_argument(
        "--standby-of",
        default=None,
        metavar="URL",
        help="run as a warm standby: tail URL's GET /v1/replicate into "
        "this node's own WAL (requires --wal-dir, --workers 1), fold "
        "and serve reads, refuse writes with 409 not_primary; promote "
        "with `repro promote`",
    )
    serve.add_argument(
        "--standby-id",
        default=None,
        metavar="ID",
        help="stable identity reported to the primary's replication "
        "hub (default: host-pid)",
    )
    serve.add_argument(
        "--ack-replicas",
        type=int,
        default=0,
        help="semi-synchronous replication: withhold each upsert ack "
        "until this many standbys confirmed the LSN (0 = ack after "
        "local fsync only)",
    )
    serve.add_argument(
        "--ack-timeout",
        type=float,
        default=5.0,
        help="seconds to wait for standby acks before answering 503 "
        "replication_timeout (the append stays durable locally)",
    )

    promote = sub.add_parser(
        "promote",
        help="promote a standby server to primary (bumps the WAL "
        "fencing epoch; stale-epoch writers are rejected from then on)",
    )
    promote.add_argument("url", help="server or supervisor-admin URL")
    promote.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="force a specific new epoch (default: bump past every "
        "epoch the node has seen)",
    )
    promote.add_argument("--timeout", type=float, default=10.0)
    promote.add_argument("--json", action="store_true")

    fsck = sub.add_parser(
        "fsck",
        help="check a store for torn publishes and corruption "
        "(exit 0 clean / 1 repairable / 2 unrecoverable)",
    )
    fsck.add_argument("--store", default=None, help="store root directory")
    fsck.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="also (or only) check a delta-log directory: torn segment "
        "tails, LSN chain breaks, checkpoint integrity; --repair "
        "truncates torn segments at the last valid record and "
        "quarantines unreachable ones",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="remove staging debris, quarantine corrupt versions under "
        "<store>/quarantine/, and repoint LATEST at the newest clean one",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of one line per issue",
    )

    log = sub.add_parser(
        "log",
        help="inspect a delta-log directory (read-only; exit 1 if damaged)",
    )
    log.add_argument(
        "--wal-dir", required=True, metavar="DIR", help="delta-log directory"
    )
    log.add_argument(
        "--replay",
        action="store_true",
        help="also fold every record and summarize the resulting delta",
    )
    log.add_argument(
        "--undirected",
        action="store_true",
        help="fold edge records with undirected (canonicalized) keys",
    )
    log.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )

    gc = sub.add_parser(
        "gc",
        help="delete store versions superseded by newer ones "
        "(LATEST is never deleted)",
    )
    gc.add_argument("--store", required=True, help="store root directory")
    gc.add_argument(
        "--keep",
        type=int,
        required=True,
        help="number of newest versions to retain (>= 1)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be deleted without touching the store",
    )
    gc.add_argument(
        "--json", action="store_true", help="print the result as JSON"
    )

    dataset = sub.add_parser(
        "dataset",
        help="named datasets over store versions: list, assign, drop, "
        "diff (WAL fold), retain (dataset-aware gc)",
    )
    dsub = dataset.add_subparsers(dest="dataset_command", required=True)
    ds_list = dsub.add_parser("list", help="list dataset names and versions")
    ds_list.add_argument("--store", required=True, help="store root directory")
    ds_list.add_argument("--json", action="store_true")
    ds_assign = dsub.add_parser(
        "assign", help="point NAME at a version (default: latest)"
    )
    ds_assign.add_argument("name")
    ds_assign.add_argument(
        "--version", default=None, help="version id (default: LATEST target)"
    )
    ds_assign.add_argument("--store", required=True, help="store root directory")
    ds_assign.add_argument("--note", default=None, help="free-form annotation")
    ds_drop = dsub.add_parser("drop", help="remove a dataset name")
    ds_drop.add_argument("name")
    ds_drop.add_argument("--store", required=True, help="store root directory")
    ds_diff = dsub.add_parser(
        "diff",
        help="fold the WAL records between two versions (old -> new); "
        "refs are dataset names or version ids",
    )
    ds_diff.add_argument("ref_a", help="older dataset name or version id")
    ds_diff.add_argument("ref_b", help="newer dataset name or version id")
    ds_diff.add_argument("--store", required=True, help="store root directory")
    ds_diff.add_argument(
        "--wal-dir", required=True, metavar="DIR", help="delta-log directory"
    )
    ds_diff.add_argument(
        "--undirected",
        action="store_true",
        help="fold edge records with undirected (canonicalized) keys",
    )
    ds_diff.add_argument("--json", action="store_true")
    ds_retain = dsub.add_parser(
        "retain",
        help="gc superseded versions; dataset-pinned versions always survive",
    )
    ds_retain.add_argument("--store", required=True, help="store root directory")
    ds_retain.add_argument(
        "--keep", type=int, required=True, help="newest versions to retain (>= 1)"
    )
    ds_retain.add_argument("--dry-run", action="store_true")
    ds_retain.add_argument("--json", action="store_true")

    query = sub.add_parser("query", help="query a published embedding store")
    query.add_argument("--store", required=True, help="store root directory")
    query.add_argument("--node", type=int, default=0, help="query node id")
    query.add_argument(
        "--attribute",
        type=int,
        default=None,
        help="rank nodes for this attribute instead of node neighbors",
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--backend",
        choices=("auto", "exact", "ivf", "pq", "ivfpq"),
        # A one-shot CLI process answers a single query and exits; exact
        # stays the default, but non-exact backends now persist their
        # trained artifacts into the store version directory on first use
        # and load them afterwards, so --backend ivf/pq only pays the
        # build once per version instead of per invocation.
        default="exact",
        help="search backend (default exact; ivf/pq/ivfpq train once per "
        "store version, persist the artifact, and reload it afterwards)",
    )
    query.add_argument(
        "--nprobe", type=int, default=8, help="IVF cells probed per query"
    )
    query.add_argument(
        "--select-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="selection precision for exact/IVF backends "
        "(see serve --select-dtype)",
    )
    query.add_argument(
        "--version", default=None, help="pin a store version (default: latest)"
    )
    query.add_argument(
        "--filter-allow",
        default=None,
        metavar="IDS",
        help="comma-separated node ids the result may contain",
    )
    query.add_argument(
        "--filter-deny",
        default=None,
        metavar="IDS",
        help="comma-separated node ids the result must not contain",
    )
    query.add_argument(
        "--filter-attribute",
        action="append",
        default=None,
        metavar="ATTR[:MIN_WEIGHT]",
        help="only nodes whose affinity for ATTR is >= MIN_WEIGHT "
        "(repeatable; conjunctive)",
    )
    query.add_argument(
        "--filter-json",
        default=None,
        metavar="OBJ",
        help="full filter as a JSON object (same grammar as the wire "
        "'filter' field; exclusive with the other --filter-* flags)",
    )

    bench_http = sub.add_parser(
        "bench-http", help="load-generate against running embedding servers"
    )
    bench_http.add_argument(
        "--url",
        action="append",
        required=True,
        help="server base URL (repeat for replicas; batches fan out)",
    )
    bench_http.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="query-id range (default: the server's n_nodes via /v1/describe)",
    )
    bench_http.add_argument("--requests", type=int, default=512)
    bench_http.add_argument("--concurrency", type=int, default=4)
    bench_http.add_argument("--k", type=int, default=10)
    bench_http.add_argument(
        "--nprobe", type=int, default=None, help="IVF cells probed per query"
    )
    bench_http.add_argument(
        "--batch",
        type=int,
        default=0,
        help="nodes per request via /v1/topk:batch (0 = single-node /v1/topk)",
    )
    bench_http.add_argument("--timeout", type=float, default=30.0)
    bench_http.add_argument("--seed", type=int, default=0)
    bench_http.add_argument(
        "--wire",
        choices=("auto", "json", "binary"),
        default="auto",
        help="client wire format: auto negotiates binary frames and "
        "falls back to JSON against older servers",
    )

    events = sub.add_parser(
        "events",
        help="print (or --follow) the ops event journal under a store root",
    )
    events.add_argument("--store", required=True, help="store root directory")
    events.add_argument(
        "--follow",
        action="store_true",
        help="replay history, then stream new events until Ctrl-C",
    )
    events.add_argument(
        "--json",
        action="store_true",
        help="one JSON object per line instead of the human format",
    )
    events.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="only events of this kind (repeatable): publish, checkpoint, "
        "gc, worker_start, worker_exit, worker_restart, breaker_trip, "
        "fsck_repair, drain, ...",
    )
    events.add_argument(
        "--since",
        default=None,
        metavar="WHEN",
        help="unix timestamp, or relative like 30s / 5m / 2h",
    )

    stat = sub.add_parser(
        "stat",
        help="one-shot fleet summary: journal roll-up + live /metrics",
    )
    stat.add_argument("--store", required=True, help="store root directory")
    stat.add_argument(
        "--url",
        default=None,
        help="also scrape /metrics from a running server or supervisor "
        "admin URL",
    )
    stat.add_argument("--timeout", type=float, default=5.0)
    stat.add_argument("--json", action="store_true")

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "embed": _cmd_embed,
    "evaluate": _cmd_evaluate,
    "neighbors": _cmd_neighbors,
    "serve": _cmd_serve,
    "promote": _cmd_promote,
    "fsck": _cmd_fsck,
    "log": _cmd_log,
    "gc": _cmd_gc,
    "dataset": _cmd_dataset,
    "query": _cmd_query,
    "bench-http": _cmd_bench_http,
    "events": _cmd_events,
    "stat": _cmd_stat,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
