"""LQANR — low-bit quantized attributed network representation (IJCAI 2019).

Factorizes an averaged multi-hop proximity ``M = Σ_{i≤q} (Â)^i / q`` fused
with propagated attributes, then quantizes the embedding to the
``{−2^b, …, −1, 0, 1, …, 2^b}`` grid with a learned global scale — the
space/accuracy trade-off knob of the original method.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseEmbeddingModel
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.sparse import row_normalize


class LQANR(BaseEmbeddingModel):
    """Quantized multi-hop MF embedding."""

    name = "LQANR"

    def __init__(
        self,
        k: int = 128,
        *,
        bit_width: int = 3,
        order: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        if bit_width < 1:
            raise ValueError("bit_width must be >= 1")
        self.bit_width = bit_width
        self.order = order

    def fit(self, graph: AttributedGraph) -> "LQANR":
        n = graph.n_nodes
        smoother = row_normalize(graph.adjacency + sp.eye(n, format="csr"))
        attributes = graph.attributes.toarray()
        proximity = attributes.copy()
        hop = attributes
        for _ in range(self.order):
            hop = np.asarray(smoother @ hop)
            proximity += hop
        proximity /= self.order + 1

        k = min(self.k, min(proximity.shape))
        u, sigma, _ = randsvd(proximity, k, seed=self.seed)
        real_embedding = u * np.sqrt(sigma)

        # b-bit quantization: integer grid levels scaled by the max level.
        levels = 2**self.bit_width
        scale = np.abs(real_embedding).max() / levels
        if scale == 0:
            scale = 1.0
        quantized = np.clip(np.round(real_embedding / scale), -levels, levels)
        self._features = quantized * scale
        return self
