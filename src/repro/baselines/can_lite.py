"""CANLite — a pure-numpy co-embedding autoencoder (CAN/ARGA stand-in).

CAN (Meng et al., WSDM 2019) co-embeds nodes and attributes with a graph
convolutional encoder and an inner-product decoder.  Without a DL
framework we implement the linear-GCN special case with manual gradients:

- encoder: ``Z = Â² X W`` (two propagation steps over the symmetric
  normalized adjacency, one learned projection ``W ∈ R^{d×k}``);
- free attribute embeddings ``U ∈ R^{d×k}``;
- decoders: ``σ(Z Zᵀ)`` reconstructs the adjacency, ``σ(Z Uᵀ)`` the
  binarized attribute matrix;
- loss: class-weighted binary cross-entropy over all entries, optimized
  with hand-rolled Adam.

Dense ``n × n`` reconstruction restricts it to small graphs — exactly the
scalability wall of the autoencoder family that the PANE paper reports
(CAN fails beyond Flickr-scale in Table 4/5).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.rng import ensure_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class _Adam:
    """Minimal Adam optimizer for a list of parameter arrays."""

    def __init__(self, params: list[np.ndarray], lr: float = 0.01) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        self.t += 1
        for i, (param, grad) in enumerate(zip(self.params, grads)):
            self.m[i] = self.beta1 * self.m[i] + (1 - self.beta1) * grad
            self.v[i] = self.beta2 * self.v[i] + (1 - self.beta2) * grad**2
            m_hat = self.m[i] / (1 - self.beta1**self.t)
            v_hat = self.v[i] / (1 - self.beta2**self.t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CANLite(BaseEmbeddingModel):
    """Linear-GCN co-embedding autoencoder with manual Adam training."""

    name = "CAN-lite"

    def __init__(
        self,
        k: int = 128,
        *,
        n_epochs: int = 150,
        learning_rate: float = 0.02,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.z: np.ndarray | None = None
        self.u: np.ndarray | None = None
        #: Weighted BCE training loss per epoch, recorded during fit.
        self.loss_history: list[float] = []

    def fit(self, graph: AttributedGraph) -> "CANLite":
        import scipy.sparse as sp

        rng = ensure_rng(self.seed)
        n, d = graph.n_nodes, graph.n_attributes

        # Symmetric normalized adjacency with self-loops: D^-1/2 (A+I) D^-1/2
        undirected = graph.adjacency.maximum(graph.adjacency.T) + sp.eye(
            n, format="csr"
        )
        degrees = np.asarray(undirected.sum(axis=1)).ravel()
        inv_sqrt = sp.diags(1.0 / np.sqrt(degrees))
        a_hat = inv_sqrt @ undirected @ inv_sqrt

        features = graph.attributes.toarray()
        smoothed = np.asarray(a_hat @ np.asarray(a_hat @ features))  # Â² X

        adjacency_target = graph.adjacency.maximum(graph.adjacency.T).toarray()
        adjacency_target = (adjacency_target > 0).astype(np.float64)
        attribute_target = (features > 0).astype(np.float64)

        # class weights for the sparse positives
        pos_weight_a = max(
            1.0, (adjacency_target.size - adjacency_target.sum())
            / max(adjacency_target.sum(), 1.0)
        )
        pos_weight_r = max(
            1.0, (attribute_target.size - attribute_target.sum())
            / max(attribute_target.sum(), 1.0)
        )

        k = min(self.k, d)
        w = rng.normal(scale=0.05, size=(d, k))
        u = rng.normal(scale=0.05, size=(d, k))
        adam = _Adam([w, u], lr=self.learning_rate)

        scale_a = 1.0 / adjacency_target.size
        scale_r = 1.0 / attribute_target.size
        weight_a = np.where(adjacency_target > 0, pos_weight_a, 1.0)
        weight_r = np.where(attribute_target > 0, pos_weight_r, 1.0)
        self.loss_history = []
        for _ in range(self.n_epochs):
            z = smoothed @ w
            # adjacency reconstruction term
            prob_a = np.clip(_sigmoid(z @ z.T), 1e-12, 1 - 1e-12)
            err_a = weight_a * (prob_a - adjacency_target) * scale_a
            grad_z = (err_a + err_a.T) @ z
            # attribute reconstruction term
            prob_r = np.clip(_sigmoid(z @ u.T), 1e-12, 1 - 1e-12)
            err_r = weight_r * (prob_r - attribute_target) * scale_r
            grad_z += err_r @ u
            grad_u = err_r.T @ z
            grad_w = smoothed.T @ grad_z
            loss = -float(
                (weight_a * (adjacency_target * np.log(prob_a)
                             + (1 - adjacency_target) * np.log1p(-prob_a))).sum()
                * scale_a
                + (weight_r * (attribute_target * np.log(prob_r)
                               + (1 - attribute_target) * np.log1p(-prob_r))).sum()
                * scale_r
            )
            self.loss_history.append(loss)
            adam.step([grad_w, grad_u])

        self.z = smoothed @ w
        self.u = u
        self._features = self.z
        return self

    def score_links(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Inner-product decoder score for candidate edges."""
        if self.z is None:
            raise RuntimeError("CANLite is not fitted")
        return np.einsum(
            "ij,ij->i", self.z[np.asarray(sources)], self.z[np.asarray(targets)]
        )

    def score_attributes(self, nodes: np.ndarray, attributes: np.ndarray) -> np.ndarray:
        """Inner-product decoder score for (node, attribute) pairs."""
        if self.z is None or self.u is None:
            raise RuntimeError("CANLite is not fitted")
        return np.einsum(
            "ij,ij->i", self.z[np.asarray(nodes)], self.u[np.asarray(attributes)]
        )
