"""PANE-R — the GreedyInit ablation of Sec. 5.7.

Identical to PANE except the optimizer is seeded with random Gaussians
instead of the SVD-based GreedyInit; Figs. 7–8 show it needs far more CCD
iterations to reach the same quality.
"""

from __future__ import annotations

from repro.core.pane import PANE, PANEEmbedding
from repro.graph.attributed_graph import AttributedGraph


class PANERandomInit:
    """PANE with ``init='random'`` under the baseline-model protocol."""

    name = "PANE-R"

    def __init__(
        self,
        k: int = 128,
        alpha: float = 0.5,
        epsilon: float = 0.015,
        *,
        ccd_iterations: int | None = None,
        n_threads: int = 1,
        seed: int | None = 0,
    ) -> None:
        self._pane = PANE(
            k=k,
            alpha=alpha,
            epsilon=epsilon,
            ccd_iterations=ccd_iterations,
            n_threads=n_threads,
            seed=seed,
            init="random",
        )
        self.k = k

    def fit(self, graph: AttributedGraph) -> PANEEmbedding:
        return self._pane.fit(graph)
