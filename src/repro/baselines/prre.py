"""PRRE — personalized relation ranking embedding (Zhou et al., CIKM 2018).

PRRE classifies node pairs into *positive*, *ambiguous* and *negative*
relations by combining topological and attribute proximities, then learns
embeddings with EM: the E-step soft-assigns ambiguous pairs, the M-step
pushes positive pairs together and negative pairs apart.

This implementation keeps the published structure at laptop scale:

1. proximity = normalized 2-hop transition similarity + attribute cosine;
2. thresholds at the upper/lower quantiles split pairs into the three
   relation classes;
3. EM alternates posterior weights for ambiguous pairs with gradient
   steps on a sigmoid ranking objective over the embedding matrix.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel, l2_normalize_rows
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import random_walk_matrix


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class PRRE(BaseEmbeddingModel):
    """EM-weighted ranking MF over relation classes."""

    name = "PRRE"

    def __init__(
        self,
        k: int = 128,
        *,
        positive_quantile: float = 0.9,
        negative_quantile: float = 0.5,
        n_em_rounds: int = 3,
        n_gradient_steps: int = 15,
        learning_rate: float = 0.05,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        if not 0.0 < negative_quantile < positive_quantile < 1.0:
            raise ValueError(
                "need 0 < negative_quantile < positive_quantile < 1"
            )
        self.positive_quantile = positive_quantile
        self.negative_quantile = negative_quantile
        self.n_em_rounds = n_em_rounds
        self.n_gradient_steps = n_gradient_steps
        self.learning_rate = learning_rate

    def fit(self, graph: AttributedGraph) -> "PRRE":
        n = graph.n_nodes
        transition = random_walk_matrix(graph).toarray()
        topo = transition + transition @ transition  # 1- and 2-hop reach
        topo = 0.5 * (topo + topo.T)
        attrs = l2_normalize_rows(graph.attributes.toarray())
        proximity = 0.5 * topo / max(topo.max(), 1e-12) + 0.5 * (attrs @ attrs.T)

        off_diag = proximity[~np.eye(n, dtype=bool)]
        hi = np.quantile(off_diag, self.positive_quantile)
        lo = np.quantile(off_diag, self.negative_quantile)
        positive = proximity >= hi
        negative = proximity <= lo
        ambiguous = ~positive & ~negative
        np.fill_diagonal(positive, False)
        np.fill_diagonal(ambiguous, False)

        k = min(self.k, n - 1)
        u, sigma, _ = randsvd(proximity, k, seed=self.seed)
        embedding = u * np.sqrt(np.maximum(sigma, 0))

        lr = self.learning_rate
        for _ in range(self.n_em_rounds):
            scores = _sigmoid(embedding @ embedding.T)
            # E-step: ambiguous pairs lean positive per current model belief
            posterior = np.where(ambiguous, scores, 0.0)
            # M-step: weighted logistic attraction/repulsion
            weights = (
                positive.astype(np.float64)
                + posterior
                - negative.astype(np.float64)
            )
            for _ in range(self.n_gradient_steps):
                scores = _sigmoid(embedding @ embedding.T)
                # d/dZ of Σ w·log σ(zᵢ·zⱼ): w(1−σ)·Z, symmetric
                coef = weights * (1.0 - scores)
                grad = (coef + coef.T) @ embedding / n
                embedding += lr * grad
        self._features = embedding
        return self
