"""TADW — text-associated DeepWalk (Yang et al., IJCAI 2015).

Inductive matrix completion: minimize

    ‖M − Wᵀ H T‖²_F + λ(‖W‖² + ‖H‖²)

where ``M = (P + P²)/2`` is a second-order random-walk proximity matrix,
``T`` is a reduced text/attribute feature matrix (``f × n``), and the node
embedding is the concatenation ``[Wᵀ ‖ (H T)ᵀ]``.  Solved by alternating
ridge regressions (closed form per block), matching the original's ALS.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel, l2_normalize_rows
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import random_walk_matrix


class TADW(BaseEmbeddingModel):
    """Attributed matrix factorization with alternating ridge solves."""

    name = "TADW"

    def __init__(
        self,
        k: int = 128,
        *,
        text_dim: int = 64,
        regularization: float = 0.2,
        n_iterations: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        if k % 2 != 0:
            raise ValueError("TADW needs an even k (W and HT halves)")
        self.text_dim = text_dim
        self.regularization = regularization
        self.n_iterations = n_iterations

    def fit(self, graph: AttributedGraph) -> "TADW":
        transition = random_walk_matrix(graph)
        dense_p = transition.toarray()
        proximity = 0.5 * (dense_p + dense_p @ dense_p)  # M, n × n

        # Reduced attribute features T (f × n), as in the original paper's
        # 200-dim SVD of the TF-IDF matrix.
        f_dim = min(self.text_dim, min(graph.attributes.shape) - 1)
        f_dim = max(f_dim, 1)
        u, sigma, _ = randsvd(graph.attributes, f_dim, seed=self.seed)
        text = (u * sigma).T  # f × n

        half = self.k // 2
        rng = np.random.default_rng(self.seed)
        w = rng.normal(scale=0.1, size=(half, graph.n_nodes))
        h = rng.normal(scale=0.1, size=(half, f_dim))

        lam = self.regularization
        eye_half = lam * np.eye(half)
        for _ in range(self.n_iterations):
            # fix H: rows of M ≈ Wᵀ (H T) → ridge for W
            ht = h @ text  # half × n
            gram = ht @ ht.T + eye_half
            w = np.linalg.solve(gram, ht @ proximity.T)
            # fix W: M ≈ Wᵀ H T → ridge for H
            gram_w = w @ w.T + eye_half
            rhs = w @ proximity @ text.T
            h = np.linalg.solve(gram_w, rhs) @ np.linalg.inv(
                text @ text.T + lam * np.eye(f_dim)
            )

        embedding = np.hstack([w.T, (h @ text).T])  # n × k
        self._features = l2_normalize_rows(embedding)
        return self
