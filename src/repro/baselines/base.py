"""Common protocol for all embedding methods.

Every method implements ``fit(graph)`` and returns a fitted object with:

- ``node_features()`` — an ``n × k`` dense feature matrix for downstream
  classifiers;
- ``score_links(sources, targets)`` — scores for candidate directed edges
  (defaults to the inner product of node features, the strongest of the
  four scorers the paper tries for undirected competitors);
- optionally ``score_attributes(nodes, attributes)`` for the methods that
  also embed attributes (PANE, CANLite).

``fit`` returns the model itself, so a model object doubles as its own
embedding result — the tasks accept either convention.
"""

from __future__ import annotations

import numpy as np

from repro.graph.attributed_graph import AttributedGraph


class BaseEmbeddingModel:
    """Abstract base for baseline methods."""

    #: Human-readable method name used by reports.
    name: str = "base"

    def __init__(self, k: int = 128, *, seed: int | None = 0) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.seed = seed
        self._features: np.ndarray | None = None

    # -- to be provided by subclasses -----------------------------------
    def fit(self, graph: AttributedGraph) -> "BaseEmbeddingModel":
        raise NotImplementedError

    # -- shared behaviour ------------------------------------------------
    @property
    def features(self) -> np.ndarray:
        if self._features is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return self._features

    def node_features(self) -> np.ndarray:
        """The ``n × k`` node feature matrix."""
        return self.features

    def score_links(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Inner-product link scores (overridden by directed methods)."""
        feats = self.features
        return np.einsum("ij,ij->i", feats[np.asarray(sources)], feats[np.asarray(targets)])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k})"


def l2_normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise L2 normalization, zero rows preserved."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.where(norms == 0, 1.0, norms)
