"""AANE — accelerated attributed network embedding (Huang et al., SDM 2017).

Learns ``H`` minimizing ``‖S − H Hᵀ‖²_F + λ Σ_{(i,j)∈E} ‖H[i] − H[j]‖₂``
where ``S`` is the cosine similarity of attribute vectors.  The original
solves per-row subproblems with ADMM; at our scales plain projected
gradient descent on the same objective converges quickly and keeps the
code transparent.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel, l2_normalize_rows
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph


class AANE(BaseEmbeddingModel):
    """Attribute-similarity MF with graph-smoothness regularization."""

    name = "AANE"

    def __init__(
        self,
        k: int = 128,
        *,
        smoothness: float = 0.5,
        n_iterations: int = 30,
        learning_rate: float = 0.05,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        self.smoothness = smoothness
        self.n_iterations = n_iterations
        self.learning_rate = learning_rate

    def fit(self, graph: AttributedGraph) -> "AANE":
        attributes = graph.attributes.toarray()
        normed = l2_normalize_rows(attributes)
        similarity = normed @ normed.T  # n × n cosine similarity

        k = min(self.k, graph.n_nodes - 1)
        u, sigma, _ = randsvd(similarity, k, seed=self.seed)
        embedding = u * np.sqrt(np.maximum(sigma, 0.0))

        # Symmetric graph Laplacian for the smoothness term.
        undirected = graph.adjacency.maximum(graph.adjacency.T)
        degrees = np.asarray(undirected.sum(axis=1)).ravel()
        lap_mul = lambda h: degrees[:, None] * h - np.asarray(undirected @ h)

        lr = self.learning_rate
        for _ in range(self.n_iterations):
            residual = embedding @ embedding.T - similarity
            grad = 4.0 * residual @ embedding + 2.0 * self.smoothness * lap_mul(
                embedding
            )
            norm = np.linalg.norm(grad)
            if norm > 0:
                grad = grad / norm * min(norm, 10.0)  # gradient clipping
            embedding -= lr * grad
        self._features = embedding
        return self
