"""Competitor embedding methods (paper Sec. 5.1, "Baselines").

The factorization family is implemented fully; the deep-learning family is
represented by :class:`CANLite`, a pure-numpy linear graph-convolutional
autoencoder (see DESIGN.md §2 for the substitution rationale).
"""

from repro.baselines.base import BaseEmbeddingModel
from repro.baselines.aane import AANE
from repro.baselines.bane import BANE
from repro.baselines.bla import BLA
from repro.baselines.can_lite import CANLite
from repro.baselines.dgi_lite import DGILite
from repro.baselines.lqanr import LQANR
from repro.baselines.netmf import NetMF
from repro.baselines.nrp import NRP
from repro.baselines.pane_random_init import PANERandomInit
from repro.baselines.prre import PRRE
from repro.baselines.random_embedding import RandomEmbedding
from repro.baselines.spectral import SpectralConcat
from repro.baselines.tadw import TADW

__all__ = [
    "BaseEmbeddingModel",
    "AANE",
    "BANE",
    "BLA",
    "CANLite",
    "DGILite",
    "LQANR",
    "NetMF",
    "NRP",
    "PANERandomInit",
    "PRRE",
    "RandomEmbedding",
    "SpectralConcat",
    "TADW",
]
