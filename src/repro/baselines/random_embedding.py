"""Seeded Gaussian random embeddings — the no-signal control baseline."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.rng import ensure_rng


class RandomEmbedding(BaseEmbeddingModel):
    """i.i.d. N(0, 1) features; AUC on any task should hover near 0.5."""

    name = "Random"

    def fit(self, graph: AttributedGraph) -> "RandomEmbedding":
        rng = ensure_rng(self.seed)
        self._features = rng.standard_normal((graph.n_nodes, self.k))
        return self
