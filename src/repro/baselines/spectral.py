"""Naive spectral baseline: truncated SVD of the concatenated ``[A ‖ R]``.

The simplest possible joint topology+attribute embedding; serves as the
sanity floor every published method should beat.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseEmbeddingModel
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.sparse import row_normalize


class SpectralConcat(BaseEmbeddingModel):
    """Rank-k SVD of the row-normalized ``[A ‖ R]`` block matrix."""

    name = "Spectral"

    def fit(self, graph: AttributedGraph) -> "SpectralConcat":
        stacked = sp.hstack(
            [row_normalize(graph.adjacency), row_normalize(graph.attributes)]
        ).tocsr()
        k = min(self.k, min(stacked.shape) - 1)
        u, sigma, _ = randsvd(stacked, k, seed=self.seed)
        self._features = u * sigma
        return self
