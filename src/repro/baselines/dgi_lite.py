"""DGI-lite — Deep Graph Infomax with a linear encoder (Veličković 2019).

DGI maximizes mutual information between node embeddings and a global
graph summary: a discriminator must tell real (node, summary) pairs from
corrupted ones (the same graph with shuffled node features).  With no DL
framework available, we implement the linear-GCN special case with manual
gradients, as with CANLite:

- encoder: ``Z = Â X W`` (one propagation, learned projection);
- summary: ``s = mean(Z)`` through a sigmoid;
- discriminator: ``D(z, s) = σ(zᵀ M s)`` with learned bilinear ``M``;
- corruption: row-shuffled features ``X̃``;
- loss: BCE on real-vs-corrupted, optimized with Adam.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseEmbeddingModel
from repro.baselines.can_lite import _Adam, _sigmoid
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.rng import ensure_rng


class DGILite(BaseEmbeddingModel):
    """Contrastive infomax embedding with a linear GCN encoder."""

    name = "DGI-lite"

    def __init__(
        self,
        k: int = 128,
        *,
        n_epochs: int = 100,
        learning_rate: float = 0.02,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate

    def fit(self, graph: AttributedGraph) -> "DGILite":
        rng = ensure_rng(self.seed)
        n, d = graph.n_nodes, graph.n_attributes

        undirected = graph.adjacency.maximum(graph.adjacency.T) + sp.eye(
            n, format="csr"
        )
        degrees = np.asarray(undirected.sum(axis=1)).ravel()
        inv_sqrt = sp.diags(1.0 / np.sqrt(degrees))
        a_hat = (inv_sqrt @ undirected @ inv_sqrt).tocsr()

        features = graph.attributes.toarray()
        smoothed = np.asarray(a_hat @ features)  # Â X, n × d

        k = min(self.k, d)
        w = rng.normal(scale=0.05, size=(d, k))
        bilinear = np.eye(k) + rng.normal(scale=0.01, size=(k, k))
        adam = _Adam([w, bilinear], lr=self.learning_rate)

        for _ in range(self.n_epochs):
            permutation = rng.permutation(n)
            corrupted = np.asarray(a_hat @ features[permutation])

            z_real = smoothed @ w  # n × k
            z_fake = corrupted @ w
            summary = _sigmoid(z_real.mean(axis=0))  # k

            ms = bilinear @ summary  # k
            logits_real = z_real @ ms
            logits_fake = z_fake @ ms
            p_real = _sigmoid(logits_real)
            p_fake = _sigmoid(logits_fake)

            # BCE gradients: real labeled 1, fake labeled 0
            err_real = (p_real - 1.0) / n  # n
            err_fake = p_fake / n

            grad_z_real = np.outer(err_real, ms)
            grad_z_fake = np.outer(err_fake, ms)
            grad_ms = z_real.T @ err_real + z_fake.T @ err_fake
            grad_bilinear = np.outer(grad_ms, summary)
            # summary depends on z_real; ignore that second-order path, as
            # the original DGI does for the readout in practice
            grad_w = smoothed.T @ grad_z_real + corrupted.T @ grad_z_fake
            adam.step([grad_w, grad_bilinear])

        self._features = smoothed @ w
        return self
