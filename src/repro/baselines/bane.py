"""BANE — binarized attributed network embedding (Yang et al., ICDM 2018).

Learns binary codes ``B ∈ {−1, +1}^{n×k}`` by factorizing a
Weisfeiler-Lehman-style proximity matrix that fuses topology and
attributes, alternating a closed-form real factor with a sign update for
the binary factor (the original's CCD with binary constraints reduces to
a sign flip per coordinate at the optimum).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel
from repro.graph.attributed_graph import AttributedGraph
from repro.utils.sparse import row_normalize


class BANE(BaseEmbeddingModel):
    """Binary embeddings from a WL-fused node-attribute proximity."""

    name = "BANE"

    def __init__(
        self,
        k: int = 128,
        *,
        wl_iterations: int = 2,
        n_iterations: int = 15,
        regularization: float = 0.1,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        self.wl_iterations = wl_iterations
        self.n_iterations = n_iterations
        self.regularization = regularization

    def fit(self, graph: AttributedGraph) -> "BANE":
        # Weisfeiler-Lehman attribute propagation: repeatedly average the
        # attribute vectors of (self + out-neighborhood).
        import scipy.sparse as sp

        n = graph.n_nodes
        smoother = row_normalize(graph.adjacency + sp.eye(n, format="csr"))
        fused = graph.attributes.toarray()
        for _ in range(self.wl_iterations):
            fused = np.asarray(smoother @ fused)

        k = min(self.k, min(fused.shape))
        rng = np.random.default_rng(self.seed)
        binary = np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)
        lam = self.regularization
        for _ in range(self.n_iterations):
            # closed-form real factor given the binary codes
            gram = binary.T @ binary + lam * np.eye(k)
            v = np.linalg.solve(gram, binary.T @ fused)  # k × d
            # sign update: argmin_{B∈{-1,1}} ||M - B V|| column-wise is
            # sign of the correlation when V rows are near-orthogonal
            binary = np.where(fused @ v.T >= 0, 1.0, -1.0)
        self._features = binary
        return self
