"""BLA-style attribute inference via bidirectional propagation.

The paper's Table 4 compares against BLA (Yang et al., WWW 2017), a
non-embedding attribute-inference algorithm that jointly propagates
attribute evidence along links in both directions.  We implement the same
idea: iterate a damped bidirectional smoothing of the observed attribute
matrix over the graph, and score a (node, attribute) pair by the smoothed
value.  Like BLA, it predicts attributes directly — there is no embedding
and no other task it can serve.
"""

from __future__ import annotations

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import random_walk_matrix
from repro.utils.validation import check_probability


class BLA:
    """Bidirectional link/attribute propagation (attribute inference only)."""

    name = "BLA"

    def __init__(
        self,
        *,
        damping: float = 0.5,
        n_iterations: int = 5,
    ) -> None:
        self.damping = check_probability(damping, "damping")
        self.n_iterations = n_iterations
        self._scores: np.ndarray | None = None

    def fit(self, graph: AttributedGraph) -> "BLA":
        transition = random_walk_matrix(graph)
        transition_t = transition.T.tocsr()
        observed = graph.attributes.toarray()
        observed = observed / max(observed.max(), 1e-12)

        smoothed = observed.copy()
        for _ in range(self.n_iterations):
            forward = np.asarray(transition @ smoothed)
            backward = np.asarray(transition_t @ smoothed)
            smoothed = (
                self.damping * observed
                + (1.0 - self.damping) * 0.5 * (forward + backward)
            )
        self._scores = smoothed
        return self

    def score_attributes(
        self, nodes: np.ndarray, attributes: np.ndarray
    ) -> np.ndarray:
        """Smoothed evidence for each (node, attribute) pair."""
        if self._scores is None:
            raise RuntimeError("BLA is not fitted")
        return self._scores[np.asarray(nodes), np.asarray(attributes)]
