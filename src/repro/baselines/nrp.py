"""NRP — homogeneous network embedding via reweighted personalized PageRank.

Yang et al., "Homogeneous Network Embedding for Massive Graphs via
Reweighted Personalized PageRank", PVLDB 2020 — the strongest
topology-only competitor in the PANE paper's tables.

Pipeline (faithful at laptop scale):

1. approximate the PPR matrix ``Π = α Σ (1−α)^ℓ P^ℓ`` by truncated
   iteration;
2. factorize ``Π ≈ Xf Xbᵀ`` with a rank-``k/2`` randomized SVD;
3. *reweight*: alternately rescale the rows of ``Xf`` and ``Xb`` so that
   predicted out-/in-degree mass matches the graph's (the multiplicative
   update of the original paper, run to tolerance).

NRP ignores attributes entirely, which is exactly the property the PANE
paper exploits to show attribute information matters.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel, l2_normalize_rows
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import random_walk_matrix
from repro.utils.validation import check_probability


class NRP(BaseEmbeddingModel):
    """Reweighted-PPR embedding with forward/backward node vectors."""

    name = "NRP"

    def __init__(
        self,
        k: int = 128,
        alpha: float = 0.15,
        *,
        n_iterations: int = 10,
        reweight_iterations: int = 20,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        if k % 2 != 0:
            raise ValueError("NRP needs an even k (two k/2 vectors per node)")
        self.alpha = check_probability(alpha, "alpha")
        self.n_iterations = n_iterations
        self.reweight_iterations = reweight_iterations
        self.x_forward: np.ndarray | None = None
        self.x_backward: np.ndarray | None = None

    def fit(self, graph: AttributedGraph) -> "NRP":
        transition = random_walk_matrix(graph)
        n = graph.n_nodes
        # Truncated PPR power series, dense (laptop-scale graphs).
        identity = np.eye(n)
        term = identity.copy()
        ppr = self.alpha * term
        for _ in range(self.n_iterations):
            term = (1.0 - self.alpha) * np.asarray(transition @ term)
            ppr += self.alpha * term

        half = self.k // 2
        u, sigma, v = randsvd(ppr, half, seed=self.seed)
        sqrt_sigma = np.sqrt(sigma)
        x_forward = u * sqrt_sigma
        x_backward = v * sqrt_sigma

        # Multiplicative degree reweighting: scale forward rows toward
        # out-degree mass and backward rows toward in-degree mass.
        out_deg = np.asarray(graph.adjacency.sum(axis=1)).ravel() + 1.0
        in_deg = np.asarray(graph.adjacency.sum(axis=0)).ravel() + 1.0
        for _ in range(self.reweight_iterations):
            fwd_mass = np.abs(x_forward @ x_backward.sum(axis=0)) + 1e-12
            scale = np.clip(out_deg / fwd_mass, 0.25, 4.0) ** 0.5
            x_forward *= scale[:, None]
            bwd_mass = np.abs(x_backward @ x_forward.sum(axis=0)) + 1e-12
            scale = np.clip(in_deg / bwd_mass, 0.25, 4.0) ** 0.5
            x_backward *= scale[:, None]

        self.x_forward = x_forward
        self.x_backward = x_backward
        self._features = np.hstack(
            [l2_normalize_rows(x_forward), l2_normalize_rows(x_backward)]
        )
        return self

    def score_links(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Directed score ``Xf[u] · Xb[v]`` (the NRP paper's predictor)."""
        if self.x_forward is None or self.x_backward is None:
            raise RuntimeError("NRP is not fitted")
        return np.einsum(
            "ij,ij->i",
            self.x_forward[np.asarray(sources)],
            self.x_backward[np.asarray(targets)],
        )
