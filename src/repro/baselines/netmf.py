"""NetMF — DeepWalk as matrix factorization (Qiu et al., WSDM 2018).

Small-window variant: factorize

    M = log⁺( vol(G) / (b·T) · Σ_{r=1..T} Pʳ D⁻¹ )

with a rank-``k`` SVD, where ``T`` is the window size and ``b`` the
negative-sampling count.  Topology-only; stands in for the DeepWalk /
random-walk HNE family in the comparison tables.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEmbeddingModel
from repro.core.randsvd import randsvd
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.matrices import random_walk_matrix


class NetMF(BaseEmbeddingModel):
    """Closed-form DeepWalk factorization."""

    name = "NetMF"

    def __init__(
        self,
        k: int = 128,
        *,
        window: int = 3,
        negative: int = 1,
        seed: int | None = 0,
    ) -> None:
        super().__init__(k, seed=seed)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.negative = negative

    def fit(self, graph: AttributedGraph) -> "NetMF":
        # NetMF is defined on undirected graphs; symmetrize as the paper
        # does for directed inputs.
        undirected = graph.adjacency.maximum(graph.adjacency.T)
        symmetric_graph = graph.with_adjacency(undirected)
        transition = random_walk_matrix(symmetric_graph).toarray()
        degrees = np.asarray(undirected.sum(axis=1)).ravel()
        volume = float(degrees.sum())

        power_sum = np.zeros_like(transition)
        power = np.eye(transition.shape[0])
        for _ in range(self.window):
            power = power @ transition
            power_sum += power

        inv_deg = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
        m = (volume / (self.negative * self.window)) * power_sum * inv_deg[None, :]
        m = np.log(np.maximum(m, 1.0))  # log⁺: truncate below 1

        k = min(self.k, m.shape[0] - 1)
        u, sigma, _ = randsvd(m, k, seed=self.seed)
        self._features = u * np.sqrt(sigma)
        return self
