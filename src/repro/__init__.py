"""repro — a reproduction of PANE (Yang et al., *Scaling Attributed Network
Embedding to Massive Graphs*, VLDB 2020).

Public API highlights:

- :class:`repro.PANE` / :class:`repro.PANEConfig` — the embedding algorithm.
- :class:`repro.AttributedGraph` and the generators in :mod:`repro.graph`.
- Evaluation tasks in :mod:`repro.tasks` (attribute inference, link
  prediction, node classification).
- Competitor methods in :mod:`repro.baselines`.
- The paper's experiment harness in :mod:`repro.eval`.
- The serving subsystem in :mod:`repro.serving` (versioned store, IVF
  index, batched query service, online refresh — see ``docs/SERVING.md``).
"""

from repro.core import PANE, PANEConfig, PANEEmbedding, apmi, exact_affinity, randsvd
from repro.graph import (
    AttributedGraph,
    attributed_sbm,
    citation_graph,
    power_law_attributed,
    random_attributed_graph,
    running_example_graph,
)

__version__ = "1.0.0"

__all__ = [
    "PANE",
    "PANEConfig",
    "PANEEmbedding",
    "AttributedGraph",
    "apmi",
    "exact_affinity",
    "randsvd",
    "attributed_sbm",
    "citation_graph",
    "power_law_attributed",
    "random_attributed_graph",
    "running_example_graph",
    "__version__",
]
