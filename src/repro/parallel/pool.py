"""Persistent worker pool shared across PANE phases.

The seed implementation created (and tore down) a fresh
``ThreadPoolExecutor`` for every parallel call — two per CCD sweep, one
per PAPMI/SMGreedyInit phase — so thread spawn/join cost was paid dozens
of times per ``fit``.  :class:`WorkerPool` is the long-lived replacement:
``PANE.fit`` acquires one pool up front and threads it through PAPMI,
SMGreedyInit, and every PSVDCCD sweep; the underlying executor is created
lazily on the first multi-block call and reused until :meth:`close`.

Lifecycle
---------
``WorkerPool(n)`` is cheap (no threads yet).  Threads start on the first
``run_blocks`` call that actually fans out; ``close()`` (or leaving a
``with`` block) joins them.  A closed pool refuses further parallel work
but still executes single-block/single-thread calls inline, mirroring
:func:`repro.parallel.executor.run_blocks` semantics.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """A reusable thread pool with ``run_blocks`` semantics.

    Results are returned in block order; worker exceptions propagate.
    Single-block or single-thread calls run inline (bit-identical to the
    serial algorithms and with simple stack traces), exactly like the
    module-level :func:`repro.parallel.executor.run_blocks`.
    """

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.n_threads = n_threads
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        # Guards the lazy executor creation: concurrent first callers (e.g.
        # HTTP handler threads fanning out batch queries) must agree on one
        # executor instead of racing two into existence and leaking one.
        self._init_lock = threading.Lock()

    @property
    def is_active(self) -> bool:
        """Whether worker threads have been started and not yet joined."""
        return self._executor is not None and not self._closed

    def run_blocks(
        self, work: Callable[[int, T], R], blocks: Sequence[T]
    ) -> list[R]:
        """Apply ``work(block_index, block)`` to every block, possibly in parallel."""
        if not blocks:
            return []
        if len(blocks) == 1 or self.n_threads == 1:
            return [work(i, block) for i, block in enumerate(blocks)]
        with self._init_lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_threads, thread_name_prefix="pane-worker"
                )
            # Submit under the lock: a concurrent close() between the
            # closed-check and the submits would shut the executor down
            # and turn them into opaque RuntimeErrors.  Submission only
            # enqueues (cheap); the blocking result() waits stay outside.
            futures = [
                self._executor.submit(work, i, block)
                for i, block in enumerate(blocks)
            ]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Join the worker threads; further parallel calls raise."""
        with self._init_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
