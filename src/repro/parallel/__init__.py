"""Parallelization substrate: partitioning, a thread-pool runner, and the pool."""

from repro.parallel.executor import run_blocks
from repro.parallel.partitioning import partition_indices, partition_spans
from repro.parallel.pool import WorkerPool

__all__ = ["WorkerPool", "partition_indices", "partition_spans", "run_blocks"]
