"""Parallelization substrate: block partitioning and a thread-pool runner."""

from repro.parallel.partitioning import partition_indices
from repro.parallel.executor import run_blocks

__all__ = ["partition_indices", "run_blocks"]
