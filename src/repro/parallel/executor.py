"""Thread-pool execution of per-block work items.

numpy's BLAS kernels release the GIL, so the paper's multi-core structure
(one thread per node/attribute block) maps naturally onto Python threads.
A single-block call is executed inline to keep stack traces simple and to
make ``n_threads=1`` bit-identical to the serial algorithms.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def run_blocks(
    work: Callable[[int, T], R],
    blocks: Sequence[T],
    *,
    n_threads: int | None = None,
) -> list[R]:
    """Apply ``work(block_index, block)`` to every block, possibly in parallel.

    Results are returned in block order regardless of completion order.
    Exceptions raised in workers propagate to the caller.
    """
    if not blocks:
        return []
    n_threads = n_threads or len(blocks)
    if len(blocks) == 1 or n_threads == 1:
        return [work(i, block) for i, block in enumerate(blocks)]
    with ThreadPoolExecutor(max_workers=min(n_threads, len(blocks))) as pool:
        futures = [pool.submit(work, i, block) for i, block in enumerate(blocks)]
        return [future.result() for future in futures]
