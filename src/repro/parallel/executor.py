"""Thread-pool execution of per-block work items.

numpy's BLAS kernels release the GIL, so the paper's multi-core structure
(one thread per node/attribute block) maps naturally onto Python threads.
A single-block call is executed inline to keep stack traces simple and to
make ``n_threads=1`` bit-identical to the serial algorithms.

Callers inside a multi-phase pipeline should pass a persistent
:class:`repro.parallel.pool.WorkerPool` via ``pool=`` so thread
spawn/join cost is paid once per ``fit`` instead of once per call; with
``pool=None`` an ephemeral pool is created per call (the original seed
behavior, still right for one-shot callers).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.pool import WorkerPool

T = TypeVar("T")
R = TypeVar("R")


def run_blocks(
    work: Callable[[int, T], R],
    blocks: Sequence[T],
    *,
    n_threads: int | None = None,
    pool: "WorkerPool | None" = None,
) -> list[R]:
    """Apply ``work(block_index, block)`` to every block, possibly in parallel.

    Results are returned in block order regardless of completion order.
    Exceptions raised in workers propagate to the caller.  With ``pool``
    given, execution is delegated to that persistent pool and
    ``n_threads`` is ignored; otherwise ``n_threads=None`` defaults to
    one thread per block and non-positive values raise.
    """
    if not blocks:
        return []
    if pool is not None:
        return pool.run_blocks(work, blocks)
    if n_threads is None:
        n_threads = len(blocks)
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    if len(blocks) == 1 or n_threads == 1:
        return [work(i, block) for i, block in enumerate(blocks)]
    with ThreadPoolExecutor(max_workers=min(n_threads, len(blocks))) as executor:
        futures = [executor.submit(work, i, block) for i, block in enumerate(blocks)]
        return [future.result() for future in futures]
