"""Equal-size index partitioning (Alg. 5 lines 1–2).

The paper randomly partitions the node set V and attribute set R into
``nb`` equal subsets.  We partition *contiguously* by default so matrix
blocks are slices (cheap views); a ``shuffle`` option reproduces the
paper's random assignment for load balancing experiments.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def partition_indices(
    total: int,
    n_blocks: int,
    *,
    shuffle: bool = False,
    seed: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Split ``range(total)`` into ``n_blocks`` near-equal index arrays.

    Every index appears in exactly one block; blocks differ in size by at
    most one.  Empty blocks are dropped, so fewer than ``n_blocks`` arrays
    may be returned when ``total < n_blocks``.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    indices = np.arange(total)
    if shuffle:
        ensure_rng(seed).shuffle(indices)
    blocks = np.array_split(indices, n_blocks)
    return [block for block in blocks if block.size > 0]


def partition_spans(total: int, n_blocks: int) -> list[slice]:
    """Split ``range(total)`` into contiguous ``slice`` objects.

    The same near-equal partition as :func:`partition_indices` without
    shuffling, but expressed as slices so that indexing a matrix block
    yields a *view* rather than a fancy-indexing copy — the form the
    allocation-free kernels in :mod:`repro.core.kernels` require.
    """
    return [
        slice(int(block[0]), int(block[-1]) + 1)
        for block in partition_indices(total, n_blocks)
    ]
