"""Tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import (
    check_csr,
    check_embedding_dim,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    def test_accepts_interior_value(self):
        assert check_probability(0.5, "p") == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ValueError, match="p must be"):
            check_probability(bad, "p")

    def test_inclusive_accepts_boundaries(self):
        assert check_probability(0.0, "p", inclusive=True) == 0.0
        assert check_probability(1.0, "p", inclusive=True) == 1.0

    def test_inclusive_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p", inclusive=True)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")


class TestCheckEmbeddingDim:
    def test_accepts_valid(self):
        assert check_embedding_dim(8, 100, 50) == 8

    def test_rejects_odd(self):
        with pytest.raises(ValueError, match="even"):
            check_embedding_dim(7, 100, 50)

    def test_rejects_zero_and_negative(self):
        for bad in (0, -2):
            with pytest.raises(ValueError):
                check_embedding_dim(bad, 100, 50)

    def test_rejects_k_too_large_for_graph(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_embedding_dim(64, 100, 10)  # k/2=32 > d=10


class TestCheckCsr:
    def test_dense_input_converted(self):
        result = check_csr(np.eye(3), "m")
        assert sp.issparse(result)
        assert result.dtype == np.float64

    def test_sparse_passthrough_as_csr(self):
        coo = sp.coo_matrix(np.eye(3))
        result = check_csr(coo, "m")
        assert result.format == "csr"

    def test_preserves_values(self):
        m = np.array([[0.0, 2.5], [1.0, 0.0]])
        assert np.allclose(check_csr(m, "m").toarray(), m)
