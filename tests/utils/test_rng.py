"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).integers(0, 1000, size=10)
    b = ensure_rng(42).integers(0, 1000, size=10)
    assert np.array_equal(a, b)


def test_ensure_rng_passthrough_generator():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_rngs_count_and_independence():
    children = spawn_rngs(0, 4)
    assert len(children) == 4
    draws = [c.integers(0, 2**31) for c in children]
    assert len(set(draws)) > 1  # streams differ


def test_spawn_rngs_reproducible():
    a = [g.integers(0, 2**31) for g in spawn_rngs(5, 3)]
    b = [g.integers(0, 2**31) for g in spawn_rngs(5, 3)]
    assert a == b


def test_spawn_rngs_zero():
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
