"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Timer, time_call


def test_timer_records_lap():
    timer = Timer()
    with timer.measure("work"):
        time.sleep(0.01)
    assert timer.laps["work"] >= 0.01


def test_timer_accumulates_same_name():
    timer = Timer()
    for _ in range(2):
        with timer.measure("phase"):
            time.sleep(0.005)
    assert timer.laps["phase"] >= 0.01


def test_timer_total_sums_laps():
    timer = Timer()
    with timer.measure("a"):
        pass
    with timer.measure("b"):
        pass
    assert timer.total == timer.laps["a"] + timer.laps["b"]


def test_timer_records_on_exception():
    timer = Timer()
    try:
        with timer.measure("boom"):
            raise RuntimeError
    except RuntimeError:
        pass
    assert "boom" in timer.laps


def test_time_call_returns_elapsed_and_result():
    elapsed, result = time_call(lambda x: x * 2, 21)
    assert result == 42
    assert elapsed >= 0.0
