"""Tests for repro.utils.sparse."""

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import (
    column_normalize,
    dense_column_normalize,
    dense_row_normalize,
    is_row_stochastic,
    row_normalize,
    sparse_equal,
)


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        m = sp.csr_matrix(np.array([[1.0, 3.0], [2.0, 2.0]]))
        out = row_normalize(m)
        assert np.allclose(np.asarray(out.sum(axis=1)).ravel(), 1.0)

    def test_zero_row_stays_zero(self):
        m = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        out = row_normalize(m).toarray()
        assert np.all(out[0] == 0)

    def test_proportions_preserved(self):
        m = sp.csr_matrix(np.array([[1.0, 3.0]]))
        out = row_normalize(m).toarray()
        assert np.allclose(out, [[0.25, 0.75]])


class TestColumnNormalize:
    def test_columns_sum_to_one(self):
        m = sp.csr_matrix(np.array([[1.0, 0.0], [3.0, 2.0]]))
        out = column_normalize(m)
        assert np.allclose(np.asarray(out.sum(axis=0)).ravel(), 1.0)

    def test_zero_column_stays_zero(self):
        m = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 1.0]]))
        out = column_normalize(m).toarray()
        assert np.all(out[:, 0] == 0)


class TestDenseNormalizers:
    def test_dense_row_matches_sparse(self):
        m = np.array([[1.0, 3.0], [0.0, 0.0], [2.0, 2.0]])
        sparse_result = row_normalize(sp.csr_matrix(m)).toarray()
        assert np.allclose(dense_row_normalize(m), sparse_result)

    def test_dense_column_matches_sparse(self):
        m = np.array([[1.0, 0.0], [3.0, 2.0]])
        sparse_result = column_normalize(sp.csr_matrix(m)).toarray()
        assert np.allclose(dense_column_normalize(m), sparse_result)


class TestPredicates:
    def test_is_row_stochastic_true(self):
        m = sp.csr_matrix(np.array([[0.5, 0.5], [0.0, 0.0]]))
        assert is_row_stochastic(m)

    def test_is_row_stochastic_false(self):
        m = sp.csr_matrix(np.array([[0.5, 0.6]]))
        assert not is_row_stochastic(m)

    def test_sparse_equal_identical(self):
        m = sp.random(10, 10, density=0.3, random_state=0)
        assert sparse_equal(m.tocsr(), m.tocsr())

    def test_sparse_equal_shape_mismatch(self):
        assert not sparse_equal(sp.eye(3).tocsr(), sp.eye(4).tocsr())

    def test_sparse_equal_value_mismatch(self):
        a = sp.eye(3).tocsr()
        b = a.copy()
        b[0, 0] = 2.0
        assert not sparse_equal(a, b)
