"""Tests for block partitioning."""

import numpy as np
import pytest

from repro.parallel.partitioning import partition_indices, partition_spans


class TestPartitionIndices:
    def test_covers_all_indices_exactly_once(self):
        blocks = partition_indices(17, 4)
        combined = np.concatenate(blocks)
        assert sorted(combined.tolist()) == list(range(17))

    def test_near_equal_sizes(self):
        blocks = partition_indices(17, 4)
        sizes = [b.size for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_blocks(self):
        blocks = partition_indices(2, 5)
        assert len(blocks) == 2
        assert all(b.size == 1 for b in blocks)

    def test_single_block(self):
        blocks = partition_indices(10, 1)
        assert len(blocks) == 1
        assert blocks[0].size == 10

    def test_empty_total(self):
        assert partition_indices(0, 3) == []

    def test_shuffle_deterministic(self):
        a = partition_indices(20, 3, shuffle=True, seed=1)
        b = partition_indices(20, 3, shuffle=True, seed=1)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_shuffle_still_partitions(self):
        blocks = partition_indices(20, 3, shuffle=True, seed=0)
        combined = sorted(np.concatenate(blocks).tolist())
        assert combined == list(range(20))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_indices(-1, 2)
        with pytest.raises(ValueError):
            partition_indices(5, 0)


class TestPartitionSpans:
    def test_matches_partition_indices(self):
        spans = partition_spans(17, 4)
        blocks = partition_indices(17, 4)
        assert len(spans) == len(blocks)
        for span, block in zip(spans, blocks):
            assert np.array_equal(np.arange(17)[span], block)

    def test_spans_give_views(self):
        matrix = np.zeros((10, 2))
        for span in partition_spans(10, 3):
            block = matrix[span]
            assert block.base is matrix  # a view, not a fancy-index copy
            block += 1.0
        assert np.all(matrix == 1.0)

    def test_empty_total(self):
        assert partition_spans(0, 3) == []
