"""Tests for the thread-pool block runner."""

import threading

import pytest

from repro.parallel.executor import run_blocks


class TestRunBlocks:
    def test_results_in_block_order(self):
        import time

        def work(i, block):
            time.sleep(0.01 * (3 - i))  # later blocks finish first
            return i * 10

        assert run_blocks(work, ["a", "b", "c"], n_threads=3) == [0, 10, 20]

    def test_receives_index_and_block(self):
        received = []
        run_blocks(lambda i, b: received.append((i, b)), ["x", "y"], n_threads=2)
        assert sorted(received) == [(0, "x"), (1, "y")]

    def test_empty_blocks(self):
        assert run_blocks(lambda i, b: b, []) == []

    def test_single_block_runs_inline(self):
        thread_ids = []
        run_blocks(lambda i, b: thread_ids.append(threading.get_ident()), ["only"])
        assert thread_ids == [threading.get_ident()]

    def test_single_thread_runs_inline(self):
        thread_ids = []
        run_blocks(
            lambda i, b: thread_ids.append(threading.get_ident()),
            ["a", "b"],
            n_threads=1,
        )
        assert all(t == threading.get_ident() for t in thread_ids)

    def test_worker_exception_propagates(self):
        def explode(i, block):
            raise RuntimeError("worker failed")

        with pytest.raises(RuntimeError, match="worker failed"):
            run_blocks(explode, ["a", "b"], n_threads=2)

    def test_uses_multiple_threads(self):
        import time

        thread_ids = set()

        def work(i, block):
            thread_ids.add(threading.get_ident())
            time.sleep(0.02)

        run_blocks(work, list(range(4)), n_threads=4)
        assert len(thread_ids) > 1
