"""Tests for the persistent WorkerPool and its run_blocks integration."""

import threading

import pytest

from repro.parallel.executor import run_blocks
from repro.parallel.pool import WorkerPool


class TestWorkerPool:
    def test_invalid_thread_count(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="n_threads"):
                WorkerPool(bad)

    def test_results_in_block_order(self):
        import time

        def work(i, block):
            time.sleep(0.01 * (3 - i))
            return i * 10

        with WorkerPool(3) as pool:
            assert pool.run_blocks(work, ["a", "b", "c"]) == [0, 10, 20]

    def test_lazy_thread_start(self):
        pool = WorkerPool(4)
        assert not pool.is_active  # no executor until a parallel call
        pool.run_blocks(lambda i, b: b, ["only"])  # inline, still lazy
        assert not pool.is_active
        pool.run_blocks(lambda i, b: b, ["a", "b"])
        assert pool.is_active
        pool.close()
        assert not pool.is_active

    def test_threads_reused_across_calls(self):
        seen: set[int] = set()

        def work(i, block):
            seen.add(threading.get_ident())

        with WorkerPool(2) as pool:
            for _ in range(5):
                pool.run_blocks(work, ["a", "b"])
        # One persistent pool: at most n_threads distinct workers over
        # all five phases (an ephemeral-pool design would show up to 10).
        assert len(seen) <= 2

    def test_single_thread_runs_inline(self):
        with WorkerPool(1) as pool:
            thread_ids = []
            pool.run_blocks(
                lambda i, b: thread_ids.append(threading.get_ident()), ["a", "b"]
            )
        assert all(t == threading.get_ident() for t in thread_ids)

    def test_empty_blocks(self):
        with WorkerPool(2) as pool:
            assert pool.run_blocks(lambda i, b: b, []) == []

    def test_closed_pool_rejects_parallel_work(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_blocks(lambda i, b: b, ["a", "b"])
        # Inline single-block calls still work after close.
        assert pool.run_blocks(lambda i, b: b, ["x"]) == ["x"]

    def test_worker_exception_propagates(self):
        def explode(i, block):
            raise RuntimeError("worker failed")

        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError, match="worker failed"):
                pool.run_blocks(explode, ["a", "b"])

    def test_close_idempotent(self):
        pool = WorkerPool(2)
        pool.run_blocks(lambda i, b: b, ["a", "b"])
        pool.close()
        pool.close()


class TestRunBlocksPoolIntegration:
    def test_pool_delegation(self):
        with WorkerPool(2) as pool:
            assert run_blocks(lambda i, b: b * 2, [1, 2, 3], pool=pool) == [2, 4, 6]

    def test_pool_overrides_n_threads(self):
        """With pool given, n_threads is ignored (the pool's count rules)."""
        with WorkerPool(2) as pool:
            result = run_blocks(lambda i, b: b, ["a", "b"], n_threads=0, pool=pool)
        assert result == ["a", "b"]

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_threads_raise(self, bad):
        with pytest.raises(ValueError, match="n_threads"):
            run_blocks(lambda i, b: b, ["a", "b"], n_threads=bad)

    def test_none_defaults_to_one_thread_per_block(self):
        seen: set[int] = set()

        def work(i, block):
            import time

            seen.add(threading.get_ident())
            time.sleep(0.02)

        run_blocks(work, list(range(4)))
        assert len(seen) > 1
