"""Tests for the parameter-sweep experiment helpers (Figs. 4-8)."""

import pytest

from repro.eval.figures import (
    greedy_init_comparison,
    speedup_from_seconds,
    sweep_alpha,
    sweep_epsilon,
    sweep_k,
    sweep_threads,
)


class TestSweeps:
    def test_sweep_k_returns_requested_points(self):
        result = sweep_k("cora_sim", (16, 32), task="link")
        assert set(result) == {16.0, 32.0}
        assert all(0.0 <= v <= 1.0 for v in result.values())

    def test_sweep_k_skips_impossible_budgets(self):
        # flickr_sim has 300 attrs; cora_sim has 200 -> k=512 impossible
        result = sweep_k("cora_sim", (16, 512))
        assert 512.0 not in result

    def test_sweep_threads_quality_and_time(self):
        quality, seconds = sweep_threads("cora_sim", (1, 2), k=16)
        assert set(quality) == {1.0, 2.0}
        assert all(s > 0 for s in seconds.values())

    def test_sweep_epsilon_more_precision_not_worse(self):
        quality, seconds = sweep_epsilon(
            "cora_sim", (0.005, 0.25), k=16, task="link"
        )
        # tighter epsilon (more iterations) should not hurt quality much
        assert quality[0.005] >= quality[0.25] - 0.05

    def test_sweep_alpha_all_points(self):
        result = sweep_alpha("cora_sim", (0.3, 0.7), k=16)
        assert set(result) == {0.3, 0.7}

    def test_invalid_task_rejected(self):
        with pytest.raises(ValueError, match="task"):
            sweep_k("cora_sim", (16,), task="bogus")


class TestGreedyInitComparison:
    def test_frontier_shape(self):
        frontier = greedy_init_comparison("cora_sim", (1, 2), k=16)
        assert set(frontier) == {"PANE", "PANE-R"}
        assert len(frontier["PANE"]) == 2

    def test_greedy_init_dominates_at_low_iterations(self):
        """Sec. 5.7: at t=1, greedy-seeded PANE must beat PANE-R."""
        frontier = greedy_init_comparison("cora_sim", (1,), k=16, task="link")
        assert frontier["PANE"][0][1] > frontier["PANE-R"][0][1]


class TestSpeedup:
    def test_speedup_relative_to_single_thread(self):
        speedups = speedup_from_seconds({1.0: 10.0, 2.0: 5.0, 4.0: 2.5})
        assert speedups[1.0] == 1.0
        assert speedups[2.0] == 2.0
        assert speedups[4.0] == 4.0

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup_from_seconds({2.0: 5.0})
